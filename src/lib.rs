//! # distws — facade crate
//!
//! Reproduction of *"On the Merits of Distributed Work-Stealing on
//! Selective Locality-Aware Tasks"* (Paudel, Tardieu, Amaral, ICPP
//! 2013): a work-stealing runtime in which only programmer-annotated
//! **locality-flexible** tasks may be stolen across places, plus the
//! simulated cluster substrate, the full application suite, and the
//! benchmark harness that regenerates every table and figure of the
//! paper.
//!
//! This crate re-exports the workspace members under stable paths:
//!
//! * [`core`] — places, tasks, locality annotations, cost model, metrics
//! * [`deque`] — Chase–Lev private deques and the shared FIFO deque
//! * [`netsim`] — simulated interconnect with message accounting
//! * [`cachesim`] — L1 cache model for Table II
//! * [`sched`] — the scheduling policies (X10WS, DistWS, DistWS-NS, …)
//! * [`sim`] — deterministic discrete-event cluster simulator
//! * [`runtime`] — real multithreaded work-stealing runtime
//! * [`apps`] — Cowichan + Lonestar + UTS + micro application suite
//!
//! ## Quickstart
//!
//! ```
//! use distws::prelude::*;
//!
//! // Build the paper's 16-place × 8-worker cluster and run Delaunay
//! // mesh generation under DistWS.
//! let cfg = ClusterConfig::new(4, 2); // small shape for the doctest
//! let app = distws::apps::delaunay_gen::DelaunayGen::quick();
//! let report = distws::sim::Simulation::new(cfg, Box::new(DistWs::default()))
//!     .run_app(&app);
//! assert_eq!(report.tasks_spawned, report.tasks_executed);
//! ```

pub use distws_apps as apps;
pub use distws_cachesim as cachesim;
pub use distws_core as core;
pub use distws_deque as deque;
pub use distws_netsim as netsim;
pub use distws_runtime as runtime;
pub use distws_sched as sched;
pub use distws_sim as sim;

/// Convenience prelude: the types almost every user needs.
pub mod prelude {
    pub use distws_core::{
        ClusterConfig, CostModel, Footprint, GlobalWorkerId, Locality, PlaceId, RunReport,
        TaskScope, TaskSpec, WorkerId,
    };
    pub use distws_sched::{DistWs, DistWsNs, Policy, RandomWs, X10Ws};
    pub use distws_sim::Simulation;
}
