//! Failure-injection / stress scenarios for the scheduling machinery:
//! bursty arrivals, hotspot shifts, pathological task mixes.

use distws::prelude::*;
use distws_core::{FinishLatch, TaskSpec, Workload};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A workload whose load hotspot jumps between places in bursts:
/// phase k drops a burst of coarse flexible tasks on place `k % P`,
/// with a finish barrier between phases.
struct BurstHotspot {
    phases: usize,
    burst: usize,
    counter: Mutex<Option<Arc<AtomicU64>>>,
}

impl BurstHotspot {
    fn phase_task(
        counter: Arc<AtomicU64>,
        phases: usize,
        burst: usize,
        k: usize,
        places: u32,
    ) -> TaskSpec {
        TaskSpec::new(
            PlaceId(0),
            Locality::Sensitive,
            5_000,
            "burst-coord",
            move |s| {
                if k == phases {
                    return;
                }
                let next = Self::phase_task(Arc::clone(&counter), phases, burst, k + 1, places);
                let latch = FinishLatch::new(burst, next);
                let hot = PlaceId((k as u32) % places);
                for _ in 0..burst {
                    let c = Arc::clone(&counter);
                    s.spawn(
                        TaskSpec::new(hot, Locality::Flexible, 400_000, "burst-work", move |_| {
                            c.fetch_add(1, Ordering::Relaxed);
                        })
                        .with_latch(Arc::clone(&latch)),
                    );
                }
            },
        )
    }
}

impl Workload for BurstHotspot {
    fn name(&self) -> String {
        "BurstHotspot".into()
    }

    fn roots(&self, cfg: &distws_core::ClusterConfig) -> Vec<TaskSpec> {
        let counter = Arc::new(AtomicU64::new(0));
        *self.counter.lock().unwrap() = Some(Arc::clone(&counter));
        vec![Self::phase_task(
            counter,
            self.phases,
            self.burst,
            0,
            cfg.places,
        )]
    }

    fn validate(&self) -> Result<(), String> {
        let got = self
            .counter
            .lock()
            .unwrap()
            .as_ref()
            .ok_or("no run")?
            .load(Ordering::Relaxed);
        let expect = (self.phases * self.burst) as u64;
        if got == expect {
            Ok(())
        } else {
            Err(format!("{got} != {expect} burst tasks ran"))
        }
    }
}

#[test]
fn distws_absorbs_moving_hotspots() {
    let app = BurstHotspot {
        phases: 6,
        burst: 48,
        counter: Mutex::new(None),
    };
    let cfg = ClusterConfig::new(4, 4);
    let x10 = Simulation::new(cfg.clone(), Box::new(X10Ws)).run_app(&app);
    let dws = Simulation::new(cfg, Box::new(DistWs::default())).run_app(&app);
    assert!(dws.steals.remote > 0);
    assert!(
        dws.makespan_ns * 2 < x10.makespan_ns,
        "a moving hotspot should be where DistWS dominates: {} vs {}",
        dws.makespan_ns,
        x10.makespan_ns
    );
    // The burst place alone bounds X10WS: every phase serializes on 4
    // workers of one place.
    let per_phase_x10 = x10.makespan_ns / 6;
    assert!(
        per_phase_x10 >= 48 / 4 * 400_000,
        "X10WS faster than its own lower bound?"
    );
}

#[test]
fn all_policies_survive_pathological_task_mixes() {
    // Alternating zero-cost and coarse tasks, some sensitive at
    // rotating places, deep latch chains.
    for policy in [
        Box::new(X10Ws) as Box<dyn Policy>,
        Box::new(DistWs::default()),
        Box::new(DistWsNs::default()),
        Box::new(RandomWs),
    ] {
        let app = BurstHotspot {
            phases: 3,
            burst: 17,
            counter: Mutex::new(None),
        };
        let r = Simulation::new(ClusterConfig::new(3, 2), policy).run_app(&app);
        assert_eq!(r.tasks_spawned, r.tasks_executed);
    }
}

#[test]
fn zero_cost_tasks_do_not_break_accounting() {
    let roots: Vec<TaskSpec> = (0..50)
        .map(|i| TaskSpec::new(PlaceId(i % 2), Locality::Flexible, 0, "zero", |_| {}))
        .collect();
    let mut sim = Simulation::new(ClusterConfig::new(2, 2), Box::new(DistWs::default()));
    let r = sim.run_roots("zero", roots);
    assert_eq!(r.tasks_executed, 50);
    for &u in &r.utilization.per_place {
        assert!((0.0..=1.0).contains(&u));
    }
}

#[test]
fn single_worker_cluster_handles_everything() {
    let app = BurstHotspot {
        phases: 2,
        burst: 5,
        counter: Mutex::new(None),
    };
    let r = Simulation::new(ClusterConfig::new(1, 1), Box::new(DistWs::default())).run_app(&app);
    // The lone worker may still pull from its own shared deque, but
    // nothing can cross places.
    assert_eq!(r.steals.remote, 0);
    assert_eq!(r.steals.local_private, 0);
    assert_eq!(r.messages.total(), 0);
}
