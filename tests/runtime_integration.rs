//! The full application suite on the **real threaded runtime**: same
//! policies, real lock-free deques, real threads. Every workload must
//! validate — scheduling and engine choice must never change answers.

use distws::apps;
use distws::prelude::*;
use distws::runtime::Runtime;
use distws_core::Workload;

fn policies() -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(X10Ws),
        Box::new(DistWs::default()),
        Box::new(DistWsNs::default()),
    ]
}

fn run_all(app: &dyn Workload) {
    for policy in policies() {
        let name = policy.name();
        let mut rt = Runtime::new(ClusterConfig::new(2, 2), policy);
        let report = rt.run_app(app);
        assert_eq!(
            report.tasks_spawned,
            report.tasks_executed,
            "{name}: task conservation violated on {}",
            app.name()
        );
    }
}

#[test]
fn threaded_quicksort() {
    run_all(&apps::Quicksort::quick());
}

#[test]
fn threaded_turing_ring() {
    run_all(&apps::TuringRing::quick());
}

#[test]
fn threaded_kmeans() {
    run_all(&apps::KMeans::quick());
}

#[test]
fn threaded_agglomerative() {
    run_all(&apps::Agglomerative::quick());
}

#[test]
fn threaded_delaunay_gen() {
    run_all(&apps::DelaunayGen::quick());
}

#[test]
fn threaded_delaunay_refine() {
    run_all(&apps::DelaunayRefine::quick());
}

#[test]
fn threaded_nbody() {
    run_all(&apps::NBody::quick());
}

#[test]
fn threaded_uts() {
    run_all(&apps::Uts::quick());
}

#[test]
fn threaded_micro_suite() {
    for app in apps::micro::micro_suite() {
        let mut rt = Runtime::new(ClusterConfig::new(2, 2), Box::new(DistWs::default()));
        rt.run_app(app.as_ref());
    }
}

#[test]
fn engines_agree_on_results() {
    // The same workload object (fresh state per run) through both
    // engines: both must validate, i.e. both produced the golden
    // answer.
    let app = apps::TuringRing::quick();
    let mut sim = Simulation::new(ClusterConfig::new(2, 2), Box::new(DistWs::default()));
    sim.run_app(&app);
    let mut rt = Runtime::new(ClusterConfig::new(2, 2), Box::new(DistWs::default()));
    rt.run_app(&app);
}

#[test]
fn threaded_runtime_with_injected_latency() {
    let mut cfg = distws::runtime::RuntimeConfig::new(ClusterConfig::new(2, 2));
    cfg.net_delay = Some(std::time::Duration::from_micros(100));
    let mut rt = Runtime::with_config(cfg, Box::new(DistWs::default()));
    rt.run_app(&apps::KMeans::quick());
}
