//! Cross-crate integration: every application of the paper's suite
//! runs to completion under every scheduling policy on the
//! discrete-event simulator, produces a *validated* answer (scheduling
//! must never change results), and conserves tasks.

use distws::apps;
use distws::prelude::*;
use distws::sched::{AdaptiveWs, LifelineWs};
use distws_core::Workload;

fn policies() -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(X10Ws),
        Box::new(DistWs::default()),
        Box::new(DistWsNs::default()),
        Box::new(RandomWs),
        Box::new(LifelineWs::default()),
        Box::new(AdaptiveWs::default()),
    ]
}

fn run_all(app: &dyn Workload) {
    for policy in policies() {
        let name = policy.name();
        let mut sim = Simulation::new(ClusterConfig::new(4, 2), policy);
        // run_app panics if the workload fails validation.
        let report = sim.run_app(app);
        assert_eq!(
            report.tasks_spawned,
            report.tasks_executed,
            "{name}: task conservation violated on {}",
            app.name()
        );
        assert!(report.makespan_ns > 0);
        for &u in &report.utilization.per_place {
            assert!(
                (0.0..=1.0).contains(&u),
                "{name}: utilization {u} out of range"
            );
        }
    }
}

#[test]
fn quicksort_all_policies() {
    run_all(&apps::Quicksort::quick());
}

#[test]
fn turing_ring_all_policies() {
    run_all(&apps::TuringRing::quick());
}

#[test]
fn kmeans_all_policies() {
    run_all(&apps::KMeans::quick());
}

#[test]
fn agglomerative_all_policies() {
    run_all(&apps::Agglomerative::quick());
}

#[test]
fn delaunay_gen_all_policies() {
    run_all(&apps::DelaunayGen::quick());
}

#[test]
fn delaunay_refine_all_policies() {
    run_all(&apps::DelaunayRefine::quick());
}

#[test]
fn nbody_all_policies() {
    run_all(&apps::NBody::quick());
}

#[test]
fn uts_all_policies() {
    run_all(&apps::Uts::quick());
}

#[test]
fn micro_suite_all_policies() {
    for app in apps::micro::micro_suite() {
        // Micro apps use smaller instances in tests.
        run_all(app.as_ref());
    }
}

#[test]
fn single_place_runs_every_app() {
    // Degenerate cluster: one place, one worker.
    for app in apps::quick_suite() {
        let mut sim = Simulation::new(ClusterConfig::new(1, 1), Box::new(DistWs::default()));
        let report = sim.run_app(app.as_ref());
        assert_eq!(
            report.steals.remote,
            0,
            "{}: no remote steals possible",
            app.name()
        );
    }
}

#[test]
fn distws_beats_x10ws_on_imbalanced_apps_at_scale() {
    // The paper's headline: on irregular apps over multiple places,
    // DistWS outperforms X10WS. DMG is the paper's best case.
    let app = apps::DelaunayGen::quick();
    let mut x10 = Simulation::new(ClusterConfig::new(8, 2), Box::new(X10Ws));
    let r_x10 = x10.run_app(&app);
    let mut dws = Simulation::new(ClusterConfig::new(8, 2), Box::new(DistWs::default()));
    let r_dws = dws.run_app(&app);
    assert!(
        r_dws.makespan_ns < r_x10.makespan_ns,
        "DistWS ({}) should beat X10WS ({}) on DMG",
        r_dws.makespan_ns,
        r_x10.makespan_ns
    );
}

#[test]
fn distws_never_migrates_sensitive_tasks_in_any_app() {
    // The paper's guarantee, checked by the engine on every migration:
    // running the full suite under DistWS would panic on a violation.
    for app in apps::quick_suite() {
        let mut sim = Simulation::new(ClusterConfig::new(4, 2), Box::new(DistWs::default()));
        sim.run_app(app.as_ref());
    }
}

#[test]
fn reports_are_deterministic_across_repeated_runs() {
    let run = || {
        let app = apps::TuringRing::quick();
        let mut sim = Simulation::new(ClusterConfig::new(4, 2), Box::new(DistWs::default()));
        sim.run_app(&app)
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan_ns, b.makespan_ns);
    assert_eq!(a.steals, b.steals);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.cache, b.cache);
}
