//! Writing your own workload: a divide-and-conquer map-reduce with
//! locality annotations, run under every scheduler.
//!
//! The paper's programming model in miniature: tasks that encapsulate
//! their data and are coarse enough to amortize a migration get the
//! `@AnyPlaceTask` annotation ([`Locality::Flexible`]); tasks that
//! would need repeated remote references stay
//! [`Locality::Sensitive`].
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use distws::prelude::*;
use distws_core::{ClusterConfig as Cfg, ObjectId, Workload};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sum `f(i)` over a large range by recursive splitting; leaves are
/// flexible (they carry only their range), the final reduction is
/// sensitive to place 0.
struct RangeSum {
    n: u64,
    grain: u64,
    acc: Mutex<Option<Arc<AtomicU64>>>,
}

fn f(i: u64) -> u64 {
    // Deliberately irregular per-item cost: some items are 100× heavier.
    if i.is_multiple_of(97) {
        (0..100).fold(i, |a, k| a.wrapping_mul(31).wrapping_add(k))
    } else {
        i.wrapping_mul(2654435761)
    }
}

fn split_task(acc: Arc<AtomicU64>, lo: u64, hi: u64, grain: u64) -> TaskSpec {
    let n = hi - lo;
    // Cost model: heavy items dominate.
    let est = 40 * n + 4_000 * (n / 97);
    let locality = if n <= grain * 8 {
        Locality::Flexible
    } else {
        Locality::Sensitive
    };
    TaskSpec::new(PlaceId(0), locality, est, "range-sum", move |s| {
        if hi - lo <= grain {
            let mut sum = 0u64;
            for i in lo..hi {
                sum = sum.wrapping_add(f(i));
            }
            acc.fetch_add(sum, Ordering::Relaxed);
            // Account the data this leaf touched (nothing remote).
            s.read(ObjectId(1), lo * 8, (hi - lo) * 8, s.here());
        } else {
            let mid = lo + (hi - lo) / 2;
            let here = s.here();
            for (a, b) in [(lo, mid), (mid, hi)] {
                let mut t = split_task(Arc::clone(&acc), a, b, grain);
                t.home = here;
                s.spawn(t);
            }
        }
    })
}

impl Workload for RangeSum {
    fn name(&self) -> String {
        "RangeSum".into()
    }

    fn roots(&self, cfg: &Cfg) -> Vec<TaskSpec> {
        let acc = Arc::new(AtomicU64::new(0));
        *self.acc.lock().unwrap() = Some(Arc::clone(&acc));
        // One root per place over a block of the range (`async at (p)`).
        let per = self.n / cfg.places as u64;
        (0..cfg.places)
            .map(|p| {
                let lo = p as u64 * per;
                let hi = if p == cfg.places - 1 {
                    self.n
                } else {
                    lo + per
                };
                let mut t = split_task(Arc::clone(&acc), lo, hi, self.grain);
                t.home = PlaceId(p);
                t
            })
            .collect()
    }

    fn validate(&self) -> Result<(), String> {
        let got = self
            .acc
            .lock()
            .unwrap()
            .as_ref()
            .ok_or("no run")?
            .load(Ordering::Relaxed);
        let expect = (0..self.n).fold(0u64, |a, i| a.wrapping_add(f(i)));
        if got == expect {
            Ok(())
        } else {
            Err(format!("sum {got} != {expect}"))
        }
    }
}

fn main() {
    let app = RangeSum {
        n: 1 << 20,
        grain: 1 << 12,
        acc: Mutex::new(None),
    };
    let cluster = ClusterConfig::new(4, 4);
    println!(
        "custom RangeSum workload on {} workers:",
        cluster.total_workers()
    );
    for policy in [
        Box::new(X10Ws) as Box<dyn Policy>,
        Box::new(DistWsNs::default()) as Box<dyn Policy>,
        Box::new(DistWs::default()) as Box<dyn Policy>,
    ] {
        let name = policy.name();
        let r = Simulation::new(cluster.clone(), policy).run_app(&app);
        println!(
            "  {:<10} makespan {:>8.2} ms  remote steals {:>5}  messages {:>6}",
            name,
            r.makespan_ns as f64 / 1e6,
            r.steals.remote,
            r.messages.total()
        );
    }
    println!("validated: every scheduler produced the identical sum");
}
