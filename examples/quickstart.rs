//! Quickstart: run Delaunay mesh generation under the paper's DistWS
//! scheduler on a simulated 4-node cluster and print the headline
//! numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use distws::apps::DelaunayGen;
use distws::prelude::*;

fn main() {
    // A 4-place × 8-worker cluster (the paper's full evaluation uses
    // 16 × 8 = 128 workers; see the `repro` binary for that).
    let cluster = ClusterConfig::new(4, 8);
    let app = DelaunayGen::default();

    // Baseline: X10's shipped scheduler — stealing confined to a place.
    let baseline = Simulation::new(cluster.clone(), Box::new(X10Ws)).run_app(&app);
    // DistWS: locality-flexible tasks may be stolen across places.
    let distws = Simulation::new(cluster, Box::new(DistWs::default())).run_app(&app);

    println!("Delaunay mesh generation, {} tasks", distws.tasks_executed);
    println!(
        "  X10WS : makespan {:>8.2} ms, remote steals {:>5}, mean utilization {:>5.1} %",
        baseline.makespan_ns as f64 / 1e6,
        baseline.steals.remote,
        baseline.utilization.mean() * 100.0
    );
    println!(
        "  DistWS: makespan {:>8.2} ms, remote steals {:>5}, mean utilization {:>5.1} %",
        distws.makespan_ns as f64 / 1e6,
        distws.steals.remote,
        distws.utilization.mean() * 100.0
    );
    println!(
        "  DistWS speedup over X10WS: {:.1} %",
        (baseline.makespan_ns as f64 / distws.makespan_ns as f64 - 1.0) * 100.0
    );
}
