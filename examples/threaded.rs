//! The real multithreaded runtime: the same workloads and policies on
//! OS threads with lock-free Chase–Lev deques, including injected
//! network latency between places.
//!
//! ```sh
//! cargo run --release --example threaded
//! ```

use distws::apps::{KMeans, Uts};
use distws::prelude::*;
use distws::runtime::{Runtime, RuntimeConfig};
use std::time::Duration;

fn main() {
    let cluster = ClusterConfig::new(2, 2);

    println!("k-means on {} real threads:", cluster.total_workers());
    for policy in [
        Box::new(X10Ws) as Box<dyn Policy>,
        Box::new(DistWs::default()) as Box<dyn Policy>,
    ] {
        let name = policy.name();
        let mut rt = Runtime::new(cluster.clone(), policy);
        let r = rt.run_app(&KMeans::quick());
        println!(
            "  {:<8} wall {:>7.2} ms  tasks {:>5}  steals: {} private / {} shared / {} remote",
            name,
            r.makespan_ns as f64 / 1e6,
            r.tasks_executed,
            r.steals.local_private,
            r.steals.local_shared,
            r.steals.remote,
        );
    }

    println!("\nUTS with 200 µs injected inter-place latency:");
    let mut cfg = RuntimeConfig::new(cluster);
    cfg.net_delay = Some(Duration::from_micros(200));
    let mut rt = Runtime::with_config(cfg, Box::new(DistWs::default()));
    let r = rt.run_app(&Uts::quick());
    println!(
        "  DistWS   wall {:>7.2} ms  tasks {:>5}  remote steals {}",
        r.makespan_ns as f64 / 1e6,
        r.tasks_executed,
        r.steals.remote,
    );
    println!("\nall runs validated against sequential golden results");
}
