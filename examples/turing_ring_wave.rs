//! Domain scenario: the Turing ring's travelling predator/prey wave
//! and what it does to per-node utilization (the paper's §IV.B
//! motivating example and Fig. 7 in miniature).
//!
//! ```sh
//! cargo run --release --example turing_ring_wave
//! ```

use distws::apps::TuringRing;
use distws::prelude::*;

fn bar(frac: f64) -> String {
    let n = (frac * 30.0).round().clamp(0.0, 30.0) as usize;
    format!("{}{}", "#".repeat(n), ".".repeat(30 - n))
}

fn main() {
    let cluster = ClusterConfig::new(8, 4);
    let app = TuringRing::new(512, 1 << 16, 60);

    println!("Turing ring: 512 cells, 65 536 bodies, 60 iterations, 8 places × 4 workers");
    println!("bodies start concentrated in the first cells and travel around the ring,");
    println!("so places take turns being overloaded — X10WS cannot rebalance them.\n");

    for policy in [
        Box::new(X10Ws) as Box<dyn Policy>,
        Box::new(DistWs::default()) as Box<dyn Policy>,
    ] {
        let name = policy.name();
        let r = Simulation::new(cluster.clone(), policy).run_app(&app);
        println!(
            "{name}: makespan {:.2} ms, remote steals {}",
            r.makespan_ns as f64 / 1e6,
            r.steals.remote
        );
        for (p, u) in r.utilization.per_place.iter().enumerate() {
            println!("  place {p}: {} {:>5.1} %", bar(*u), u * 100.0);
        }
        println!(
            "  utilization disparity (max-min): {:.1} %\n",
            r.utilization.disparity() * 100.0
        );
    }
}
