//! Fixture: names `HashMap` inside an output-path crate (the test
//! lints this file as if it lived at `crates/sim/src/bad.rs`).

use std::collections::HashMap;

pub fn per_worker_totals(samples: &[(u32, u64)]) -> Vec<(u32, u64)> {
    let mut totals: HashMap<u32, u64> = HashMap::new();
    for &(w, v) in samples {
        *totals.entry(w).or_insert(0) += v;
    }
    // Iteration order here depends on the hasher seed — exactly the
    // nondeterminism the rule exists to catch.
    totals.into_iter().collect()
}
