//! Seeded `unbounded-spin` violations: retry loops that ask another
//! party for work or a connection without any visible bound.

fn spin_until_victory(&mut self) -> Task {
    loop {
        if let Some(t) = self.try_steal(self.victim) {
            return t;
        }
    }
}

fn probe_forever(&mut self, v: PlaceId) -> Vec<Task> {
    while self.inbox.is_empty() {
        self.send(v, Frame::StealProbe { id: self.seq() });
    }
    self.inbox.drain()
}

// Near-misses: each of these loops is visibly bounded.

fn bounded_by_budget(&mut self, v: PlaceId) -> Option<Task> {
    let mut attempt = 1;
    loop {
        if let Some(t) = self.try_steal(v) {
            return Some(t);
        }
        if attempt > self.retry.budget() {
            return None;
        }
        attempt += 1;
    }
}

fn bounded_by_backoff(&mut self, p: PlaceId) {
    loop {
        self.reconnect(p);
        std::thread::sleep(self.retry.backoff(1, &mut self.rng));
    }
}

fn bounded_by_break(&mut self, v: PlaceId) -> Option<Task> {
    loop {
        match self.probe(v) {
            Some(t) => return Some(t),
            None => break,
        }
    }
    None
}

fn no_spin_call_at_all(&self) {
    while !self.shutdown() {
        std::thread::sleep(POLL);
    }
}
