//! Fixture: exercises every rule's *near-miss* and must lint clean
//! even under the strictest path scoping (`crates/sim/src/engine.rs`).

use std::collections::BTreeMap;

/// Mentions of HashMap, Instant::now and unwrap() in doc comments and
/// strings are not code.
pub const DOC: &str = "HashMap iteration and Instant::now and rand::random and unwrap()";

pub const RAW: &str = r#"thread_rng() inside a raw string is not a call"#;

pub fn totals(samples: &[(u32, u64)]) -> BTreeMap<u32, u64> {
    let mut out = BTreeMap::new();
    for &(w, v) in samples {
        *out.entry(w).or_insert(0u64) += v;
    }
    out
}

/// `unwrap_or` and `unwrap_or_else` are fine — only bare
/// `.unwrap()` / `.expect()` can panic.
pub fn head(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap_or(0)
}

pub struct Raw(*mut u8);

// SAFETY: the pointer is only dereferenced while the owning allocation
// is live; documented contract on the constructor.
unsafe impl Send for Raw {}

pub fn deref(r: &Raw) -> u8 {
    // SAFETY: callers uphold the liveness contract above.
    unsafe { *r.0 }
}

#[cfg(test)]
mod tests {
    /// Test modules may unwrap freely even in engine.rs.
    #[test]
    fn unwrap_allowed_in_tests() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
