//! Fixture: `.unwrap()` on the engine hot path (the test lints this
//! file as if it were `crates/sim/src/engine.rs`).

pub fn pop_ready(queue: &mut Vec<u64>) -> u64 {
    queue.pop().unwrap()
}

pub fn lookup(map: &std::collections::BTreeMap<u64, u64>, k: u64) -> u64 {
    *map.get(&k).expect("task must be registered")
}
