//! Fixture: opens real sockets and spawns a process outside the
//! cluster runtime (the test lints this file as if it lived at
//! `crates/sched/src/bad.rs`).

use std::net::TcpListener;
use std::os::unix::net::UnixStream;

pub fn serve() -> std::io::Result<()> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let _peer = UnixStream::connect("/tmp/sock")?;
    let _child = std::process::Command::new("true").spawn()?;
    drop(listener);
    Ok(())
}

/// Near-misses: a CLI subcommand enum and a doc mention of
/// TcpStream are not IO.
pub enum Command {
    Run,
    Report,
}

pub const DOC: &str = "TcpStream and UnixListener in a string are fine";
