//! Fixture: draws unseeded randomness (forbidden everywhere).

pub fn pick_victim(n: usize) -> usize {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..n)
}
