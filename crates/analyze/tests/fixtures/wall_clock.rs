//! Fixture: reads the wall clock outside `runtime`/`bench` (the test
//! lints this file as if it lived at `crates/sched/src/bad.rs`).

use std::time::Instant;

pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_nanos())
}
