//! Fixture: contains a hash-iter violation but suppresses it with a
//! file-level allow pragma. The wall-clock violation must still fire.
// distws-lint: allow(hash-iter)

use std::collections::HashMap;
use std::time::Instant;

pub fn suppressed() -> HashMap<u32, u32> {
    HashMap::new()
}

pub fn still_caught() -> Instant {
    Instant::now()
}
