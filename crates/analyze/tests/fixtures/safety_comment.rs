//! Fixture: `unsafe` block and `unsafe impl` without `// SAFETY:`
//! comments.

pub struct Raw(*mut u8);

unsafe impl Send for Raw {}

pub fn deref(r: &Raw) -> u8 {
    unsafe { *r.0 }
}
