//! End-to-end fixtures for the determinism lint: each rule has one
//! fixture file that must trip it (with the right `file:line`), plus a
//! clean fixture full of near-misses that must not.

use distws_analyze::{lint_source, Rule};

fn lines_for(rule: Rule, rel_path: &str, src: &str) -> Vec<u32> {
    lint_source(rel_path, src)
        .into_iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn hash_iter_fires_in_output_path_crates() {
    let src = include_str!("fixtures/hash_iter.rs");
    // `HashMap` appears in the `use` (line 4) and twice in the type
    // annotation + constructor (line 7).
    assert_eq!(
        lines_for(Rule::HashIter, "crates/sim/src/bad.rs", src),
        vec![4, 7, 7]
    );
    // The same source is fine outside the scoped crates.
    assert!(lines_for(Rule::HashIter, "crates/apps/src/ok.rs", src).is_empty());
}

#[test]
fn wall_clock_fires_outside_runtime_and_bench() {
    let src = include_str!("fixtures/wall_clock.rs");
    assert_eq!(
        lines_for(Rule::WallClock, "crates/sched/src/bad.rs", src),
        vec![7]
    );
    assert!(lines_for(Rule::WallClock, "crates/runtime/src/ok.rs", src).is_empty());
    assert!(lines_for(Rule::WallClock, "crates/bench/src/ok.rs", src).is_empty());
}

#[test]
fn unseeded_rng_fires_everywhere() {
    let src = include_str!("fixtures/unseeded_rng.rs");
    assert_eq!(
        lines_for(Rule::UnseededRng, "crates/apps/src/bad.rs", src),
        vec![4]
    );
    assert_eq!(
        lines_for(Rule::UnseededRng, "crates/runtime/src/bad.rs", src),
        vec![4]
    );
}

#[test]
fn unwrap_fires_only_in_engine() {
    let src = include_str!("fixtures/unwrap_hot_path.rs");
    assert_eq!(
        lines_for(Rule::UnwrapHotPath, "crates/sim/src/engine.rs", src),
        vec![5, 9]
    );
    assert!(lines_for(Rule::UnwrapHotPath, "crates/sim/src/events.rs", src).is_empty());
}

#[test]
fn missing_safety_comment_fires() {
    let src = include_str!("fixtures/safety_comment.rs");
    assert_eq!(
        lines_for(Rule::SafetyComment, "crates/apps/src/bad.rs", src),
        vec![6, 9]
    );
}

#[test]
fn net_process_fires_outside_cluster_and_bench() {
    let src = include_str!("fixtures/net_process.rs");
    // Two `use` lines, two constructor calls, one `process::Command`;
    // the `enum Command` and string mentions are near-misses.
    assert_eq!(
        lines_for(Rule::NetProcess, "crates/sched/src/bad.rs", src),
        vec![5, 6, 9, 10, 11]
    );
    assert!(lines_for(Rule::NetProcess, "crates/cluster/src/place.rs", src).is_empty());
    assert!(lines_for(Rule::NetProcess, "crates/bench/src/bin/repro.rs", src).is_empty());
}

#[test]
fn unbounded_spin_fires_in_sched_and_cluster() {
    let src = include_str!("fixtures/unbounded_spin.rs");
    // The bare steal loop (line 5) and the probe-until-nonempty
    // `while` (line 13); the budget / backoff / `break` loops and the
    // spin-free shutdown poll are near-misses.
    assert_eq!(
        lines_for(Rule::UnboundedSpin, "crates/sched/src/bad.rs", src),
        vec![5, 13]
    );
    assert_eq!(
        lines_for(Rule::UnboundedSpin, "crates/cluster/src/bad.rs", src),
        vec![5, 13]
    );
    // Out of scope: the simulator and runtime model retry explicitly.
    assert!(lines_for(Rule::UnboundedSpin, "crates/sim/src/ok.rs", src).is_empty());
}

#[test]
fn clean_fixture_has_no_violations_under_strictest_scoping() {
    let src = include_str!("fixtures/clean.rs");
    let vs = lint_source("crates/sim/src/engine.rs", src);
    assert!(vs.is_empty(), "expected clean, got: {vs:?}");
}

#[test]
fn allow_pragma_suppresses_only_the_named_rule() {
    let src = include_str!("fixtures/allow_pragma.rs");
    let vs = lint_source("crates/sim/src/bad.rs", src);
    assert!(
        vs.iter().all(|v| v.rule != Rule::HashIter),
        "hash-iter should be suppressed: {vs:?}"
    );
    assert_eq!(
        lines_for(Rule::WallClock, "crates/sim/src/bad.rs", src),
        vec![13]
    );
}

#[test]
fn violations_render_as_file_line_rule() {
    let src = include_str!("fixtures/wall_clock.rs");
    let vs = lint_source("crates/sched/src/bad.rs", src);
    let rendered = vs[0].to_string();
    assert!(
        rendered.starts_with("crates/sched/src/bad.rs:7: wall-clock: "),
        "unexpected rendering: {rendered}"
    );
}
