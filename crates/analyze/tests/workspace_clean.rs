//! Self-check: the real workspace must pass its own determinism lint.
//! This is the same walk `repro lint` performs, run as a test so
//! `cargo test` alone catches regressions.

use std::path::Path;

#[test]
fn workspace_passes_own_lint() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let violations = distws_analyze::lint_workspace(&root).expect("walk workspace");
    assert!(
        violations.is_empty(),
        "workspace lint violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
