//! A minimal, line-aware Rust lexer for the lint pass.
//!
//! This is not a full Rust grammar — it only needs to answer "which
//! identifiers, punctuation and comments appear on which line", while
//! *never* confusing the contents of a string literal or a comment
//! with code. That rules out `grep`: `"Instant::now"` inside a test
//! string, a doc comment mentioning `HashMap`, or a `//` inside a URL
//! must not fire lint rules. The lexer therefore understands:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string literals with escapes, byte strings, and raw strings with
//!   arbitrary `#` fencing (`r"…"`, `r#"…"#`, `br##"…"##`);
//! * char literals vs lifetimes (`'a'` vs `'a`);
//! * identifiers (keywords are just identifiers here), numbers, and
//!   single-character punctuation.
//!
//! Comments are kept in the token stream — the `safety-comment` rule
//! and the `distws-lint: allow(...)` pragma scanner both read them.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `unsafe`, `fn`, …).
    Ident,
    /// One punctuation character (`:`, `{`, `.`, …).
    Punct,
    /// `// …` comment, text includes the slashes.
    LineComment,
    /// `/* … */` comment (possibly nested), text includes delimiters.
    BlockComment,
    /// String / byte-string / raw-string literal, text includes quotes.
    Str,
    /// Character literal (`'x'`).
    Char,
    /// Lifetime (`'a`), without the quote in `text`.
    Lifetime,
    /// Numeric literal (lexed loosely: digits plus alphanumerics/`_`/`.`).
    Number,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What kind of token.
    pub kind: TokKind,
    /// The token text as it appears in the source.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// Lex `src` into a token stream. Never fails: unterminated literals
/// or comments consume the rest of the input as one token, which is
/// good enough for linting (rustc will reject such files anyway).
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = b[i];
        let start_line = line;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let mut j = i;
                while j < n && b[j] != '\n' {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    text: b[i..j].iter().collect(),
                    line: start_line,
                });
                i = j;
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                // Nested block comment.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if b[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    text: b[i..j].iter().collect(),
                    line: start_line,
                });
                i = j;
            }
            '"' => {
                let (j, nl) = scan_string(&b, i);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: b[i..j].iter().collect(),
                    line: start_line,
                });
                line += nl;
                i = j;
            }
            'r' | 'b' if starts_string_prefix(&b, i) => {
                let (j, nl) = scan_prefixed_string(&b, i);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: b[i..j].iter().collect(),
                    line: start_line,
                });
                line += nl;
                i = j;
            }
            '\'' => {
                // Lifetime or char literal. `'a` followed by a non-quote
                // is a lifetime; everything else is a char literal.
                let mut j = i + 1;
                if j < n && is_ident_start(b[j]) {
                    let mut k = j;
                    while k < n && is_ident(b[k]) {
                        k += 1;
                    }
                    if k < n && b[k] == '\'' {
                        // 'a' — a char literal.
                        toks.push(Tok {
                            kind: TokKind::Char,
                            text: b[i..k + 1].iter().collect(),
                            line: start_line,
                        });
                        i = k + 1;
                    } else {
                        toks.push(Tok {
                            kind: TokKind::Lifetime,
                            text: b[j..k].iter().collect(),
                            line: start_line,
                        });
                        i = k;
                    }
                } else {
                    // Escaped or punctuation char literal: '\n', '\'', '{'.
                    if j < n && b[j] == '\\' {
                        j += 2;
                        // \u{…} escapes.
                        while j < n && b[j] != '\'' {
                            j += 1;
                        }
                    } else if j < n {
                        j += 1;
                    }
                    if j < n && b[j] == '\'' {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: b[i..j].iter().collect(),
                        line: start_line,
                    });
                    i = j;
                }
            }
            c if is_ident_start(c) => {
                let mut j = i;
                while j < n && is_ident(b[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[i..j].iter().collect(),
                    line: start_line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < n && (is_ident(b[j]) || b[j] == '.') {
                    // Stop a `1..10` range from swallowing the second dot.
                    if b[j] == '.' && j + 1 < n && b[j + 1] == '.' {
                        break;
                    }
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Number,
                    text: b[i..j].iter().collect(),
                    line: start_line,
                });
                i = j;
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line: start_line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Whether `b[i..]` begins a raw/byte string prefix (`r"`, `r#`, `b"`,
/// `br"`, `br#`, `b'`-is-not-a-string).
fn starts_string_prefix(b: &[char], i: usize) -> bool {
    let n = b.len();
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j < n && b[j] == '\'' {
            return false; // byte char literal, handled as ident+char
        }
    }
    if j < n && b[j] == 'r' {
        j += 1;
        while j < n && b[j] == '#' {
            j += 1;
        }
    }
    j < n && b[j] == '"' && j > i
}

/// Scan a plain `"…"` string starting at `i`; returns (end index past
/// the closing quote, newlines consumed).
fn scan_string(b: &[char], i: usize) -> (usize, u32) {
    let n = b.len();
    let mut j = i + 1;
    let mut nl = 0u32;
    while j < n {
        match b[j] {
            '\\' => j += 2,
            '\n' => {
                nl += 1;
                j += 1;
            }
            '"' => return (j + 1, nl),
            _ => j += 1,
        }
    }
    (n, nl)
}

/// Scan `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##` starting at `i`.
fn scan_prefixed_string(b: &[char], i: usize) -> (usize, u32) {
    let n = b.len();
    let mut j = i;
    let mut raw = false;
    if b[j] == 'b' {
        j += 1;
    }
    if j < n && b[j] == 'r' {
        raw = true;
        j += 1;
    }
    let mut hashes = 0usize;
    while j < n && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < n && b[j] == '"');
    j += 1; // opening quote
    let mut nl = 0u32;
    while j < n {
        match b[j] {
            '\\' if !raw => j += 2,
            '\n' => {
                nl += 1;
                j += 1;
            }
            '"' => {
                // Need `hashes` trailing #s to close a raw string.
                let mut k = j + 1;
                let mut seen = 0usize;
                while seen < hashes && k < n && b[k] == '#' {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return (k, nl);
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    (n, nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r##"
            let a = "Instant::now() // not code";
            // HashMap in a comment is fine for code rules
            /* Instant::now() in /* nested */ comment */
            let b = r#"SystemTime::now()"#;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_the_rest_of_the_line() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        let lts: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lts.len(), 3);
    }

    #[test]
    fn char_literals_with_escapes() {
        let src = r"let q = '\''; let n = '\n'; let open = '{'; let u = '\u{1F600}';";
        let chars: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(chars.len(), 4, "{chars:?}");
        // Nothing after the literals was swallowed.
        assert!(idents(src).contains(&"u".to_string()));
    }

    #[test]
    fn line_numbers_are_accurate() {
        let src = "line1\n\"s\ntring\"\nunsafe { }\n";
        let toks = lex(src);
        let unsafe_tok = toks.iter().find(|t| t.text == "unsafe").unwrap();
        assert_eq!(unsafe_tok.line, 4);
    }

    #[test]
    fn raw_strings_with_hash_fencing() {
        let src = r###"let x = r##"quote " and "# inside"##; let y = 1;"###;
        let strs: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(idents(src).contains(&"y".to_string()));
    }

    #[test]
    fn byte_strings_are_strings() {
        let src = r#"let x = b"HashMap"; let c = b'a';"#;
        let toks = lex(src);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.starts_with("b\"")));
        assert!(!idents(src).contains(&"HashMap".to_string()));
    }
}
