//! The determinism lint pass.
//!
//! Seven token-level rules encode the repo's reproducibility contract
//! (every figure, trace and report must regenerate byte-identically
//! from a seed):
//!
//! | rule | what it forbids | where |
//! |---|---|---|
//! | `hash-iter` | `HashMap`/`HashSet` (iteration order leaks into output) | `sim`, `netsim`, `sched`, `trace` |
//! | `wall-clock` | `SystemTime::now` / `Instant::now` | everywhere except `runtime`, `bench`, `metrics`, `cluster` |
//! | `unseeded-rng` | `thread_rng`, `from_entropy`, `OsRng`, `getrandom`, `RandomState`, `rand::random` | everywhere |
//! | `unwrap-hot-path` | `.unwrap()` / `.expect(…)` | `sim/src/engine.rs` |
//! | `safety-comment` | `unsafe {` / `unsafe impl` without a `// SAFETY:` comment ≤ 3 lines above | everywhere |
//! | `net-process` | `std::net`/`std::os::unix::net` socket types, `process::Command` | everywhere except `cluster`, `bench` |
//! | `unbounded-spin` | `loop`/`while` retry loops issuing a steal/probe/reconnect with no backoff, budget or `break` | `sched`, `cluster` |
//!
//! `hash-iter` is deliberately an over-approximation: proving "this
//! map is never iterated" needs type information a token scanner does
//! not have, so output-path crates simply may not name the types at
//! all — `BTreeMap`/`BTreeSet` give the same API with a deterministic
//! order. Exceptions are explicit and greppable via a file-level
//! pragma:
//!
//! ```text
//! // distws-lint: allow(hash-iter)
//! // distws-lint: allow(wall-clock, unseeded-rng)
//! ```
//!
//! The pass lints `src/` trees only (fixtures with seeded violations
//! live under `tests/`, and test code may use `HashMap` freely — it
//! produces no run output).

use crate::lexer::{lex, Tok, TokKind};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` named in an output-path crate.
    HashIter,
    /// `SystemTime::now` / `Instant::now` outside `runtime`/`bench`.
    WallClock,
    /// Unseeded randomness anywhere.
    UnseededRng,
    /// `.unwrap()` / `.expect(` in the simulator engine hot path.
    UnwrapHotPath,
    /// `unsafe` block/impl without a `// SAFETY:` comment.
    SafetyComment,
    /// Socket types / `process::Command` outside the cluster runtime.
    NetProcess,
    /// A steal/probe/reconnect retry loop with no visible bound.
    UnboundedSpin,
}

impl Rule {
    /// The pragma / CLI name of the rule.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::WallClock => "wall-clock",
            Rule::UnseededRng => "unseeded-rng",
            Rule::UnwrapHotPath => "unwrap-hot-path",
            Rule::SafetyComment => "safety-comment",
            Rule::NetProcess => "net-process",
            Rule::UnboundedSpin => "unbounded-spin",
        }
    }

    /// Every rule, in diagnostic order.
    pub fn all() -> [Rule; 7] {
        [
            Rule::HashIter,
            Rule::WallClock,
            Rule::UnseededRng,
            Rule::UnwrapHotPath,
            Rule::SafetyComment,
            Rule::NetProcess,
            Rule::UnboundedSpin,
        ]
    }

    /// Parse a pragma name back to a rule.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::all().into_iter().find(|r| r.name() == name)
    }
}

/// One finding: `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Crates whose `src/` may not name `HashMap`/`HashSet` — anything
/// that feeds report, trace or figure output.
const HASH_FORBIDDEN_CRATES: &[&str] = &["sim", "netsim", "sched", "trace"];
/// Crates allowed to read the wall clock (real-time execution, the
/// timing harness, and the phase-timer metrics sink — the sim engine
/// only ever calls sink methods, so it stays clock-free itself).
const WALL_CLOCK_ALLOWED_CRATES: &[&str] = &["runtime", "bench", "metrics", "cluster"];
/// Crates allowed to open sockets and spawn processes: the real
/// multi-process cluster runtime and the CLI that launches it.
/// Everything else must stay runnable in the deterministic simulator,
/// where IO and process boundaries are modelled, not real.
const NET_ALLOWED_CRATES: &[&str] = &["cluster", "bench"];
/// Crates whose retry loops must visibly terminate: the scheduler
/// policies and the real cluster runtime. The liveness checker proves
/// the *protocol* makes progress under weak fairness
/// (`distws_analyze::liveness`, steal-progress); this rule keeps the
/// *implementation's* spin sites honest — every loop that issues a
/// steal, probe or reconnect must carry a backoff, a budget check, or
/// a `break` somewhere in its body.
const SPIN_SCOPED_CRATES: &[&str] = &["sched", "cluster"];

/// Crate name (the `<c>` of `crates/<c>/src/...`) a workspace-relative
/// path belongs to; `None` for the root `src/`.
fn crate_of(rel_path: &str) -> Option<&str> {
    let mut parts = rel_path.split('/');
    if parts.next()? == "crates" {
        parts.next()
    } else {
        None
    }
}

/// Lint one file's source text. `rel_path` must be workspace-relative
/// with `/` separators (it selects which scoped rules apply).
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Violation> {
    let toks = lex(src);
    let krate = crate_of(rel_path);
    let mut out = Vec::new();

    // File-level allow pragmas: `// distws-lint: allow(a, b)`.
    let mut allowed: Vec<Rule> = Vec::new();
    for t in &toks {
        if t.kind == TokKind::LineComment || t.kind == TokKind::BlockComment {
            collect_pragmas(&t.text, &mut allowed);
        }
    }

    let comments: Vec<&Tok> = toks
        .iter()
        .filter(|t| matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();

    let mut push = |rule: Rule, line: u32, message: String| {
        if !allowed.contains(&rule) {
            out.push(Violation {
                file: rel_path.to_string(),
                line,
                rule,
                message,
            });
        }
    };

    let hash_scoped = krate.is_some_and(|c| HASH_FORBIDDEN_CRATES.contains(&c));
    let wall_scoped = !krate.is_some_and(|c| WALL_CLOCK_ALLOWED_CRATES.contains(&c));
    let net_scoped = !krate.is_some_and(|c| NET_ALLOWED_CRATES.contains(&c));
    let spin_scoped = krate.is_some_and(|c| SPIN_SCOPED_CRATES.contains(&c));
    let engine_scoped = rel_path.ends_with("sim/src/engine.rs");

    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" if hash_scoped => push(
                Rule::HashIter,
                t.line,
                format!(
                    "`{}` in an output-path crate: iteration order is \
                     nondeterministic; use BTreeMap/BTreeSet or sort first",
                    t.text
                ),
            ),
            "SystemTime" | "Instant" if wall_scoped && followed_by_now(&code, i) => push(
                Rule::WallClock,
                t.line,
                format!(
                    "`{}::now` leaks wall-clock time into deterministic code; \
                     use the simulator's virtual clock",
                    t.text
                ),
            ),
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom" | "RandomState" => push(
                Rule::UnseededRng,
                t.line,
                format!(
                    "`{}` draws unseeded randomness; derive a stream from the \
                     run seed (SplitMix64) instead",
                    t.text
                ),
            ),
            "random" if path_prefixed(&code, i, "rand") => push(
                Rule::UnseededRng,
                t.line,
                "`rand::random` draws unseeded randomness; derive a stream \
                 from the run seed (SplitMix64) instead"
                    .to_string(),
            ),
            "unwrap" | "expect"
                if engine_scoped && method_call(&code, i) && !in_test_span(&code, i) =>
            {
                push(
                    Rule::UnwrapHotPath,
                    t.line,
                    format!(
                        "`.{}()` in the engine hot path can panic mid-run; \
                         return an error or prove the invariant upstream",
                        t.text
                    ),
                )
            }
            "TcpListener" | "TcpStream" | "UdpSocket" | "UnixListener" | "UnixStream"
            | "UnixDatagram"
                if net_scoped =>
            {
                push(
                    Rule::NetProcess,
                    t.line,
                    format!(
                        "`{}` opens a real socket outside the cluster runtime; \
                         deterministic code must go through the simulated network",
                        t.text
                    ),
                )
            }
            "Command" if net_scoped && path_prefixed(&code, i, "process") => push(
                Rule::NetProcess,
                t.line,
                "`process::Command` spawns a real process outside the cluster \
                 runtime; deterministic code may not fork"
                    .to_string(),
            ),
            "loop" | "while" if spin_scoped => {
                if let Some(call) = unbounded_spin_call(&code, i) {
                    push(
                        Rule::UnboundedSpin,
                        t.line,
                        format!(
                            "retry loop issues `{call}` with no backoff, budget \
                             check or `break`; an empty victim spins this worker \
                             forever — bound it (see RetryPolicy / \
                             STEAL_RETRY_BUDGET)"
                        ),
                    );
                }
            }
            "unsafe"
                if begins_block_or_impl(&code, i) && !has_safety_comment(&comments, t.line) =>
            {
                push(
                    Rule::SafetyComment,
                    t.line,
                    "`unsafe` without a `// SAFETY:` comment on the \
                     preceding lines documenting why it is sound"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
    out.sort_by_key(|a| (a.line, a.rule));
    out
}

/// `ident :: now` — the two `:` puncts plus the `now` identifier.
fn followed_by_now(code: &[&Tok], i: usize) -> bool {
    code.get(i + 1).is_some_and(|t| t.text == ":")
        && code.get(i + 2).is_some_and(|t| t.text == ":")
        && code
            .get(i + 3)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == "now")
}

/// `prefix :: ident` at position `i` of `ident`.
fn path_prefixed(code: &[&Tok], i: usize, prefix: &str) -> bool {
    i >= 3
        && code[i - 1].text == ":"
        && code[i - 2].text == ":"
        && code[i - 3].kind == TokKind::Ident
        && code[i - 3].text == prefix
}

/// `. ident (` — a method call, not a struct field or import.
fn method_call(code: &[&Tok], i: usize) -> bool {
    i >= 1 && code[i - 1].text == "." && code.get(i + 1).is_some_and(|t| t.text == "(")
}

/// Whether token `i` appears after a `mod tests` opener — engine
/// test helpers may unwrap freely.
fn in_test_span(code: &[&Tok], i: usize) -> bool {
    let mut saw_mod = false;
    for t in code.iter().take(i) {
        if t.kind == TokKind::Ident && t.text == "mod" {
            saw_mod = true;
        } else if saw_mod && t.kind == TokKind::Ident && t.text == "tests" {
            return true;
        } else if t.kind == TokKind::Ident {
            saw_mod = false;
        }
    }
    false
}

/// Retry-ish operation names: anything that *asks another party for
/// work or a connection* and can come back empty-handed.
const SPIN_CALLS: &[&str] = &["steal", "probe", "reconnect"];
/// Evidence the loop is bounded. `break` exits it outright; a
/// `backoff`/`budget` ident means the body consults a retry policy
/// (`RetryPolicy::backoff`, `budget()` checks, decrementing budgets).
const SPIN_ESCAPES: &[&str] = &["backoff", "budget"];

/// For a `loop`/`while` keyword at `code[i]`: the name of a
/// steal/probe/reconnect invocation inside the loop body, if the body
/// shows no bound (no `break`, no backoff/budget ident). `None` means
/// the loop is fine.
///
/// Token-level, so deliberately approximate in both directions: an
/// invocation is an ident *containing* a [`SPIN_CALLS`] word followed
/// by `(` (call) or `{` (frame construction — sending a `StealProbe`
/// is issuing a probe), and a `break` anywhere in the body counts even
/// if it belongs to a nested loop. Genuine unconditional spins (the
/// thing Algorithm 1's retry budget exists to prevent) have neither;
/// anything cleverer earns a `distws-lint: allow(unbounded-spin)`
/// pragma and a comment explaining its bound.
fn unbounded_spin_call(code: &[&Tok], i: usize) -> Option<String> {
    // Scan the loop header (a `while` condition counts: `while budget
    // > 0 { … }` is bounded by its condition) and the brace-matched
    // body. A `;` or `}` before any `{` means this wasn't a loop
    // header after all (e.g. `loop` as a field name).
    let mut depth = 0usize;
    let mut spin: Option<String> = None;
    let mut j = i + 1;
    while j < code.len() {
        match code[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                if depth <= 1 {
                    break;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return None,
            _ => {}
        }
        if code[j].kind == TokKind::Ident {
            let name = code[j].text.to_ascii_lowercase();
            if code[j].text == "break" || SPIN_ESCAPES.iter().any(|e| name.contains(e)) {
                return None;
            }
            if spin.is_none()
                && SPIN_CALLS.iter().any(|c| name.contains(c))
                && code
                    .get(j + 1)
                    .is_some_and(|n| n.text == "(" || n.text == "{")
            {
                spin = Some(code[j].text.clone());
            }
        }
        j += 1;
    }
    spin
}

/// `unsafe {` or `unsafe impl` — the forms that *perform* unsafe
/// operations. `unsafe fn` declarations document their contract with a
/// `# Safety` doc section instead (clippy's `missing_safety_doc`).
fn begins_block_or_impl(code: &[&Tok], i: usize) -> bool {
    match code.get(i + 1) {
        Some(t) if t.text == "{" => true,
        Some(t) if t.kind == TokKind::Ident && t.text == "impl" => true,
        _ => false,
    }
}

/// A comment containing `SAFETY` in the contiguous comment block
/// immediately above (or on) the `unsafe` line. Multi-line SAFETY
/// justifications are common, so the lookback follows the comment
/// block however long it is — but a blank or code line breaks it.
fn has_safety_comment(comments: &[&Tok], unsafe_line: u32) -> bool {
    // Map every source line covered by a comment to whether that
    // comment mentions SAFETY (block comments span multiple lines).
    let mut by_line: BTreeMap<u32, bool> = BTreeMap::new();
    for c in comments {
        let span = c.text.matches('\n').count() as u32;
        let has = c.text.contains("SAFETY");
        for ln in c.line..=c.line + span {
            let e = by_line.entry(ln).or_insert(false);
            *e |= has;
        }
    }
    // Trailing comment on the `unsafe` line itself counts.
    if by_line.get(&unsafe_line).copied().unwrap_or(false) {
        return true;
    }
    // Walk upward through the contiguous run of commented lines.
    let mut ln = unsafe_line;
    while ln > 0 {
        ln -= 1;
        match by_line.get(&ln) {
            Some(true) => return true,
            Some(false) => continue,
            None => return false,
        }
    }
    false
}

/// Extract `distws-lint: allow(a, b)` rule names from a comment.
fn collect_pragmas(comment: &str, allowed: &mut Vec<Rule>) {
    let Some(pos) = comment.find("distws-lint:") else {
        return;
    };
    let rest = &comment[pos + "distws-lint:".len()..];
    let Some(open) = rest.find("allow(") else {
        return;
    };
    let Some(close) = rest[open..].find(')') else {
        return;
    };
    for name in rest[open + "allow(".len()..open + close].split(',') {
        if let Some(rule) = Rule::from_name(name.trim()) {
            if !allowed.contains(&rule) {
                allowed.push(rule);
            }
        }
    }
}

/// Recursively collect `.rs` files under `dir`, sorted for a
/// deterministic report order.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            rs_files(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint every `src/` tree of the workspace rooted at `root`
/// (`crates/*/src/**/*.rs` plus the root crate's `src/`). Returns all
/// violations, sorted by path then line.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    rs_files(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for m in members {
            rs_files(&m.join("src"), &mut files)?;
        }
    }
    let mut out = Vec::new();
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&f)?;
        out.extend(lint_source(&rel, &src));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_iter_scoped_to_output_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint_source("crates/sim/src/lib.rs", src).len(), 1);
        assert_eq!(lint_source("crates/trace/src/x.rs", src).len(), 1);
        // apps/core may hash freely.
        assert!(lint_source("crates/apps/src/lib.rs", src).is_empty());
        assert!(lint_source("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_scoped() {
        let src = "let t = Instant::now();\n";
        let v = lint_source("crates/sim/src/engine.rs", src);
        assert!(v.iter().any(|v| v.rule == Rule::WallClock), "{v:?}");
        assert!(lint_source("crates/runtime/src/worker.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
        // Mentioning the type without calling `now` is fine.
        assert!(lint_source("crates/sim/src/x.rs", "fn f(t: Instant) {}\n").is_empty());
    }

    #[test]
    fn unwrap_only_in_engine_and_not_fields() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); }\n";
        assert_eq!(lint_source("crates/sim/src/engine.rs", src).len(), 2);
        assert!(lint_source("crates/sim/src/lib.rs", src).is_empty());
        // `unwrap` as a plain identifier does not fire.
        assert!(lint_source("crates/sim/src/engine.rs", "let unwrap = 1;\n").is_empty());
    }

    #[test]
    fn safety_comment_window() {
        let ok = "// SAFETY: sound because reasons.\nunsafe { work() }\n";
        assert!(lint_source("crates/deque/src/x.rs", ok).is_empty());
        let bad = "unsafe { work() }\n";
        assert_eq!(lint_source("crates/deque/src/x.rs", bad).len(), 1);
        // unsafe fn declarations are clippy's job, not ours.
        let decl = "pub unsafe fn f() {}\n";
        assert!(lint_source("crates/deque/src/x.rs", decl).is_empty());
        // unsafe impls need the comment too.
        let imp = "unsafe impl Send for X {}\n";
        assert_eq!(lint_source("crates/deque/src/x.rs", imp).len(), 1);
    }

    #[test]
    fn pragma_suppresses_rule_for_file() {
        let src = "// distws-lint: allow(hash-iter)\nuse std::collections::HashMap;\n";
        assert!(lint_source("crates/sim/src/lib.rs", src).is_empty());
        let multi =
            "// distws-lint: allow(wall-clock, unseeded-rng)\nlet t = Instant::now(); thread_rng();\n";
        assert!(lint_source("crates/sim/src/x.rs", multi).is_empty());
    }

    #[test]
    fn net_process_scoped_to_cluster_and_bench() {
        let sock = "use std::net::TcpListener;\nlet s = UnixStream::connect(p);\n";
        let v = lint_source("crates/sim/src/x.rs", sock);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == Rule::NetProcess));
        // The cluster runtime and the launching CLI are the real-IO zone.
        assert!(lint_source("crates/cluster/src/place.rs", sock).is_empty());
        assert!(lint_source("crates/bench/src/bin/repro.rs", sock).is_empty());
    }

    #[test]
    fn command_requires_process_path() {
        let spawn = "let c = process::Command::new(exe);\n";
        assert_eq!(lint_source("crates/sched/src/x.rs", spawn).len(), 1);
        assert!(lint_source("crates/cluster/src/launch.rs", spawn).is_empty());
        // A plain `Command` ident (e.g. a CLI enum) does not fire.
        assert!(lint_source("crates/sched/src/x.rs", "enum Command { Run }\n").is_empty());
    }

    #[test]
    fn net_process_pragma_escapes() {
        let src = "// distws-lint: allow(net-process)\nuse std::net::TcpStream;\n";
        assert!(lint_source("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn cluster_may_read_wall_clock() {
        let src = "let t = Instant::now();\n";
        assert!(lint_source("crates/cluster/src/clock.rs", src).is_empty());
    }

    #[test]
    fn unbounded_spin_flags_bare_retry_loops() {
        let bad = "fn f(&mut self) { loop { if let Some(t) = self.try_steal() { return t; } } }\n";
        let v = lint_source("crates/sched/src/x.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::UnboundedSpin);
        // Out of scope: the simulator models spinning explicitly.
        assert!(lint_source("crates/sim/src/x.rs", bad).is_empty());
    }

    #[test]
    fn unbounded_spin_accepts_bounded_loops() {
        // A `break` bounds the loop.
        let brk = "loop { if probe(v).is_none() { break; } }\n";
        assert!(lint_source("crates/cluster/src/x.rs", brk).is_empty());
        // Consulting a retry budget bounds it.
        let bud = "loop { steal_from(v); if attempt > self.retry.budget() { return None; } }\n";
        assert!(lint_source("crates/sched/src/x.rs", bud).is_empty());
        // A backoff call counts as a bound.
        let back = "loop { reconnect(p); sleep(self.retry.backoff(a, rng)); }\n";
        assert!(lint_source("crates/cluster/src/x.rs", back).is_empty());
        // A budget in the `while` condition counts too.
        let cond = "while budget > 0 { steal_from(v); }\n";
        assert!(lint_source("crates/sched/src/x.rs", cond).is_empty());
        // A loop with no steal/probe/reconnect at all never fires.
        let idle = "loop { if done() { return; } sleep(ms); }\n";
        assert!(lint_source("crates/cluster/src/x.rs", idle).is_empty());
    }

    #[test]
    fn unbounded_spin_counts_frame_construction() {
        // Building a StealProbe frame in a loop is issuing a probe.
        let bad = "loop { send(v, Frame::StealProbe { id }); wait(id); }\n";
        let v = lint_source("crates/cluster/src/x.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::UnboundedSpin);
        // Pragma escape, like every other rule.
        let allowed = format!("// distws-lint: allow(unbounded-spin)\n{bad}");
        assert!(lint_source("crates/cluster/src/x.rs", &allowed).is_empty());
    }

    #[test]
    fn strings_do_not_fire() {
        let src = "let s = \"Instant::now() thread_rng HashMap unsafe {\";\n";
        assert!(lint_source("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn violations_render_as_file_line_rule() {
        let v = &lint_source(
            "crates/sim/src/lib.rs",
            "\nuse std::collections::HashSet;\n",
        )[0];
        let s = v.to_string();
        assert!(s.starts_with("crates/sim/src/lib.rs:2: hash-iter:"), "{s}");
    }
}
