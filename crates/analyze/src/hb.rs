//! Vector-clock happens-before validation of `distws-trace` JSONL
//! runs.
//!
//! A trace is a linearization of one simulated (or real) run: one
//! JSON object per line with `t` (virtual ns), `w` (global worker),
//! `p` (place) and `ev` (event kind) plus per-kind payload fields.
//! This module reconstructs the **causal order** from that stream and
//! checks the orderings the scheduler's correctness argument relies
//! on — the ones the fault-recovery path (steal timeouts, place
//! failure, task recovery, lease reclaim) is most likely to perturb:
//!
//! 1. every task's `spawn` happens-before its `task_start`;
//! 2. every relocation (`migration`, `task_recover`) of a task
//!    happens-before its `task_start`, and the last relocation's
//!    destination is the place that executed it;
//! 3. `task_start` happens-before `task_end` (the finish-latch release
//!    point — the engine decrements the enclosing latch when the
//!    worker frees at task end), on the same worker;
//! 4. **exactly-once**: one `task_start` and one `task_end` per task
//!    id, no spawned task left unexecuted;
//! 5. per-worker timestamps are monotonically non-decreasing (the
//!    invariant the steal-timeout net-log drain once broke) — except
//!    for `migration`/`message`, which can be place-level actions
//!    attributed to a representative worker (e.g. a lifeline push).
//!
//! Each worker is a vector-clock process. An event's clock is the join
//! of the worker's previous clock with the clocks of its causal
//! predecessors (the task's spawn for `steal_success`/`task_start`,
//! plus relocations for `task_start`), ticked in the worker's
//! component. "Happens-before" is then the strict component-wise
//! order — *not* file order, so an event stream that merely sorts
//! wrongly-attributed events by timestamp still fails.

use distws_json::Value;
use std::collections::BTreeMap;

/// One validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HbViolation {
    /// 1-based JSONL line of the offending event (0 = end-of-trace
    /// check with no single line).
    pub line: u64,
    /// Task id involved, when the check is per-task.
    pub task: Option<u64>,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for HbViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.task {
            Some(t) => write!(f, "line {}: task {}: {}", self.line, t, self.message),
            None => write!(f, "line {}: {}", self.line, self.message),
        }
    }
}

/// Validation summary.
#[derive(Debug, Clone)]
pub struct HbReport {
    /// Events consumed.
    pub events: u64,
    /// Distinct task ids seen.
    pub tasks: u64,
    /// Distinct workers seen.
    pub workers: u64,
    /// All failures, in detection order.
    pub violations: Vec<HbViolation>,
}

impl HbReport {
    /// Whether the trace passed every check.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A vector clock over a dense worker index space.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Vc(Vec<u64>);

impl Vc {
    fn join(&mut self, other: &Vc) {
        if other.0.len() > self.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if v > self.0[i] {
                self.0[i] = v;
            }
        }
    }

    fn tick(&mut self, idx: usize) {
        if idx >= self.0.len() {
            self.0.resize(idx + 1, 0);
        }
        self.0[idx] += 1;
    }

    /// Strict happens-before: `self ≤ other` componentwise and
    /// `self ≠ other`.
    fn before(&self, other: &Vc) -> bool {
        let n = self.0.len().max(other.0.len());
        let get = |v: &Vc, i: usize| v.0.get(i).copied().unwrap_or(0);
        let mut strictly = false;
        for i in 0..n {
            let (a, b) = (get(self, i), get(other, i));
            if a > b {
                return false;
            }
            if a < b {
                strictly = true;
            }
        }
        strictly
    }
}

/// Per-task causal bookkeeping.
#[derive(Debug, Clone, Default)]
struct TaskInfo {
    spawn: Option<(u64, Vc)>,           // (line, clock)
    relocations: Vec<(u64, Vc, u64)>,   // (line, clock, destination place)
    start: Option<(u64, Vc, u32, u64)>, // (line, clock, worker, place)
    end: Option<(u64, Vc, u32)>,        // (line, clock, worker)
    starts: u64,
    ends: u64,
}

/// Validate a whole trace given as JSONL text. Parse errors and
/// missing fields are reported as violations on their line; the
/// remaining lines are still checked.
pub fn validate_str(trace: &str) -> HbReport {
    validate_lines(trace.lines())
}

/// Validate a trace given line by line (no trailing-newline
/// requirements; blank lines are skipped).
pub fn validate_lines<'a>(lines: impl Iterator<Item = &'a str>) -> HbReport {
    let mut violations: Vec<HbViolation> = Vec::new();
    let mut tasks: BTreeMap<u64, TaskInfo> = BTreeMap::new();
    // worker id -> (dense index, last clock, last t_ns).
    let mut worker_idx: BTreeMap<u32, usize> = BTreeMap::new();
    let mut worker_vc: Vec<Vc> = Vec::new();
    let mut worker_t: Vec<u64> = Vec::new();
    let mut events = 0u64;

    for (lineno0, raw) in lines.enumerate() {
        let line = lineno0 as u64 + 1;
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let v = match Value::parse(raw) {
            Ok(v) => v,
            Err(e) => {
                violations.push(HbViolation {
                    line,
                    task: None,
                    message: format!("unparseable event: {e}"),
                });
                continue;
            }
        };
        let (Some(t_ns), Some(w), Some(p), Some(ev)) = (
            v.get("t").and_then(Value::as_u64),
            v.get("w").and_then(Value::as_u64),
            v.get("p").and_then(Value::as_u64),
            v.get("ev").and_then(Value::as_str),
        ) else {
            violations.push(HbViolation {
                line,
                task: None,
                message: "event missing t/w/p/ev fields".to_string(),
            });
            continue;
        };
        events += 1;
        let w = w as u32;

        let widx = *worker_idx.entry(w).or_insert_with(|| {
            worker_vc.push(Vc::default());
            worker_t.push(0);
            worker_vc.len() - 1
        });

        // Check 5: per-worker monotonic time — but only for events the
        // worker performs on its own timeline. `migration` and
        // `message` can be *place-level* actions (a lifeline push has
        // no thief worker yet) attributed to a representative worker
        // whose own timeline may already hold future-stamped events
        // from a synchronous steal sequence, so they are exempt.
        let own_timeline = !matches!(ev, "migration" | "message");
        if own_timeline {
            if t_ns < worker_t[widx] {
                violations.push(HbViolation {
                    line,
                    task: None,
                    message: format!(
                        "worker {w} time went backwards: {} -> {t_ns} ns",
                        worker_t[widx]
                    ),
                });
            }
            worker_t[widx] = worker_t[widx].max(t_ns);
        }

        // Build this event's clock: previous worker clock joined with
        // causal predecessors, ticked.
        let mut vc = worker_vc[widx].clone();
        let task_id = v.get("task").and_then(Value::as_u64);
        if let Some(tid) = task_id {
            let info = tasks.entry(tid).or_default();
            match ev {
                "task_start" => {
                    if let Some((_, svc)) = &info.spawn {
                        vc.join(svc);
                    }
                    for (_, rvc, _) in &info.relocations {
                        vc.join(rvc);
                    }
                }
                "steal_success" | "migration" | "task_recover" => {
                    if let Some((_, svc)) = &info.spawn {
                        vc.join(svc);
                    }
                }
                "task_end" => {
                    if let Some((_, svc, _, _)) = &info.start {
                        vc.join(svc);
                    }
                }
                _ => {}
            }
        }
        vc.tick(widx);

        if let Some(tid) = task_id {
            let info = tasks.get_mut(&tid).expect("entry created above");
            match ev {
                "spawn" => {
                    if info.spawn.is_some() {
                        violations.push(HbViolation {
                            line,
                            task: Some(tid),
                            message: "task spawned twice".to_string(),
                        });
                    } else {
                        info.spawn = Some((line, vc.clone()));
                    }
                }
                "migration" | "task_recover" => {
                    let to = v.get("to").and_then(Value::as_u64).unwrap_or(u64::MAX);
                    if info.start.is_some() {
                        violations.push(HbViolation {
                            line,
                            task: Some(tid),
                            message: format!("{ev} after the task already started"),
                        });
                    }
                    info.relocations.push((line, vc.clone(), to));
                }
                "task_start" => {
                    info.starts += 1;
                    if info.start.is_none() {
                        info.start = Some((line, vc.clone(), w, p));
                    }
                }
                "task_end" => {
                    info.ends += 1;
                    if info.end.is_none() {
                        info.end = Some((line, vc.clone(), w));
                    }
                }
                _ => {}
            }
        }

        worker_vc[widx] = vc;
    }

    // End-of-trace structural checks.
    for (&tid, info) in &tasks {
        let t = Some(tid);
        let mut bad = |line: u64, message: String| {
            violations.push(HbViolation {
                line,
                task: t,
                message,
            })
        };
        // Check 4: exactly-once.
        if info.starts > 1 {
            bad(
                info.start.as_ref().map(|s| s.0).unwrap_or(0),
                format!("executed {} times (exactly-once violated)", info.starts),
            );
        }
        if info.starts == 0 && info.spawn.is_some() {
            bad(
                info.spawn.as_ref().map(|s| s.0).unwrap_or(0),
                "spawned but never executed".to_string(),
            );
        }
        if info.starts > 0 && info.ends == 0 {
            bad(
                info.start.as_ref().map(|s| s.0).unwrap_or(0),
                "started but never finished".to_string(),
            );
        }
        if info.ends > info.starts {
            bad(
                info.end.as_ref().map(|e| e.0).unwrap_or(0),
                format!("{} ends for {} starts", info.ends, info.starts),
            );
        }
        let Some((sline, svc, sworker, splace)) = &info.start else {
            continue;
        };
        // Check 1: spawn happens-before start.
        match &info.spawn {
            None => bad(*sline, "executed without a spawn event".to_string()),
            Some((_, spawn_vc)) => {
                if !spawn_vc.before(svc) {
                    bad(*sline, "spawn does not happen-before execution".to_string());
                }
            }
        }
        // Check 2: relocations happen-before start; last destination
        // is the executing place.
        for (rline, rvc, _) in &info.relocations {
            if !rvc.before(svc) {
                bad(
                    *rline,
                    "migration/recovery does not happen-before execution".to_string(),
                );
            }
        }
        if let Some((_, _, to)) = info.relocations.last() {
            if *to != *splace {
                bad(
                    *sline,
                    format!("executed at place {splace} but last relocation went to {to}"),
                );
            }
        }
        // Check 3: start happens-before end, same worker.
        if let Some((eline, evc, eworker)) = &info.end {
            if !svc.before(evc) {
                bad(
                    *eline,
                    "execution does not happen-before its finish-latch release".to_string(),
                );
            }
            if eworker != sworker {
                bad(
                    *eline,
                    format!("started on worker {sworker} but ended on worker {eworker}"),
                );
            }
        }
    }

    HbReport {
        events,
        tasks: tasks.len() as u64,
        workers: worker_idx.len() as u64,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(t: u64, w: u32, p: u32, ev: &str, task: Option<u64>) -> String {
        let mut o = Value::object();
        o.set("t", t);
        o.set("w", w);
        o.set("p", p);
        o.set("ev", ev);
        if let Some(id) = task {
            o.set("task", id);
        }
        o.render()
    }

    #[test]
    fn clean_trace_passes() {
        let trace = [
            line(0, 0, 0, "spawn", Some(1)),
            line(10, 0, 0, "task_start", Some(1)),
            line(20, 0, 0, "spawn", Some(2)),
            line(30, 0, 0, "task_end", Some(1)),
            line(40, 1, 0, "task_start", Some(2)),
            line(50, 1, 0, "task_end", Some(2)),
        ]
        .join("\n");
        let r = validate_str(&trace);
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.events, 6);
        assert_eq!(r.tasks, 2);
        assert_eq!(r.workers, 2);
    }

    #[test]
    fn execution_before_spawn_is_flagged() {
        let trace = [
            line(0, 0, 0, "task_start", Some(1)),
            line(5, 0, 0, "task_end", Some(1)),
            line(9, 1, 0, "spawn", Some(1)),
        ]
        .join("\n");
        let r = validate_str(&trace);
        assert!(r
            .violations
            .iter()
            .any(|v| v.message.contains("spawn does not happen-before")));
    }

    #[test]
    fn double_execution_is_flagged() {
        let trace = [
            line(0, 0, 0, "spawn", Some(7)),
            line(1, 0, 0, "task_start", Some(7)),
            line(2, 0, 0, "task_end", Some(7)),
            line(3, 1, 0, "task_start", Some(7)),
            line(4, 1, 0, "task_end", Some(7)),
        ]
        .join("\n");
        let r = validate_str(&trace);
        assert!(r
            .violations
            .iter()
            .any(|v| v.message.contains("exactly-once")));
    }

    #[test]
    fn lost_task_is_flagged() {
        let trace = line(0, 0, 0, "spawn", Some(3));
        let r = validate_str(&trace);
        assert!(r
            .violations
            .iter()
            .any(|v| v.message.contains("never executed")));
    }

    #[test]
    fn migration_destination_must_match_executing_place() {
        let mig = {
            let mut o = Value::object();
            o.set("t", 5u64);
            o.set("w", 0u32);
            o.set("p", 0u32);
            o.set("ev", "migration");
            o.set("task", 4u64);
            o.set("from", 0u32);
            o.set("to", 2u32);
            o.render()
        };
        let trace = [
            line(0, 0, 0, "spawn", Some(4)),
            mig,
            line(10, 5, 1, "task_start", Some(4)), // wrong place: 1 != 2
            line(20, 5, 1, "task_end", Some(4)),
        ]
        .join("\n");
        let r = validate_str(&trace);
        assert!(
            r.violations
                .iter()
                .any(|v| v.message.contains("last relocation")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn backwards_worker_time_is_flagged() {
        let trace = [
            line(100, 0, 0, "spawn", Some(1)),
            line(50, 0, 0, "task_start", Some(1)),
            line(60, 0, 0, "task_end", Some(1)),
        ]
        .join("\n");
        let r = validate_str(&trace);
        assert!(r
            .violations
            .iter()
            .any(|v| v.message.contains("time went backwards")));
    }

    #[test]
    fn end_on_different_worker_is_flagged() {
        let trace = [
            line(0, 0, 0, "spawn", Some(1)),
            line(1, 0, 0, "task_start", Some(1)),
            line(2, 3, 1, "task_end", Some(1)),
        ]
        .join("\n");
        let r = validate_str(&trace);
        assert!(r
            .violations
            .iter()
            .any(|v| v.message.contains("ended on worker")));
    }

    #[test]
    fn parse_errors_are_reported_not_fatal() {
        let trace = format!(
            "{}\nnot json at all\n{}\n{}",
            line(0, 0, 0, "spawn", Some(1)),
            line(1, 0, 0, "task_start", Some(1)),
            line(2, 0, 0, "task_end", Some(1)),
        );
        let r = validate_str(&trace);
        assert_eq!(r.events, 3);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("unparseable"));
        assert_eq!(r.violations[0].line, 2);
    }
}
