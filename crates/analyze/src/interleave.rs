//! A bounded model checker ("mini-loom") for the two concurrent
//! structures in `distws-deque`.
//!
//! The Chase–Lev deque in `crates/deque/src/chase_lev.rs` carries the
//! repo's only lock-free unsafe code. Its correctness argument (the
//! C11 proof of Lê et al., PPoPP 2013) rests on a handful of orderings
//! that an ordinary unit test exercises only probabilistically. This
//! module re-states the *algorithm* — every shared-memory access of
//! `push`, `pop` and `steal`, in program order, including buffer
//! growth and retirement — as an explicit step machine, then explores
//! **every** reachable interleaving of 2–3 threads with a depth-first
//! search over a sequentially-consistent memory model (fences and
//! acquire/release annotations collapse to no-ops under SC; the SC
//! state graph is exactly the set of linearizations those annotations
//! must preserve, so a logic bug — a missing CAS, an off-by-one in
//! grow, a lost last element — appears here as a reachable bad state).
//!
//! Checked properties, on every execution:
//!
//! * **no double-take** — a value handed out twice (pop/steal);
//! * **no phantom/uninitialized read** — a taken value that was never
//!   pushed, or a slot read before its write;
//! * **no lost task** — at quiescence, values pushed minus values
//!   taken are exactly the deque's remaining contents (use-after-grow
//!   drops or duplicates elements, and shows up here);
//! * **shared FIFO** — `SharedFifo` (mutex + cached length) hands out
//!   the oldest element, exactly once, with `len` matching the queue
//!   at quiescence, under all operation interleavings.
//!
//! States are deduplicated (the explorer is stateful), so the reported
//! `states` count is the number of *distinct* global states at the
//! bound, and `terminals` the distinct quiescent states. Exploration
//! is exhaustive for the configured scenario — nothing is sampled.
//!
//! The companion tests inject seeded model bugs ([`Flaw`]) — steal
//! without CAS, pop skipping the last-element race, grow dropping the
//! oldest element — and assert the checker reports violations,
//! proving its detection power rather than assuming it.

use crate::reduce::{explore_system, Mode, StepClass, Succ, System};
use std::collections::BTreeSet;

pub use crate::reduce::Outcome;

/// One owner-side deque operation in a scenario script.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OwnerOp {
    /// `Worker::push` of the next fresh value.
    Push,
    /// `Worker::pop`.
    Pop,
}

/// A deliberately injected model bug, used by the self-tests to prove
/// the checker detects real defect classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flaw {
    /// Thief publishes `top = t + 1` with a plain store instead of a
    /// compare-and-swap (two thieves can both take index `t`).
    StealWithoutCas,
    /// Owner's pop returns the last element without racing thieves on
    /// `top` (the `t == b` CAS is skipped).
    PopSkipsLastItemRace,
    /// Buffer growth copies `t+1..b` instead of `t..b` (oldest element
    /// is dropped on the floor).
    GrowDropsOldest,
}

/// One bounded scenario: an owner script plus thieves that each run a
/// fixed number of steal attempts.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display name.
    pub name: &'static str,
    /// The owner's operation script, run in order.
    pub owner_ops: Vec<OwnerOp>,
    /// One entry per thief: how many steal attempts it performs.
    pub thieves: Vec<usize>,
    /// Initial buffer capacity (power of two; small values force the
    /// grow path).
    pub initial_cap: usize,
    /// Injected bug, `None` for the faithful model.
    pub flaw: Option<Flaw>,
}

/// A growable ring buffer version. Retired buffers stay readable —
/// exactly the deque's retirement scheme.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Buf {
    cap: usize,
    slots: Vec<Option<u64>>,
}

impl Buf {
    fn new(cap: usize) -> Buf {
        Buf {
            cap,
            slots: vec![None; cap],
        }
    }
    fn read(&self, i: i64) -> Option<u64> {
        self.slots[(i as usize) & (self.cap - 1)]
    }
    fn write(&mut self, i: i64, v: u64) {
        let cap = self.cap;
        self.slots[(i as usize) & (cap - 1)] = Some(v);
    }
}

/// The modeled shared memory: `top`, `bottom`, the buffer pointer
/// (an index into the version list) and every buffer ever published.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Mem {
    top: i64,
    bottom: i64,
    cur: usize,
    buffers: Vec<Buf>,
}

/// Owner thread: program counter into the op script plus the micro
/// step within the current op and the register file mirroring the
/// local variables of `push`/`pop`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Owner {
    op_idx: usize,
    step: u8,
    rb: i64,
    rt: i64,
    rbuf: usize,
    read: Option<u64>,
    next_val: u64,
}

/// Thief thread: remaining attempts plus the registers of `steal`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Thief {
    attempts_left: usize,
    step: u8,
    rt: i64,
    rb: i64,
    rbuf: usize,
    read: Option<u64>,
}

/// One global state of the model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    mem: Mem,
    owner: Owner,
    thieves: Vec<Thief>,
    /// Values pushed but not yet handed out.
    live: BTreeSet<u64>,
}

impl State {
    fn init(s: &Scenario) -> State {
        assert!(s.initial_cap.is_power_of_two());
        State {
            mem: Mem {
                top: 0,
                bottom: 0,
                cur: 0,
                buffers: vec![Buf::new(s.initial_cap)],
            },
            owner: Owner {
                op_idx: 0,
                step: 0,
                rb: 0,
                rt: 0,
                rbuf: 0,
                read: None,
                next_val: 1,
            },
            thieves: s.thieves.iter().map(|&n| Thief::fresh(n)).collect(),
            live: BTreeSet::new(),
        }
    }

    /// Thread ids able to take a step: 0 = owner, 1.. = thieves.
    fn runnable(&self, s: &Scenario) -> Vec<usize> {
        let mut r = Vec::new();
        if self.owner.op_idx < s.owner_ops.len() {
            r.push(0);
        }
        for (i, t) in self.thieves.iter().enumerate() {
            if t.attempts_left > 0 {
                r.push(i + 1);
            }
        }
        r
    }

    /// Hand a value out (pop return / successful steal) and check the
    /// exactly-once properties.
    fn take_value(&mut self, who: &str, v: Option<u64>, bad: &mut BTreeSet<String>) {
        match v {
            None => {
                bad.insert(format!("{who}: took an uninitialized slot"));
            }
            Some(v) => {
                if !self.live.remove(&v) {
                    bad.insert(format!(
                        "{who}: double-take or phantom value {v} (not live)"
                    ));
                }
            }
        }
    }

    /// End-of-execution check: the current buffer's `top..bottom`
    /// window must hold exactly the not-yet-taken values.
    fn quiescence_checks(&self, bad: &mut BTreeSet<String>) {
        let mem = &self.mem;
        let mut contents = BTreeSet::new();
        let mut i = mem.top;
        while i < mem.bottom {
            match mem.buffers[mem.cur].read(i) {
                None => {
                    bad.insert(format!("quiescence: live index {i} uninitialized"));
                }
                Some(v) => {
                    contents.insert(v);
                }
            }
            i += 1;
        }
        if contents != self.live {
            let lost: Vec<u64> = self.live.difference(&contents).copied().collect();
            let phantom: Vec<u64> = contents.difference(&self.live).copied().collect();
            bad.insert(format!(
                "quiescence: lost tasks {lost:?}, phantom contents {phantom:?}"
            ));
        }
    }

    /// Advance thread `tid` by exactly one shared-memory step,
    /// mirroring `chase_lev.rs` statement by statement.
    fn step(&mut self, tid: usize, s: &Scenario, bad: &mut BTreeSet<String>) {
        if tid == 0 {
            self.owner_step(s, bad);
        } else {
            self.thief_step(tid - 1, s, bad);
        }
    }

    fn owner_step(&mut self, s: &Scenario, bad: &mut BTreeSet<String>) {
        let op = s.owner_ops[self.owner.op_idx];
        match op {
            OwnerOp::Push => match self.owner.step {
                // let b = bottom.load(Relaxed)
                0 => {
                    self.owner.rb = self.mem.bottom;
                    self.owner.step = 1;
                }
                // let t = top.load(Acquire)
                1 => {
                    self.owner.rt = self.mem.top;
                    self.owner.step = 2;
                }
                // let buf = buffer.load(Relaxed); grow if full
                2 => {
                    self.owner.rbuf = self.mem.cur;
                    let full = self.owner.rb - self.owner.rt
                        >= self.mem.buffers[self.owner.rbuf].cap as i64;
                    self.owner.step = if full { 3 } else { 4 };
                }
                // grow: copy t..b into a doubled buffer, publish it
                // (the publish store is the step's linearization point;
                // the copy touches only unpublished memory)
                3 => {
                    let old = self.owner.rbuf;
                    let mut new = Buf::new(self.mem.buffers[old].cap * 2);
                    let from = match s.flaw {
                        Some(Flaw::GrowDropsOldest) => self.owner.rt + 1,
                        _ => self.owner.rt,
                    };
                    let mut i = from;
                    while i < self.owner.rb {
                        if let Some(v) = self.mem.buffers[old].read(i) {
                            new.write(i, v);
                        }
                        i += 1;
                    }
                    self.mem.buffers.push(new);
                    self.mem.cur = self.mem.buffers.len() - 1;
                    self.owner.rbuf = self.mem.cur;
                    self.owner.step = 4;
                }
                // buf.write(b, value)  (plain write)
                4 => {
                    let v = self.owner.next_val;
                    self.mem.buffers[self.owner.rbuf].write(self.owner.rb, v);
                    self.owner.step = 5;
                }
                // fence(Release); bottom.store(b + 1, Relaxed)
                5 => {
                    self.mem.bottom = self.owner.rb + 1;
                    self.live.insert(self.owner.next_val);
                    self.owner.next_val += 1;
                    self.finish_op();
                }
                _ => unreachable!(),
            },
            OwnerOp::Pop => match self.owner.step {
                // let b = bottom.load(Relaxed) - 1
                0 => {
                    self.owner.rb = self.mem.bottom - 1;
                    self.owner.step = 1;
                }
                // let buf = buffer.load(Relaxed)
                1 => {
                    self.owner.rbuf = self.mem.cur;
                    self.owner.step = 2;
                }
                // bottom.store(b, Relaxed)
                2 => {
                    self.mem.bottom = self.owner.rb;
                    self.owner.step = 3;
                }
                // fence(SeqCst); let t = top.load(Relaxed)
                3 => {
                    self.owner.rt = self.mem.top;
                    if self.owner.rt <= self.owner.rb {
                        self.owner.step = 4; // non-empty: read the slot
                    } else {
                        self.owner.step = 7; // empty: restore bottom
                    }
                }
                // let value = buf.read(b)
                4 => {
                    self.owner.read = self.mem.buffers[self.owner.rbuf].read(self.owner.rb);
                    if self.owner.rt == self.owner.rb {
                        self.owner.step = 5; // last element: race thieves
                    } else {
                        // t < b: the element is ours outright.
                        let v = self.owner.read.take();
                        self.take_value("pop", v, bad);
                        self.finish_op();
                    }
                }
                // top.compare_exchange(t, t + 1, SeqCst)
                5 => {
                    let won = match s.flaw {
                        Some(Flaw::PopSkipsLastItemRace) => true,
                        _ => self.mem.top == self.owner.rt,
                    };
                    if won {
                        self.mem.top = self.owner.rt + 1;
                    } else {
                        // Lost to a thief: forget the copy.
                        self.owner.read = None;
                    }
                    self.owner.step = 6;
                }
                // bottom.store(b + 1, Relaxed), return value or None
                6 => {
                    self.mem.bottom = self.owner.rb + 1;
                    if let Some(v) = self.owner.read.take() {
                        self.take_value("pop", Some(v), bad);
                    }
                    self.finish_op();
                }
                // empty branch: bottom.store(b + 1, Relaxed)
                7 => {
                    self.mem.bottom = self.owner.rb + 1;
                    self.finish_op();
                }
                _ => unreachable!(),
            },
        }
    }

    fn finish_op(&mut self) {
        self.owner.op_idx += 1;
        self.owner.step = 0;
        self.owner.read = None;
    }

    fn thief_step(&mut self, ti: usize, s: &Scenario, bad: &mut BTreeSet<String>) {
        match self.thieves[ti].step {
            // let t = top.load(Acquire)
            0 => {
                let top = self.mem.top;
                let t = &mut self.thieves[ti];
                t.rt = top;
                t.step = 1;
            }
            // fence(SeqCst); let b = bottom.load(Acquire)
            1 => {
                let bottom = self.mem.bottom;
                let t = &mut self.thieves[ti];
                t.rb = bottom;
                if t.rt < t.rb {
                    t.step = 2;
                } else {
                    // Empty: attempt over.
                    t.finish_attempt();
                }
            }
            // let buf = buffer.load(Acquire)
            2 => {
                let cur = self.mem.cur;
                let t = &mut self.thieves[ti];
                t.rbuf = cur;
                t.step = 3;
            }
            // let value = buf.read(t)  (plain read, possibly from a
            // retired buffer — legal as long as the CAS then fails or
            // the slot still holds index t's value)
            3 => {
                let (rbuf, rt) = (self.thieves[ti].rbuf, self.thieves[ti].rt);
                let val = self.mem.buffers[rbuf].read(rt);
                let t = &mut self.thieves[ti];
                t.read = val;
                t.step = 4;
            }
            // top.compare_exchange(t, t + 1, SeqCst)
            4 => {
                let rt = self.thieves[ti].rt;
                let won = match s.flaw {
                    Some(Flaw::StealWithoutCas) => true,
                    _ => self.mem.top == rt,
                };
                if won {
                    self.mem.top = rt + 1;
                    let v = self.thieves[ti].read.take();
                    self.thieves[ti].finish_attempt();
                    let who = format!("thief {ti}");
                    self.take_value(&who, v, bad);
                } else {
                    // Retry: the bitwise copy is forgotten.
                    let t = &mut self.thieves[ti];
                    t.read = None;
                    t.finish_attempt();
                }
            }
            _ => unreachable!(),
        }
    }
}

impl Thief {
    fn fresh(attempts: usize) -> Thief {
        Thief {
            attempts_left: attempts,
            step: 0,
            rt: 0,
            rb: 0,
            rbuf: 0,
            read: None,
        }
    }
    fn finish_attempt(&mut self) {
        self.attempts_left -= 1;
        self.step = 0;
        self.read = None;
    }
}

/// The deque model plugged into the shared exploration engine. Every
/// micro-step is interleaving-sensitive shared-memory traffic, so no
/// transition class is ample-eligible — the engine always expands in
/// full here; the reuse buys the shared memoization/terminal plumbing
/// and the stats surface.
struct DequeSys<'a> {
    sc: &'a Scenario,
}

impl System for DequeSys<'_> {
    type State = State;
    type Key = State;

    fn initial(&self) -> State {
        State::init(self.sc)
    }

    fn successors(&self, st: &State, bad: &mut BTreeSet<String>) -> Vec<Succ<State>> {
        st.runnable(self.sc)
            .into_iter()
            .map(|tid| {
                let mut next = st.clone();
                next.step(tid, self.sc, bad);
                Succ {
                    state: next,
                    class: StepClass::Other,
                }
            })
            .collect()
    }

    fn check_terminal(&self, st: &State, bad: &mut BTreeSet<String>) {
        st.quiescence_checks(bad);
    }

    fn key(&self, s: &State) -> State {
        s.clone()
    }
}

/// Exhaustively explore every distinct interleaving of `s` and check
/// all properties on every path and every quiescent state.
pub fn explore(s: &Scenario) -> Outcome {
    explore_system(&DequeSys { sc: s }, Mode::Full, None).0
}

/// The checked-in scenario suite: every push/pop/steal contention
/// pattern the deque's proof obligations name, at bounds small enough
/// to finish in well under a second each.
pub fn builtin_scenarios() -> Vec<Scenario> {
    let s = |name, owner_ops: &[OwnerOp], thieves: &[usize], cap| Scenario {
        name,
        owner_ops: owner_ops.to_vec(),
        thieves: thieves.to_vec(),
        initial_cap: cap,
        flaw: None,
    };
    use OwnerOp::{Pop, Push};
    vec![
        // The classic last-element race: owner pops the single item
        // while a thief steals it.
        s("last_item_race", &[Push, Pop], &[1], 2),
        // Two thieves and the owner all chase one element.
        s("two_thieves_one_item", &[Push, Pop], &[1, 1], 2),
        // LIFO pops against FIFO steals over two elements.
        s("lifo_vs_fifo", &[Push, Push, Pop, Pop], &[2], 4),
        // Growth (cap 1 → 2 → 4) while a thief reads the old buffer.
        s("grow_under_steal", &[Push, Push, Push], &[2], 1),
        // Growth plus the last-item race after draining.
        s("grow_then_drain", &[Push, Push, Pop, Pop], &[1, 1], 2),
        // Three thieves compete for two elements (CAS storm).
        s("cas_storm", &[Push, Push], &[1, 1, 1], 2),
    ]
}

/// Run every builtin scenario; returns `(name, outcome)` pairs in
/// suite order.
pub fn check_all() -> Vec<(&'static str, Outcome)> {
    builtin_scenarios()
        .iter()
        .map(|s| (s.name, explore(s)))
        .collect()
}

// ---------------------------------------------------------------------------
// Shared FIFO model
// ---------------------------------------------------------------------------

/// One operation against the [`SharedFifo`] model.
///
/// [`SharedFifo`]: ../../distws_deque/struct.SharedFifo.html
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FifoOp {
    /// `push` of the next fresh value.
    Push,
    /// `take` (oldest element).
    Take,
    /// `take_chunk(n)`.
    TakeChunk(usize),
}

/// Explore all interleavings of per-thread [`FifoOp`] scripts against
/// a model of `SharedFifo` (each operation is mutex-serialized, so an
/// operation is one atomic step; the explorer covers every operation
/// order). Checks FIFO order (every take returns the current oldest),
/// exactly-once, no loss, and that the cached `len` matches the queue
/// at quiescence.
pub fn explore_fifo(scripts: &[Vec<FifoOp>]) -> Outcome {
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct FState {
        queue: Vec<u64>,
        len_cache: usize,
        pcs: Vec<usize>,
        next_val: u64,
        taken: BTreeSet<u64>,
        pushed: u64,
    }
    struct FifoSys<'a> {
        scripts: &'a [Vec<FifoOp>],
    }

    impl System for FifoSys<'_> {
        type State = FState;
        type Key = FState;

        fn initial(&self) -> FState {
            FState {
                queue: Vec::new(),
                len_cache: 0,
                pcs: vec![0; self.scripts.len()],
                next_val: 1,
                taken: BTreeSet::new(),
                pushed: 0,
            }
        }

        fn check_terminal(&self, st: &FState, bad: &mut BTreeSet<String>) {
            if st.len_cache != st.queue.len() {
                bad.insert(format!(
                    "fifo: cached len {} != queue len {}",
                    st.len_cache,
                    st.queue.len()
                ));
            }
            if st.taken.len() as u64 + st.queue.len() as u64 != st.pushed {
                bad.insert("fifo: lost or duplicated element".to_string());
            }
        }

        fn key(&self, s: &FState) -> FState {
            s.clone()
        }

        fn successors(&self, st: &FState, bad: &mut BTreeSet<String>) -> Vec<Succ<FState>> {
            let runnable: Vec<usize> = (0..self.scripts.len())
                .filter(|&i| st.pcs[i] < self.scripts[i].len())
                .collect();
            let mut out = Vec::with_capacity(runnable.len());
            for tid in runnable {
                let mut n = st.clone();
                match self.scripts[tid][n.pcs[tid]] {
                    FifoOp::Push => {
                        let v = n.next_val;
                        n.next_val += 1;
                        n.pushed += 1;
                        n.queue.push(v);
                        n.len_cache = n.queue.len();
                    }
                    FifoOp::Take => {
                        if !n.queue.is_empty() {
                            let oldest = *n.queue.iter().min().unwrap();
                            let v = n.queue.remove(0);
                            if v != oldest {
                                bad.insert(format!("fifo: take returned {v}, oldest was {oldest}"));
                            }
                            if !n.taken.insert(v) {
                                bad.insert(format!("fifo: value {v} taken twice"));
                            }
                        }
                        n.len_cache = n.queue.len();
                    }
                    FifoOp::TakeChunk(c) => {
                        let k = c.min(n.queue.len());
                        let mut prev = 0u64;
                        for _ in 0..k {
                            let v = n.queue.remove(0);
                            if v <= prev {
                                bad.insert("fifo: chunk not in FIFO order".to_string());
                            }
                            prev = v;
                            if !n.taken.insert(v) {
                                bad.insert(format!("fifo: value {v} taken twice"));
                            }
                        }
                        n.len_cache = n.queue.len();
                    }
                }
                n.pcs[tid] += 1;
                out.push(Succ {
                    state: n,
                    class: StepClass::Other,
                });
            }
            out
        }
    }

    explore_system(&FifoSys { scripts }, Mode::Full, None).0
}

/// The checked-in FIFO scenario: one producer, a local `take` consumer
/// and a remote chunk-of-two thief.
pub fn fifo_scenario() -> Vec<Vec<FifoOp>> {
    use FifoOp::{Push, Take, TakeChunk};
    vec![
        vec![Push, Push, Push, Push],
        vec![Take, Take],
        vec![TakeChunk(2), TakeChunk(2)],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faithful_model_has_no_violations() {
        for (name, out) in check_all() {
            assert!(out.violations.is_empty(), "{name}: {:?}", out.violations);
            assert!(out.states > 10, "{name}: trivial exploration?");
            assert!(out.terminals > 0, "{name}");
        }
    }

    #[test]
    fn steal_without_cas_is_caught() {
        let mut s = builtin_scenarios()
            .into_iter()
            .find(|s| s.name == "two_thieves_one_item")
            .unwrap();
        s.flaw = Some(Flaw::StealWithoutCas);
        let out = explore(&s);
        assert!(
            out.violations.iter().any(|v| v.contains("double-take")
                || v.contains("uninitialized")
                || v.contains("lost")),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn pop_skipping_last_item_race_is_caught() {
        let mut s = builtin_scenarios()
            .into_iter()
            .find(|s| s.name == "last_item_race")
            .unwrap();
        s.flaw = Some(Flaw::PopSkipsLastItemRace);
        let out = explore(&s);
        assert!(
            out.violations
                .iter()
                .any(|v| v.contains("double-take") || v.contains("phantom")),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn grow_dropping_oldest_is_caught() {
        let mut s = builtin_scenarios()
            .into_iter()
            .find(|s| s.name == "grow_under_steal")
            .unwrap();
        s.flaw = Some(Flaw::GrowDropsOldest);
        let out = explore(&s);
        assert!(
            out.violations
                .iter()
                .any(|v| v.contains("lost") || v.contains("uninitialized")),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn fifo_model_is_clean_and_ordered() {
        let out = explore_fifo(&fifo_scenario());
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.states > 10);
    }
}
