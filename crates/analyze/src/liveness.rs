//! Liveness checking for the protocol model: accepting-cycle
//! detection with weak fairness, reported as lasso counterexamples.
//!
//! The safety layer ([`crate::protocol`] + [`crate::reduce`]) proves
//! reachability properties: no reachable state violates an invariant,
//! and every *terminal* state is quiescent. This module adds the
//! temporal half — that fair executions actually *reach* quiescence —
//! as three built-in properties over the same state graph:
//!
//! * **`eventual-execution`** — every spawned task is eventually
//!   executed: no fair run keeps some task outside `{Done, Lost}`
//!   forever (`Lost` is excluded because a task lost to fail-stop
//!   recovery is a *safety* violation, already reported by
//!   [`Ctx::check_terminal`]).
//! * **`lifeline-wakeup`** — every dormant worker with a pending
//!   lifeline push eventually wakes: no fair run traps a worker in
//!   `Phase::Dormant` while work sits in its private deque, its
//!   place's shared pool, or in flight towards its place.
//! * **`steal-progress`** — no infinite steal-retry loop without
//!   intervening progress: no fair run takes failed poll / probe /
//!   sweep-visit steps infinitely often. (Successful acquisitions
//!   cannot themselves repeat forever: every acquisition makes the
//!   thief `Busy`, and a `Busy` worker's only step increments the
//!   monotone per-task `exec` counter, so acquisition/completion
//!   edges can never sit on a cycle — see `docs/analysis.md` §6.)
//!
//! # Two-phase architecture
//!
//! Checking Büchi emptiness with nested DFS costs roughly twice a
//! safety sweep *times* the fairness-automaton product. The faithful
//! model makes almost all of that avoidable: `work_visible` is
//! local-only, so a worker can only keep scanning while its own
//! place shows no work — and every transition that would hand it
//! work makes it `Busy` (frozen-footprint lemma). The faithful state
//! graph is therefore *acyclic*, and phase 1 exploits that:
//!
//! 1. **Certificate scan** — one DFS over the scenario's graph in the
//!    requested [`Mode`] (raw or canonical keys, ample sets with the
//!    C3 stack proviso — the same graph the safety engine walks). If
//!    no back-edge exists, the graph is a DAG: the only infinite
//!    runs are *stutter extensions* of maximal finite runs, so each
//!    property reduces to a predicate on the stutter-eligible states
//!    (states with no fair transition). Cost ≈ one safety sweep.
//! 2. **Fairness-product NDFS** — only when phase 1 finds a cycle
//!    (in practice: livelock mutants). A
//!    Courcoubetis–Vardi–Wolper nested DFS over the state graph
//!    crossed with a weak-fairness *token* automaton, always in full
//!    (unreduced, raw-key) mode: the token tracks concrete worker
//!    identities, which symmetry canonicalization would scramble,
//!    and livelock-mutant graphs are small enough that reduction
//!    buys nothing.
//!
//! # Fairness encoding
//!
//! Agents are the workers (slots `1..=W`) plus the delivery network
//! (slot `W+1`); fault injections (kill, restart, ghost-copy
//! arrival) and stutter are *environment* steps carrying no fairness
//! obligation — the properties must hold even if the adversary never
//! acts. Weak fairness per agent is folded into the acceptance
//! condition with the classic token construction (Choueka's flag
//! argument, as in SPIN): the product state carries a token cycling
//! through the agents; the token leaves agent `j` when `j` steps or
//! is disabled, and acceptance requires the token's round-trip
//! (token = 0), so any accepting cycle gives every continuously
//! enabled agent infinitely many steps. States with no fair
//! transition get an explicit stutter self-loop — standard LTL
//! semantics for maximal finite runs, which also turns a deadlock
//! with work left behind into a (trivially fair) accepting cycle.
//!
//! A violation is reported as a **lasso**: a stem of readable
//! transition names from the initial state, then the repeating
//! cycle. Surface: `repro check liveness` and the livelock half of
//! `repro check mutants`.

use crate::canon::{self, Key};
use crate::protocol::{
    init_state, Agent, Ctx, LSucc, ProtocolMutant, ProtocolScenario, State, StepTag,
};
use crate::reduce::{FxBuild, Mode};
use std::collections::{BTreeSet, HashMap, HashSet};

/// A built-in temporal property. Names double as the `catch_property`
/// vocabulary in [`ProtocolMutant`] and the `repro` CLI surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Property {
    /// Every spawned task is eventually executed.
    EventualExecution,
    /// Every dormant worker with a pending lifeline push eventually
    /// wakes.
    LifelineWakeup,
    /// No infinite steal-retry loop without intervening progress.
    StealProgress,
}

impl Property {
    pub const ALL: [Property; 3] = [
        Property::EventualExecution,
        Property::LifelineWakeup,
        Property::StealProgress,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Property::EventualExecution => "eventual-execution",
            Property::LifelineWakeup => "lifeline-wakeup",
            Property::StealProgress => "steal-progress",
        }
    }

    /// The property in TLA+ vocabulary, matching the temporal section
    /// of the [`crate::tla`] export.
    pub fn formula(self) -> &'static str {
        match self {
            Property::EventualExecution => "\\A t \\in TaskIds : <>(tstate[t] = \"done\")",
            Property::LifelineWakeup => {
                "\\A w \\in WorkerIds : (Dormant(w) /\\ PendingPush(w)) ~> ~Dormant(w)"
            }
            Property::StealProgress => "([]<> StealRetry) => ([]<> Progress)",
        }
    }
}

/// A counterexample to a liveness property: a finite stem from the
/// initial state followed by a cycle repeated forever, both in
/// readable transition names.
#[derive(Debug, Clone)]
pub struct Lasso {
    pub stem: Vec<String>,
    pub cycle: Vec<String>,
}

/// Verdict and exploration statistics for one property on one
/// scenario/mutant pair.
#[derive(Debug, Clone)]
pub struct LivenessReport {
    pub property: Property,
    /// `true` when no fair accepting cycle exists.
    pub holds: bool,
    /// Present exactly when `holds` is false (unless truncated).
    pub lasso: Option<Lasso>,
    /// States visited by the phase-1 certificate scan (partial if a
    /// back-edge aborted it early).
    pub graph_states: u64,
    /// Transitions traversed by the phase-1 certificate scan.
    pub graph_transitions: u64,
    /// Whether phase 1 found a back-edge (forcing the NDFS).
    pub cyclic: bool,
    /// Fairness-product states explored by the NDFS (0 on the
    /// acyclic fast path).
    pub product_states: u64,
    /// The state cap fired; the verdict only covers the explored
    /// prefix.
    pub truncated: bool,
}

/// Check all three properties on one scenario, optionally under a
/// seeded mutant. `mode` selects the phase-1 graph (the NDFS, when
/// needed, always runs full); `cap` bounds stored states in either
/// phase.
pub fn check_liveness(
    sc: &ProtocolScenario,
    mutant: Option<ProtocolMutant>,
    mode: Mode,
    cap: Option<u64>,
) -> Vec<LivenessReport> {
    let ctx = Ctx { sc, mutant };
    let cert = certificate_scan(&ctx, mode, cap);
    Property::ALL
        .iter()
        .map(|&property| {
            let base = LivenessReport {
                property,
                holds: true,
                lasso: None,
                graph_states: cert.states,
                graph_transitions: cert.transitions,
                cyclic: cert.cyclic,
                product_states: 0,
                truncated: cert.truncated,
            };
            if cert.truncated {
                return base;
            }
            if !cert.cyclic {
                // Acyclic certificate: the only infinite runs are
                // stutter extensions, so the property fails iff some
                // stutter-eligible state satisfies its bad
                // predicate. Stutter steps are never retries, so
                // `steal-progress` holds outright.
                let stem = match property {
                    Property::EventualExecution => &cert.stutter_stem[0],
                    Property::LifelineWakeup => &cert.stutter_stem[1],
                    Property::StealProgress => &None,
                };
                return match stem {
                    Some(tags) => LivenessReport {
                        holds: false,
                        lasso: Some(Lasso {
                            stem: tags.iter().map(|t| t.render()).collect(),
                            cycle: vec![StepTag::Stutter.render()],
                        }),
                        ..base
                    },
                    None => base,
                };
            }
            let (holds, lasso, product_states, truncated) = ndfs(&ctx, property, cap);
            LivenessReport {
                holds,
                lasso,
                product_states,
                truncated,
                ..base
            }
        })
        .collect()
}

/// Phase-1 result: acyclicity certificate plus, per predicate
/// property, the stem to the first stutter-eligible state whose bad
/// predicate holds (`[0]` = eventual-execution, `[1]` =
/// lifeline-wakeup).
struct Cert {
    cyclic: bool,
    states: u64,
    transitions: u64,
    stutter_stem: [Option<Vec<StepTag>>; 2],
    truncated: bool,
}

/// One DFS over the scenario graph in `mode`, mirroring the safety
/// engine's reduction choices (ample nomination via
/// [`Ctx::ample_labeled`], C3 on-stack proviso), looking for a
/// back-edge and for bad stutter-eligible states. Aborts on the
/// first back-edge: phase 2 re-derives everything it needs.
fn certificate_scan(ctx: &Ctx, mode: Mode, cap: Option<u64>) -> Cert {
    let canonizer = canon::Canonizer::new(ctx.sc);
    let key_of = |s: &State| -> Key {
        match mode {
            Mode::Full => canon::raw_key(ctx.sc, s),
            Mode::Reduced => canonizer.key(ctx.sc, s),
        }
    };
    let mut scratch = BTreeSet::new();

    struct Frame {
        key: Key,
        succs: Vec<LSucc>,
        /// Successor indices still to explore (ample pick or all).
        order: Vec<usize>,
        next: usize,
        via: Option<StepTag>,
    }

    let mut cert = Cert {
        cyclic: false,
        states: 0,
        transitions: 0,
        stutter_stem: [None, None],
        truncated: false,
    };
    let mut seen: HashSet<Key, FxBuild> = HashSet::default();
    let mut cyan: HashSet<Key, FxBuild> = HashSet::default();
    let mut stack: Vec<Frame> = Vec::new();

    let enter = |s: State,
                 via: Option<StepTag>,
                 cert: &mut Cert,
                 seen: &mut HashSet<Key, FxBuild>,
                 cyan: &mut HashSet<Key, FxBuild>,
                 stack: &mut Vec<Frame>,
                 scratch: &mut BTreeSet<String>| {
        let key = key_of(&s);
        cert.states += 1;
        seen.insert(key);
        cyan.insert(key);
        let succs = ctx.successors_labeled(&s, scratch);
        scratch.clear();
        // Stutter eligibility: no fair (non-environment) transition.
        if !succs.iter().any(|l| l.tag.agent() != Agent::Env) {
            let stem = || {
                let mut tags: Vec<StepTag> = stack.iter().filter_map(|f| f.via).collect();
                tags.extend(via);
                tags
            };
            if cert.stutter_stem[0].is_none() && ctx.unfinished_task(&s).is_some() {
                cert.stutter_stem[0] = Some(stem());
            }
            if cert.stutter_stem[1].is_none() && ctx.lost_wakeup(&s).is_some() {
                cert.stutter_stem[1] = Some(stem());
            }
        }
        // Ample nomination with the C3 stack proviso: a nominated
        // singleton whose target closes a cycle forces full
        // expansion, exactly as in `reduce::explore_system`.
        let ample = if succs.is_empty() {
            None
        } else {
            ctx.ample_labeled(&s, &succs)
        };
        let order: Vec<usize> = match ample {
            Some(i) if !cyan.contains(&key_of(&succs[i].state)) => vec![i],
            _ => (0..succs.len()).collect(),
        };
        stack.push(Frame {
            key,
            succs,
            order,
            next: 0,
            via,
        });
    };

    enter(
        init_state(ctx.sc),
        None,
        &mut cert,
        &mut seen,
        &mut cyan,
        &mut stack,
        &mut scratch,
    );

    while let Some(top) = stack.last_mut() {
        if top.next >= top.order.len() {
            cyan.remove(&top.key);
            stack.pop();
            continue;
        }
        let i = top.order[top.next];
        top.next += 1;
        cert.transitions += 1;
        let child = top.succs[i].state.clone();
        let via = top.succs[i].tag;
        let ckey = key_of(&child);
        if cyan.contains(&ckey) {
            cert.cyclic = true;
            return cert;
        }
        if seen.contains(&ckey) {
            continue;
        }
        if let Some(c) = cap {
            if cert.states >= c {
                cert.truncated = true;
                return cert;
            }
        }
        enter(
            child,
            Some(via),
            &mut cert,
            &mut seen,
            &mut cyan,
            &mut stack,
            &mut scratch,
        );
    }
    cert
}

/// Fairness-token product state identity: scenario key plus packed
/// token (low 7 bits) and steal-retry flag (bit 7).
type PKey = (Key, u8);

fn pack(tok: u8, flag: bool) -> u8 {
    debug_assert!(tok < 0x80);
    tok | ((flag as u8) << 7)
}

/// The fairness slot a transition credits: workers are `1..=W`, the
/// delivery network is `W+1` (= `k`), environment steps credit
/// nobody.
fn slot_of(tag: StepTag, k: u8) -> Option<u8> {
    match tag.agent() {
        Agent::Worker(w) => Some(w + 1),
        Agent::Net => Some(k),
        Agent::Env => None,
    }
}

/// Advance the weak-fairness token across one transition. At 0 the
/// token starts a new round at agent 1; it passes agent `j` when `j`
/// is the stepping agent or is disabled in the source state, and
/// wraps to 0 after agent `k`. Any cycle that returns the token to 0
/// therefore gives every continuously enabled agent a step.
fn advance(tok: u8, taken: Option<u8>, enabled: u32, k: u8) -> u8 {
    let mut j = if tok == 0 { 1 } else { tok };
    for _ in 0..k {
        if j == 0 || !(taken == Some(j) || enabled & (1u32 << j) == 0) {
            break;
        }
        j = if j == k { 0 } else { j + 1 };
    }
    j
}

fn accept(ctx: &Ctx, prop: Property, s: &State, tok: u8, flag: bool) -> bool {
    tok == 0
        && match prop {
            Property::EventualExecution => ctx.unfinished_task(s).is_some(),
            Property::LifelineWakeup => ctx.lost_wakeup(s).is_some(),
            Property::StealProgress => flag,
        }
}

/// Product successor: state, token, flag, and the base transition's
/// tag (stutter self-loops synthesized for states with no fair
/// transition).
type PSucc = (State, u8, bool, StepTag);

fn product_succs(
    ctx: &Ctx,
    prop: Property,
    s: &State,
    tok: u8,
    flag: bool,
    k: u8,
    scratch: &mut BTreeSet<String>,
) -> Vec<PSucc> {
    let base = ctx.successors_labeled(s, scratch);
    scratch.clear();
    let mut enabled = 0u32;
    for l in &base {
        if let Some(j) = slot_of(l.tag, k) {
            enabled |= 1 << j;
        }
    }
    let acc = accept(ctx, prop, s, tok, flag);
    // Leaving an accept state resets the steal-retry flag (the
    // degeneralization step): an accepting cycle must then re-set it,
    // i.e. contain a fresh retry.
    let carried = if acc { false } else { flag };
    let mut out: Vec<PSucc> = base
        .into_iter()
        .map(|l| {
            let tok2 = advance(tok, slot_of(l.tag, k), enabled, k);
            let flag2 = match prop {
                Property::StealProgress => carried || l.tag.is_retry(),
                _ => false,
            };
            (l.state, tok2, flag2, l.tag)
        })
        .collect();
    if enabled == 0 {
        // No fair transition: stutter extension. Every agent is
        // disabled, so the token free-wheels to 0 and stays there.
        let flag2 = match prop {
            Property::StealProgress => carried,
            _ => false,
        };
        out.push((s.clone(), advance(tok, None, 0, k), flag2, StepTag::Stutter));
    }
    out
}

struct NFrame {
    state: State,
    tok: u8,
    flag: bool,
    key: PKey,
    succs: Vec<PSucc>,
    next: usize,
    via: Option<StepTag>,
}

const CYAN: u8 = 1;
const BLUE: u8 = 2;
const RED: u8 = 3;

/// Nested DFS (Courcoubetis–Vardi–Wolper, with the all-blue shortcut
/// and report-on-cyan improvements) for a fair accepting cycle of
/// `prop` over the full (raw-key, unreduced) fairness product.
/// Returns `(holds, lasso, product_states, truncated)`.
fn ndfs(ctx: &Ctx, prop: Property, cap: Option<u64>) -> (bool, Option<Lasso>, u64, bool) {
    let k = ctx.workers() as u8 + 1;
    let mut scratch = BTreeSet::new();
    let mut colors: HashMap<PKey, u8, FxBuild> = HashMap::default();
    let mut stack: Vec<NFrame> = Vec::new();

    let push = |state: State,
                tok: u8,
                flag: bool,
                key: PKey,
                via: Option<StepTag>,
                colors: &mut HashMap<PKey, u8, FxBuild>,
                stack: &mut Vec<NFrame>,
                scratch: &mut BTreeSet<String>| {
        colors.insert(key, CYAN);
        let succs = product_succs(ctx, prop, &state, tok, flag, k, scratch);
        stack.push(NFrame {
            state,
            tok,
            flag,
            key,
            succs,
            next: 0,
            via,
        });
    };

    let init = init_state(ctx.sc);
    let ikey = (canon::raw_key(ctx.sc, &init), pack(0, false));
    push(
        init,
        0,
        false,
        ikey,
        None,
        &mut colors,
        &mut stack,
        &mut scratch,
    );

    // Lasso stem/cycle reconstruction from the blue stack, the red
    // stack, and the closing edge into a cyan (on-blue-stack) state.
    let build_lasso = |blue: &[NFrame], red: &[NFrame], closing: (PKey, StepTag)| -> Lasso {
        let (ckey, ctag) = closing;
        let at = blue
            .iter()
            .position(|f| f.key == ckey)
            .expect("cyan state must be on the blue stack");
        let stem = blue[1..=at]
            .iter()
            .filter_map(|f| f.via)
            .collect::<Vec<_>>();
        let mut cycle: Vec<StepTag> = blue[at + 1..].iter().filter_map(|f| f.via).collect();
        cycle.extend(red.iter().skip(1).filter_map(|f| f.via));
        cycle.push(ctag);
        Lasso {
            stem: stem.into_iter().map(|t| t.render()).collect(),
            cycle: cycle.into_iter().map(|t| t.render()).collect(),
        }
    };

    while let Some(top) = stack.last() {
        if top.next < top.succs.len() {
            let i = top.next;
            stack.last_mut().expect("non-empty").next += 1;
            let top = stack.last().expect("non-empty");
            let (cs, ct, cf, tag) = top.succs[i].clone();
            let ckey = (canon::raw_key(ctx.sc, &cs), pack(ct, cf));
            match colors.get(&ckey).copied() {
                None => {
                    if let Some(c) = cap {
                        if colors.len() as u64 >= c {
                            return (true, None, colors.len() as u64, true);
                        }
                    }
                    push(
                        cs,
                        ct,
                        cf,
                        ckey,
                        Some(tag),
                        &mut colors,
                        &mut stack,
                        &mut scratch,
                    );
                }
                Some(CYAN) => {
                    // All-blue shortcut: an edge back into the DFS
                    // stack closes an accepting cycle if either end
                    // accepts.
                    let child_acc = {
                        let at = stack.iter().position(|f| f.key == ckey);
                        match at {
                            Some(at) => {
                                accept(ctx, prop, &stack[at].state, stack[at].tok, stack[at].flag)
                            }
                            None => false,
                        }
                    };
                    let top_acc = accept(ctx, prop, &top.state, top.tok, top.flag);
                    if child_acc || top_acc {
                        let lasso = build_lasso(&stack, &[], (ckey, tag));
                        return (false, Some(lasso), colors.len() as u64, false);
                    }
                }
                _ => {}
            }
            continue;
        }
        // Post-order: red search from accepting states.
        let seed_acc = accept(ctx, prop, &top.state, top.tok, top.flag);
        if seed_acc {
            let mut red: Vec<NFrame> = Vec::new();
            let seed = stack.last().expect("non-empty");
            red.push(NFrame {
                state: seed.state.clone(),
                tok: seed.tok,
                flag: seed.flag,
                key: seed.key,
                succs: product_succs(ctx, prop, &seed.state, seed.tok, seed.flag, k, &mut scratch),
                next: 0,
                via: None,
            });
            while let Some(rt) = red.last_mut() {
                if rt.next >= rt.succs.len() {
                    red.pop();
                    continue;
                }
                let (cs, ct, cf, tag) = rt.succs[rt.next].clone();
                rt.next += 1;
                let ckey = (canon::raw_key(ctx.sc, &cs), pack(ct, cf));
                match colors.get(&ckey).copied() {
                    Some(CYAN) => {
                        // A cyan state is an ancestor of the seed on
                        // the blue stack: red path (seed → here) plus
                        // blue path (here → seed) closes a cycle
                        // through the accepting seed.
                        let lasso = build_lasso(&stack, &red, (ckey, tag));
                        return (false, Some(lasso), colors.len() as u64, false);
                    }
                    Some(BLUE) => {
                        colors.insert(ckey, RED);
                        let succs = product_succs(ctx, prop, &cs, ct, cf, k, &mut scratch);
                        red.push(NFrame {
                            state: cs,
                            tok: ct,
                            flag: cf,
                            key: ckey,
                            succs,
                            next: 0,
                            via: Some(tag),
                        });
                    }
                    _ => {} // RED: proven cycle-free; skip.
                }
            }
        }
        let top = stack.pop().expect("non-empty");
        colors.insert(top.key, BLUE);
    }
    (true, None, colors.len() as u64, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::builtin_scenarios;

    fn scenario(name: &str) -> ProtocolScenario {
        builtin_scenarios()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("unknown scenario {name}"))
    }

    /// Every faithful (non-scale) scenario satisfies all three
    /// properties via the acyclic fast path — including the fault
    /// scenarios: a kill must not break progress for survivors.
    #[test]
    fn faithful_scenarios_satisfy_all_properties() {
        for sc in builtin_scenarios().iter().filter(|s| s.full_ok) {
            let reports = check_liveness(sc, None, Mode::Reduced, None);
            for r in &reports {
                assert!(
                    r.holds,
                    "{}: {} violated: {:?}",
                    sc.name,
                    r.property.name(),
                    r.lasso
                );
                assert!(!r.cyclic, "{}: faithful graph must be acyclic", sc.name);
                assert!(!r.truncated);
                assert!(r.graph_states > 0 && r.graph_transitions > 0);
            }
        }
    }

    /// Reduced and full phase-1 graphs agree on every verdict
    /// (the `--full --compare` cross-check, in-tree).
    #[test]
    fn reduced_and_full_verdicts_agree() {
        for sc in builtin_scenarios().iter().filter(|s| s.full_ok) {
            let red = check_liveness(sc, None, Mode::Reduced, None);
            let full = check_liveness(sc, None, Mode::Full, None);
            for (r, f) in red.iter().zip(&full) {
                assert_eq!(r.property, f.property);
                assert_eq!(
                    r.holds,
                    f.holds,
                    "{}: {} verdict differs reduced vs full",
                    sc.name,
                    r.property.name()
                );
                assert_eq!(r.cyclic, f.cyclic, "{}: cyclicity differs", sc.name);
            }
        }
    }

    /// Every livelock mutant is caught by its designated property
    /// with a concrete stem+cycle lasso on its catch scenario.
    #[test]
    fn livelock_mutants_are_caught_with_lassos() {
        for m in ProtocolMutant::ALL {
            if !m.is_livelock() {
                continue;
            }
            let sc = scenario(m.catch_scenario());
            let reports = check_liveness(&sc, Some(m), Mode::Full, None);
            let r = reports
                .iter()
                .find(|r| r.property.name() == m.catch_property())
                .expect("designated property is a liveness property");
            assert!(
                !r.holds,
                "{} must violate {} on {}",
                m.name(),
                m.catch_property(),
                sc.name
            );
            let lasso = r.lasso.as_ref().expect("violation carries a lasso");
            assert!(
                !lasso.cycle.is_empty(),
                "{}: lasso cycle must be non-empty",
                m.name()
            );
            for step in lasso.stem.iter().chain(&lasso.cycle) {
                assert!(!step.is_empty());
            }
        }
    }

    /// The pure-livelock mutants are invisible to the safety checker
    /// — the whole reason the liveness layer exists. (The lost-wakeup
    /// mutant deadlocks with work parked, which safety also flags as
    /// a stuck terminal.)
    #[test]
    fn spin_livelocks_are_safety_clean() {
        for m in [
            ProtocolMutant::ReprobeNoBackoff,
            ProtocolMutant::RetryBudgetIgnored,
            ProtocolMutant::RestartReparkLoop,
        ] {
            let sc = scenario(m.catch_scenario());
            let outcome = crate::protocol::explore_protocol(&sc, Some(m));
            assert!(
                outcome.violations.is_empty(),
                "{} should evade safety but was flagged: {:?}",
                m.name(),
                outcome.violations
            );
        }
    }

    /// The fairness token rejects spurious cycles: a livelock mutant
    /// graph is cyclic, but unfair cycles (e.g. one worker spinning
    /// while another could still complete work) must not be reported
    /// for properties whose bad predicate they don't sustain fairly.
    /// `reprobe-no-backoff` spins *after* all work completes, so
    /// `eventual-execution` and `lifeline-wakeup` still hold even
    /// though the graph has accepting-shaped churn for progress.
    #[test]
    fn fairness_filters_spurious_violations() {
        let m = ProtocolMutant::ReprobeNoBackoff;
        let sc = scenario(m.catch_scenario());
        let reports = check_liveness(&sc, Some(m), Mode::Full, None);
        for r in &reports {
            assert!(r.cyclic, "mutant graph should be cyclic");
            match r.property {
                Property::StealProgress => assert!(!r.holds),
                _ => assert!(
                    r.holds,
                    "{} spuriously violated by a pure spin mutant: {:?}",
                    r.property.name(),
                    r.lasso
                ),
            }
        }
    }

    #[test]
    fn token_advance_round_trips() {
        // 2 workers + net: k = 3. All enabled, agent 1 steps from 0.
        let en = 0b1110u32;
        assert_eq!(advance(0, Some(1), en, 3), 2);
        // Token waits for an agent that doesn't step.
        assert_eq!(advance(2, Some(1), en, 3), 2);
        // Stepping agent carries the token past it.
        assert_eq!(advance(2, Some(2), en, 3), 3);
        assert_eq!(advance(3, Some(3), en, 3), 0);
        // Disabled agents are skipped (weak fairness).
        assert_eq!(advance(2, None, 0b0010, 3), 0);
        // Everything disabled: free-wheel to 0 in one step.
        assert_eq!(advance(0, None, 0, 3), 0);
        assert_eq!(advance(2, None, 0, 3), 0);
    }
}
