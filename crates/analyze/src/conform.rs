//! Steal-order conformance: replay a `*.trace.jsonl` stream against
//! the Algorithm 1 steal automaton.
//!
//! The happens-before validator (`crate::hb`) proves a trace is a
//! *causally possible* run; this pass proves it is a run **of the
//! modeled protocol**: every worker's steal activity must follow the
//! tier order exported by `distws_sched::protocol` —
//!
//! 1. **Tier monotonicity** — within one steal round the attempted tier
//!    index (`local_private` < `local_shared` < `remote`) never
//!    decreases. Rounds are delimited by `task_start` / `dormant` /
//!    `wakeup`; the threaded runtime's spin loop emits no delimiter
//!    between consecutive failed rounds, so a tier regression is also
//!    accepted as an implicit new round *iff* at least one `net_probe`
//!    (the line 11 round opener) was seen since the last attempt — a
//!    regression with no intervening probe is a protocol violation.
//! 2. **Success justification** — a `steal_success` at tier *i* must
//!    immediately follow an attempt at tier *i*, and every lower tier
//!    must have been attempted (and failed) earlier in the same round.
//! 3. **Line 19 re-probe** — between two consecutive remote attempts by
//!    the same worker there must be at least one `net_probe` (either
//!    the in-round re-probe after the failed attempt, or the line 11
//!    probe opening the next round). Enforced only for policies that
//!    mandate the re-probe (DistWS, DistWS-NS, AdaptiveWS — not
//!    LifelineWS, whose random attempts deliberately skip it).
//! 4. **Chunk bound** — the `migration` events carried by one remote
//!    `steal_success` never exceed the policy's remote chunk
//!    ([`distws_sched::protocol::REMOTE_STEAL_CHUNK`] for DistWS).
//!
//! Checks 1–3 need the probe/attempt events; traces produced before
//! those events existed (no `steal_attempt`/`net_probe` lines at all)
//! degrade gracefully to check 4 only.

use distws_json::Value;
use distws_sched::protocol;
use std::collections::BTreeMap;

/// Per-policy conformance parameters, derived from
/// `distws_sched::protocol` so the checker can never drift from the
/// implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformConfig {
    /// Upper bound on tasks migrated per remote steal, `None` to skip
    /// the chunk check.
    pub max_remote_chunk: Option<usize>,
    /// Enforce the line 19 re-probe rule between remote attempts.
    pub require_reprobe: bool,
}

impl ConformConfig {
    /// Policy-agnostic configuration: structural rules only (tier
    /// order, success justification), no chunk bound, no re-probe rule.
    pub fn generic() -> Self {
        ConformConfig {
            max_remote_chunk: None,
            require_reprobe: false,
        }
    }

    /// Configuration for one of the six named policies, or `None` for
    /// an unknown name.
    pub fn for_policy(name: &str) -> Option<Self> {
        let (chunk, reprobe) = match name {
            // X10WS never steals remotely; bound 1 is vacuous but safe.
            "X10WS" => (1, true),
            "DistWS" | "DistWS-NS" | "AdaptiveWS" => (protocol::REMOTE_STEAL_CHUNK, true),
            // One random victim per round; the next round's line 11
            // probe separates consecutive remote attempts.
            "RandomWS" => (1, true),
            // Lifeline random attempts run back-to-back with no
            // interleaved probe by design (Saraswat et al.).
            "LifelineWS" => (1, false),
            _ => return None,
        };
        Some(ConformConfig {
            max_remote_chunk: Some(chunk),
            require_reprobe: reprobe,
        })
    }
}

/// One conformance failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformViolation {
    /// 1-based JSONL line of the offending event.
    pub line: u64,
    /// The worker whose steal timeline broke the protocol.
    pub worker: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConformViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "line {}: worker {}: {}",
            self.line, self.worker, self.message
        )
    }
}

/// Conformance summary.
#[derive(Debug, Clone)]
pub struct ConformReport {
    /// Events consumed.
    pub events: u64,
    /// Distinct workers seen.
    pub workers: u64,
    /// `steal_attempt` events checked.
    pub attempts: u64,
    /// `steal_success` events checked.
    pub successes: u64,
    /// `net_probe` events seen.
    pub probes: u64,
    /// Whether the trace carries the probe/attempt vocabulary (rules
    /// 1–3 active) or predates it (rule 4 only).
    pub full_vocabulary: bool,
    /// All failures, in detection order.
    pub violations: Vec<ConformViolation>,
}

impl ConformReport {
    /// Whether the trace conforms to the modeled steal order.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Per-worker steal-round automaton state.
#[derive(Debug, Clone, Default)]
struct WorkerRound {
    /// Tier rank of the last attempt in the current round.
    last_rank: Option<usize>,
    /// Bitmask of tier ranks attempted this round.
    attempted: u8,
    /// Probes since the last steal attempt (round-boundary evidence).
    probes_since_attempt: u32,
    /// Probes since the last *remote* attempt (line 19 evidence).
    probes_since_remote: u32,
    /// Whether this worker has made any remote attempt yet.
    seen_remote: bool,
    /// Open chunk accounting: (success t_ns, victim place, migrations
    /// counted so far). Cleared by any non-`migration` event.
    pending_chunk: Option<(u64, u64, usize)>,
}

impl WorkerRound {
    fn reset_round(&mut self) {
        self.last_rank = None;
        self.attempted = 0;
        self.probes_since_attempt = 0;
    }
}

/// Check a whole trace given as JSONL text.
pub fn conform_str(trace: &str, cfg: &ConformConfig) -> ConformReport {
    conform_lines(trace.lines(), cfg)
}

/// Check a trace line by line (blank lines are skipped; parse errors
/// are reported as violations and skipped).
pub fn conform_lines<'a>(
    lines: impl Iterator<Item = &'a str> + Clone,
    cfg: &ConformConfig,
) -> ConformReport {
    // Pre-scan: does this trace carry the steal vocabulary at all?
    // (Backward compatibility with traces recorded before
    // `net_probe`/`steal_attempt` existed.)
    let full_vocabulary = lines
        .clone()
        .any(|l| l.contains("\"ev\":\"net_probe\"") || l.contains("\"ev\":\"steal_attempt\""));

    let mut violations: Vec<ConformViolation> = Vec::new();
    let mut rounds: BTreeMap<u32, WorkerRound> = BTreeMap::new();
    let (mut events, mut attempts, mut successes, mut probes) = (0u64, 0u64, 0u64, 0u64);

    for (lineno0, raw) in lines.enumerate() {
        let line = lineno0 as u64 + 1;
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let v = match Value::parse(raw) {
            Ok(v) => v,
            Err(e) => {
                violations.push(ConformViolation {
                    line,
                    worker: 0,
                    message: format!("unparseable event: {e}"),
                });
                continue;
            }
        };
        let (Some(t_ns), Some(w), Some(ev)) = (
            v.get("t").and_then(Value::as_u64),
            v.get("w").and_then(Value::as_u64),
            v.get("ev").and_then(Value::as_str),
        ) else {
            violations.push(ConformViolation {
                line,
                worker: 0,
                message: "event missing t/w/ev fields".to_string(),
            });
            continue;
        };
        events += 1;
        let w = w as u32;
        let st = rounds.entry(w).or_default();
        let mut bad = |message: String| {
            violations.push(ConformViolation {
                line,
                worker: w,
                message,
            });
        };

        // Rule 4 bookkeeping: migrations immediately following a remote
        // success (same worker, same timestamp, from == victim) are
        // that steal's chunk; anything else closes the accounting.
        if ev == "migration" {
            let from = v.get("from").and_then(Value::as_u64);
            if let Some((succ_t, victim, count)) = st.pending_chunk {
                if t_ns == succ_t && from == Some(victim) {
                    let count = count + 1;
                    st.pending_chunk = Some((succ_t, victim, count));
                    if let Some(max) = cfg.max_remote_chunk {
                        if count > max {
                            bad(format!(
                                "remote steal from place {victim} migrated {count} tasks \
                                 (chunk bound is {max})"
                            ));
                        }
                    }
                } else {
                    st.pending_chunk = None;
                }
            }
            continue;
        }
        st.pending_chunk = None;

        match ev {
            "net_probe" => {
                probes += 1;
                st.probes_since_attempt += 1;
                st.probes_since_remote += 1;
            }
            "steal_attempt" => {
                attempts += 1;
                let tier = v.get("tier").and_then(Value::as_str).unwrap_or("");
                let Some(rank) = protocol::tier_rank(tier) else {
                    bad(format!("steal_attempt with unknown tier {tier:?}"));
                    continue;
                };
                if let Some(last) = st.last_rank {
                    if rank < last {
                        if st.probes_since_attempt > 0 {
                            // Implicit new round (the runtime's spin
                            // loop emits no delimiter between failed
                            // rounds, but every round opens with the
                            // line 11 probe).
                            st.reset_round();
                        } else {
                            bad(format!(
                                "steal tier regressed from {} to {} with no round \
                                 boundary or network probe in between",
                                protocol::STEAL_TIER_ORDER[last],
                                protocol::STEAL_TIER_ORDER[rank],
                            ));
                        }
                    }
                }
                if rank == 2 {
                    if cfg.require_reprobe
                        && full_vocabulary
                        && st.seen_remote
                        && st.probes_since_remote == 0
                    {
                        bad("remote steal attempt without the line 19 network re-probe \
                             after the previous failed remote attempt"
                            .to_string());
                    }
                    st.seen_remote = true;
                    st.probes_since_remote = 0;
                }
                st.last_rank = Some(rank);
                st.attempted |= 1 << rank;
                st.probes_since_attempt = 0;
            }
            "steal_success" => {
                successes += 1;
                let tier = v.get("tier").and_then(Value::as_str).unwrap_or("");
                let Some(rank) = protocol::tier_rank(tier) else {
                    bad(format!("steal_success with unknown tier {tier:?}"));
                    continue;
                };
                if full_vocabulary {
                    if st.last_rank != Some(rank) {
                        bad(format!(
                            "steal_success at tier {tier} not immediately preceded by an \
                             attempt at that tier"
                        ));
                    }
                    for lower in 0..rank {
                        if st.attempted & (1 << lower) == 0 {
                            bad(format!(
                                "steal_success at tier {tier} not justified by a failed \
                                 {} attempt earlier in the round",
                                protocol::STEAL_TIER_ORDER[lower],
                            ));
                        }
                    }
                }
                if rank == 2 {
                    if let Some(victim) = v.get("victim").and_then(Value::as_u64) {
                        // The success itself carries the first stolen
                        // task; its migration event follows and counts
                        // toward the chunk.
                        st.pending_chunk = Some((t_ns, victim, 0));
                    }
                }
                st.reset_round();
            }
            // Explicit round boundaries: the worker started executing,
            // parked, or woke up.
            "task_start" | "dormant" | "wakeup" => st.reset_round(),
            _ => {}
        }
    }

    ConformReport {
        events,
        workers: rounds.len() as u64,
        attempts,
        successes,
        probes,
        full_vocabulary,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, w: u32, kind: &str, extra: &[(&str, &str)]) -> String {
        let mut o = Value::object();
        o.set("t", t);
        o.set("w", w);
        o.set("p", 0u32);
        o.set("ev", kind);
        for &(k, val) in extra {
            if let Ok(n) = val.parse::<u64>() {
                o.set(k, n);
            } else {
                o.set(k, val);
            }
        }
        o.render()
    }

    fn distws_cfg() -> ConformConfig {
        ConformConfig::for_policy("DistWS").unwrap()
    }

    #[test]
    fn clean_full_round_passes() {
        // probe, co-worker, local shared, remote (with re-probe),
        // success at remote, its two migrations, then execution.
        let trace = [
            ev(0, 1, "net_probe", &[]),
            ev(1, 1, "steal_attempt", &[("tier", "local_private")]),
            ev(2, 1, "steal_attempt", &[("tier", "local_shared")]),
            ev(3, 1, "steal_attempt", &[("tier", "remote")]),
            ev(4, 1, "net_probe", &[]),
            ev(5, 1, "steal_attempt", &[("tier", "remote")]),
            ev(
                6,
                1,
                "steal_success",
                &[("tier", "remote"), ("task", "7"), ("victim", "2")],
            ),
            ev(
                6,
                1,
                "migration",
                &[("task", "7"), ("from", "2"), ("to", "0")],
            ),
            ev(
                6,
                1,
                "migration",
                &[("task", "8"), ("from", "2"), ("to", "0")],
            ),
            ev(6, 1, "task_start", &[("task", "7")]),
        ]
        .join("\n");
        let r = conform_str(&trace, &distws_cfg());
        assert!(r.ok(), "{:?}", r.violations);
        assert!(r.full_vocabulary);
        assert_eq!(r.attempts, 4);
        assert_eq!(r.successes, 1);
    }

    #[test]
    fn tier_regression_without_probe_is_flagged() {
        let trace = [
            ev(0, 0, "net_probe", &[]),
            ev(1, 0, "steal_attempt", &[("tier", "remote")]),
            ev(2, 0, "steal_attempt", &[("tier", "local_private")]),
        ]
        .join("\n");
        let r = conform_str(&trace, &distws_cfg());
        assert!(
            r.violations.iter().any(|v| v.message.contains("regressed")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn tier_regression_after_probe_is_a_new_round() {
        // The threaded runtime's spin loop: failed round, no delimiter,
        // next round opens with the line 11 probe.
        let trace = [
            ev(0, 0, "net_probe", &[]),
            ev(1, 0, "steal_attempt", &[("tier", "local_private")]),
            ev(2, 0, "steal_attempt", &[("tier", "local_shared")]),
            ev(3, 0, "steal_attempt", &[("tier", "remote")]),
            ev(4, 0, "net_probe", &[]),
            ev(5, 0, "steal_attempt", &[("tier", "local_private")]),
        ]
        .join("\n");
        let r = conform_str(&trace, &distws_cfg());
        assert!(r.ok(), "{:?}", r.violations);
    }

    #[test]
    fn doctored_out_of_order_steal_is_flagged() {
        // A remote success with no remote attempt and no lower-tier
        // attempts: the doctored case the acceptance criteria require.
        let trace = [
            ev(0, 0, "net_probe", &[]),
            ev(1, 0, "steal_attempt", &[("tier", "local_private")]),
            ev(
                2,
                0,
                "steal_success",
                &[("tier", "remote"), ("task", "3"), ("victim", "1")],
            ),
        ]
        .join("\n");
        let r = conform_str(&trace, &distws_cfg());
        assert!(
            r.violations
                .iter()
                .any(|v| v.message.contains("not immediately preceded")),
            "{:?}",
            r.violations
        );
        assert!(
            r.violations
                .iter()
                .any(|v| v.message.contains("local_shared attempt")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn missing_line19_reprobe_is_flagged_for_distws_only() {
        let trace = [
            ev(0, 0, "net_probe", &[]),
            ev(1, 0, "steal_attempt", &[("tier", "local_private")]),
            ev(2, 0, "steal_attempt", &[("tier", "local_shared")]),
            ev(3, 0, "steal_attempt", &[("tier", "remote")]),
            // No re-probe before the next remote attempt:
            ev(4, 0, "steal_attempt", &[("tier", "remote")]),
        ]
        .join("\n");
        let r = conform_str(&trace, &distws_cfg());
        assert!(
            r.violations.iter().any(|v| v.message.contains("line 19")),
            "{:?}",
            r.violations
        );
        // LifelineWS's back-to-back random attempts are legal.
        let lifeline = ConformConfig::for_policy("LifelineWS").unwrap();
        assert!(conform_str(&trace, &lifeline).ok());
    }

    #[test]
    fn chunk_bound_is_enforced() {
        let trace = [
            ev(0, 0, "net_probe", &[]),
            ev(1, 0, "steal_attempt", &[("tier", "local_private")]),
            ev(2, 0, "steal_attempt", &[("tier", "local_shared")]),
            ev(3, 0, "steal_attempt", &[("tier", "remote")]),
            ev(
                4,
                0,
                "steal_success",
                &[("tier", "remote"), ("task", "1"), ("victim", "1")],
            ),
            ev(
                4,
                0,
                "migration",
                &[("task", "1"), ("from", "1"), ("to", "0")],
            ),
            ev(
                4,
                0,
                "migration",
                &[("task", "2"), ("from", "1"), ("to", "0")],
            ),
            ev(
                4,
                0,
                "migration",
                &[("task", "3"), ("from", "1"), ("to", "0")],
            ),
        ]
        .join("\n");
        let r = conform_str(&trace, &distws_cfg());
        assert!(
            r.violations
                .iter()
                .any(|v| v.message.contains("chunk bound")),
            "{:?}",
            r.violations
        );
        // A push migration by another worker at a different time is not
        // chunk accounting.
        let generic = conform_str(&trace, &ConformConfig::generic());
        assert!(generic.ok(), "{:?}", generic.violations);
    }

    #[test]
    fn legacy_traces_without_probe_vocabulary_pass_structurally() {
        // Pre-probe trace: success with no attempt events at all must
        // not be flagged (rules 1–3 inactive).
        let trace = [
            ev(
                0,
                0,
                "steal_success",
                &[("tier", "remote"), ("task", "1"), ("victim", "1")],
            ),
            ev(1, 0, "task_start", &[("task", "1")]),
        ]
        .join("\n");
        let r = conform_str(&trace, &distws_cfg());
        assert!(!r.full_vocabulary);
        assert!(r.ok(), "{:?}", r.violations);
    }

    #[test]
    fn policy_table_covers_the_six_policies() {
        for name in [
            "X10WS",
            "DistWS",
            "DistWS-NS",
            "RandomWS",
            "LifelineWS",
            "AdaptiveWS",
        ] {
            assert!(ConformConfig::for_policy(name).is_some(), "{name}");
        }
        assert!(ConformConfig::for_policy("NoSuchWS").is_none());
    }
}
