//! Symmetry canonicalization and compact bit-packed state keys for
//! the protocol model ([`crate::protocol`]).
//!
//! ## The orbit argument
//!
//! Scenario-identical places and class-identical tasks are
//! interchangeable: relabeling them maps reachable states to reachable
//! states and violations to violations (modulo task indices inside
//! messages, which the verdicts never pin). Memoizing states under any
//! fixed *orbit member* — not necessarily a unique canonical form — is
//! therefore a sound quotient: if `canon(s)` ∈ orbit(s) for every `s`,
//! two states with the same key are genuinely symmetric, and the
//! exploration of one covers the other. A greedy, non-invariant
//! canonicalizer only costs reduction quality (states in the same
//! orbit may land on different keys), never soundness.
//!
//! Concretely:
//!
//! * **Places** `p ≥ 1` that no task calls home (and that no fault
//!   targets) are fully symmetric: the model references them only
//!   through uniform iteration. The canonicalizer tries every
//!   permutation of that group — worker blocks, place-indexed masks
//!   (`Remote::untried`, `Lease::InDoubt::answered`), liveness and
//!   epoch arrays move along — and keeps the lexicographically
//!   smallest packed key.
//! * **Tasks** in the same static class — same home, sensitivity and
//!   parent, and childless (a parent's identity is pinned by its
//!   children's `parent` references) — are sorted within the class's
//!   original index slots by their dynamic signature.
//! * **Workers** are relabeled *across* places by the place
//!   permutation (blocks move wholesale, preserving intra-place
//!   order). Within a place they are deliberately *not* sorted: the
//!   model's deterministic delivery-target and dormant-wake rules make
//!   the intra-place index order observable, so within-place swaps are
//!   not automorphisms.
//!
//! ## Fault gating
//!
//! The interchangeability argument for tasks leans on per-task fault
//! state (duplicate ghosts, custody leases) being either absent or
//! determined by the task's location. That holds exactly for
//! fault-free [`Era::Sim`] scenarios — which is the scale tier the
//! symmetry quotient exists for. Fault and cluster scenarios get
//! [`raw_key`] under reduced mode too (partial-order reduction still
//! applies); the `--compare` cross-validation re-verifies verdict
//! agreement either way.
//!
//! ## Packed keys
//!
//! Keys are fixed-size `[u64; 13]` bit-strings (no heap allocation in
//! the memo table, unlike hashing the working `State` with its five
//! `Vec`s). Fields are written in a fixed order with widths determined
//! by already-written discriminants, so the encoding is prefix-
//! decodable and injective for states of one scenario.

use crate::protocol::{Era, Lease, Loc, Phase, ProtocolScenario, State};

/// Words per packed key: 832 bits, enough for the asserted maxima
/// (8 places, 16 workers, 16 tasks — ≤ 630 bits worst case).
pub(crate) const KEY_WORDS: usize = 13;

/// A packed state key (raw or canonical).
pub(crate) type Key = [u64; KEY_WORDS];

struct BitWriter {
    words: Key,
    bit: usize,
}

impl BitWriter {
    fn new() -> BitWriter {
        BitWriter {
            words: [0; KEY_WORDS],
            bit: 0,
        }
    }

    /// Append `width` (≤ 32) low bits of `v`.
    fn push(&mut self, v: u64, width: usize) {
        debug_assert!(width <= 32 && (width == 64 || v < (1u64 << width)));
        let mut v = v;
        let mut width = width;
        while width > 0 {
            let word = self.bit / 64;
            let off = self.bit % 64;
            let take = (64 - off).min(width);
            assert!(word < KEY_WORDS, "state key overflow");
            let mask = (1u64 << take) - 1;
            self.words[word] |= (v & mask) << off;
            v >>= take;
            width -= take;
            self.bit += take;
        }
    }
}

fn pack(sc: &ProtocolScenario, s: &State) -> Key {
    let mut w = BitWriter::new();
    assert!((-16..112).contains(&s.latch), "latch encoding range");
    w.push((s.latch + 16) as u64, 8);
    for p in 0..sc.places as usize {
        w.push(s.alive[p] as u64, 1);
        debug_assert!(s.epochs[p] < 4, "epoch encoding range");
        w.push((s.epochs[p] & 3) as u64, 2);
    }
    debug_assert!(s.drops_left < 4 && s.dups_left < 4);
    w.push((s.drops_left & 3) as u64, 2);
    w.push((s.dups_left & 3) as u64, 2);
    w.push(s.killed as u64, 1);
    w.push(s.restarted as u64, 1);
    for ph in &s.phases {
        match *ph {
            Phase::Idle => w.push(0, 3),
            Phase::Probe => w.push(1, 3),
            Phase::CoWorker => w.push(2, 3),
            Phase::LocalShared => w.push(3, 3),
            Phase::Remote { untried, probed } => {
                w.push(4, 3);
                w.push(untried as u64, 8);
                w.push(probed as u64, 1);
            }
            Phase::Busy { task } => {
                w.push(5, 3);
                w.push(task as u64, 4);
            }
            Phase::Dormant => w.push(6, 3),
            Phase::Dead => w.push(7, 3),
        }
    }
    for t in 0..s.tasks.len() {
        match s.tasks[t] {
            Loc::NotSpawned => w.push(0, 3),
            Loc::InFlight { to } => {
                w.push(1, 3);
                w.push(to as u64, 3);
            }
            Loc::Private { w: pw } => {
                w.push(2, 3);
                w.push(pw as u64, 4);
            }
            Loc::Shared { p } => {
                w.push(3, 3);
                w.push(p as u64, 3);
            }
            Loc::Running { w: pw } => {
                w.push(4, 3);
                w.push(pw as u64, 4);
            }
            Loc::Done => w.push(5, 3),
            Loc::Lost => w.push(6, 3),
            Loc::Vanished => w.push(7, 3),
        }
        w.push(s.exec[t].min(3) as u64, 2);
        w.push(((s.migrated >> t) & 1) as u64, 1);
        let ghost = (s.dup_ghost >> t) & 1;
        w.push(ghost as u64, 1);
        if ghost != 0 {
            w.push(((s.stale_ghost >> t) & 1) as u64, 1);
            w.push((s.dup_dest[t] & 7) as u64, 3);
        }
        match s.lease[t] {
            Lease::None => w.push(0, 2),
            Lease::Held { p, e } => {
                w.push(1, 2);
                w.push(p as u64, 3);
                w.push((e & 3) as u64, 2);
            }
            Lease::InDoubt { answered } => {
                w.push(2, 2);
                w.push(answered as u64, 8);
            }
        }
    }
    w.words
}

/// The identity key: the state packed as-is. Used by full
/// (unreduced) exploration and by every scenario the symmetry
/// argument does not cover.
pub(crate) fn raw_key(sc: &ProtocolScenario, s: &State) -> Key {
    pack(sc, s)
}

/// Does the task-interchangeability argument cover this scenario?
fn sym_eligible(sc: &ProtocolScenario) -> bool {
    sc.era == Era::Sim
        && sc.faults.max_drops == 0
        && sc.faults.max_dups == 0
        && sc.faults.kill_place.is_none()
}

/// The fully symmetric place group: non-zero places no task calls
/// home. (Place 0 hosts recovery; fault targets are excluded by
/// [`sym_eligible`].)
fn free_places(sc: &ProtocolScenario) -> Vec<u8> {
    (1..sc.places)
        .filter(|&p| sc.tasks.iter().all(|t| t.home != p))
        .collect()
}

/// All permutations of `items` (Heap's algorithm, iterative clone).
fn perms(items: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut v = items.to_vec();
    fn rec(v: &mut Vec<u8>, k: usize, out: &mut Vec<Vec<u8>>) {
        if k <= 1 {
            out.push(v.clone());
            return;
        }
        for i in 0..k {
            rec(v, k - 1, out);
            if k.is_multiple_of(2) {
                v.swap(i, k - 1);
            } else {
                v.swap(0, k - 1);
            }
        }
    }
    let k = v.len();
    rec(&mut v, k, &mut out);
    out
}

/// Permute a place-index bitmask through `pm`.
fn perm_mask(mask: u8, pm: &[u8]) -> u8 {
    let mut out = 0u8;
    for (p, &to) in pm.iter().enumerate() {
        if mask & (1 << p) != 0 {
            out |= 1 << to;
        }
    }
    out
}

/// Hard bound used by the fixed scratch arrays in the hot path.
const MAX_TASKS: usize = 16;

/// Precomputed per-scenario canonicalization tables: the free-place
/// permutation group (with inverses) and the slot lists of task
/// classes with ≥ 2 interchangeable members. Built once per
/// exploration so the per-state hot path ([`Canonizer::key`]) does no
/// static recomputation and no intermediate `State` materialization.
pub(crate) struct Canonizer {
    eligible: bool,
    group: Vec<u8>,
    group_mask: u8,
    /// `(pm, inv)` pairs over all places; `pm[p]` is where `p` lands.
    /// The identity mapping is always first.
    perms: Vec<(Vec<u8>, Vec<u8>)>,
    classes: Vec<Vec<usize>>,
}

impl Canonizer {
    pub(crate) fn new(sc: &ProtocolScenario) -> Canonizer {
        let eligible = sym_eligible(sc);
        let group = if eligible {
            free_places(sc)
        } else {
            Vec::new()
        };
        assert!(group.len() <= 5, "place permutation group too large");
        assert!(
            sc.tasks.len() <= MAX_TASKS,
            "task count exceeds scratch bound"
        );
        let identity: Vec<u8> = (0..sc.places).collect();
        let mut pms = Vec::new();
        if group.len() > 1 {
            for perm in perms(&group) {
                let mut pm = identity.clone();
                for (i, &g) in group.iter().enumerate() {
                    pm[g as usize] = perm[i];
                }
                let mut inv = vec![0u8; pm.len()];
                for (p, &q) in pm.iter().enumerate() {
                    inv[q as usize] = p as u8;
                }
                pms.push((pm, inv));
            }
        } else {
            pms.push((identity.clone(), identity));
        }
        debug_assert!(pms[0].0.iter().enumerate().all(|(p, &q)| p as u8 == q));
        // Static class id per task: childless tasks share a class with
        // equals; parents are singletons (children pin their identity).
        let n_tasks = sc.tasks.len();
        let has_children: Vec<bool> = (0..n_tasks)
            .map(|t| sc.tasks.iter().any(|c| c.parent == Some(t)))
            .collect();
        let class_of = |t: usize| -> (u8, bool, i8, i8) {
            let mt = &sc.tasks[t];
            (
                mt.home,
                mt.sensitive,
                mt.parent.map(|p| p as i8).unwrap_or(-1),
                if has_children[t] { t as i8 } else { -1 },
            )
        };
        let mut classes = Vec::new();
        let mut grouped = vec![false; n_tasks];
        for i in 0..n_tasks {
            if grouped[i] {
                continue;
            }
            let ci = class_of(i);
            let slots: Vec<usize> = (i..n_tasks).filter(|&t| class_of(t) == ci).collect();
            for &t in &slots {
                grouped[t] = true;
            }
            if slots.len() > 1 {
                classes.push(slots);
            }
        }
        Canonizer {
            eligible,
            group_mask: group.iter().fold(0, |m, &g| m | (1 << g)),
            group,
            perms: pms,
            classes,
        }
    }

    /// The canonical key: the lexicographically smallest packed key
    /// over the explored symmetry group (place permutations ×
    /// class-internal task sorting). Falls back to [`raw_key`] for
    /// scenarios outside the interchangeability argument
    /// ([`sym_eligible`]).
    pub(crate) fn key(&self, sc: &ProtocolScenario, s: &State) -> Key {
        if !self.eligible {
            return pack(sc, s);
        }
        // When the free places are literally uniform — identical
        // worker-phase blocks and nothing anywhere referencing any of
        // them — every group permutation leaves the state invariant,
        // so the identity alone is already canonical.
        let perms: &[(Vec<u8>, Vec<u8>)] = if self.perms.len() > 1 && !self.frees_uniform(sc, s) {
            &self.perms
        } else {
            &self.perms[..1]
        };
        // Identity first (no pruning reference yet), then every other
        // permutation packs against the best-so-far and aborts as soon
        // as a finished 64-bit word of its output exceeds the
        // reference prefix — most challengers die on the first word.
        let mut best = self
            .pack_mapped(sc, s, &perms[0].0, &perms[0].1, None)
            .expect("identity permutation never prunes");
        for (pm, inv_pm) in &perms[1..] {
            if let Some(k) = self.pack_mapped(sc, s, pm, inv_pm, Some(&best)) {
                best = k;
            }
        }
        best
    }

    /// Are all free places pairwise indistinguishable in `s` — equal
    /// liveness/epoch/worker blocks, and no task location or sweep
    /// mask referencing the group? (A false negative only costs
    /// speed; a `true` means every group permutation is a stabilizer.)
    fn frees_uniform(&self, sc: &ProtocolScenario, s: &State) -> bool {
        let wpp = sc.workers_per_place as usize;
        let g0 = self.group[0] as usize;
        for &g in &self.group[1..] {
            let g = g as usize;
            if s.alive[g] != s.alive[g0] || s.epochs[g] != s.epochs[g0] {
                return false;
            }
            for j in 0..wpp {
                if s.phases[g * wpp + j] != s.phases[g0 * wpp + j] {
                    return false;
                }
            }
        }
        for ph in &s.phases {
            if let Phase::Remote { untried, .. } = ph {
                if untried & self.group_mask != 0 {
                    return false;
                }
            }
        }
        for t in 0..s.tasks.len() {
            let touches = match s.tasks[t] {
                Loc::InFlight { to } => self.group_mask & (1 << to) != 0,
                Loc::Shared { p } => self.group_mask & (1 << p) != 0,
                Loc::Private { w } | Loc::Running { w } => {
                    self.group_mask & (1 << (w as usize / wpp)) != 0
                }
                _ => false,
            };
            if touches {
                return false;
            }
        }
        true
    }

    /// Pack `s` as if the place permutation `pm` and the class-internal
    /// task sort had been applied, without materializing either: bit
    /// output is identical to `pack(sort_tasks(apply_place_perm(s)))`.
    ///
    /// With `best` given, the pack is abandoned (`None`) as soon as a
    /// completed prefix of the output compares greater than `best` —
    /// that permutation cannot yield the minimum. Once a prefix
    /// compares *smaller*, checking stops and the full key is
    /// returned.
    fn pack_mapped(
        &self,
        sc: &ProtocolScenario,
        s: &State,
        pm: &[u8],
        inv_pm: &[u8],
        best: Option<&Key>,
    ) -> Option<Key> {
        let n_tasks = sc.tasks.len();
        let wpp = sc.workers_per_place as usize;
        let wmap = |w: u8| -> u8 { pm[w as usize / wpp] * wpp as u8 + (w % wpp as u8) };
        // The class-internal task sort is computed lazily: pruned
        // permutations usually die on a phase-prefix word before any
        // task index is ever emitted, and then never pay for it.
        let mut ord: Option<([u8; MAX_TASKS], [u8; MAX_TASKS])> = None;

        let mut w = BitWriter::new();
        // Incremental lexicographic comparison against `best`: words
        // below `bit/64` are final, so any divergence there decides
        // the whole key's ordering.
        let mut checking = best.is_some();
        let mut cmp_word = 0usize;
        let check = |w: &BitWriter, checking: &mut bool, cmp_word: &mut usize| -> bool {
            if *checking {
                let bestk = best.expect("checking implies a reference key");
                let upto = w.bit / 64;
                while *cmp_word < upto {
                    match w.words[*cmp_word].cmp(&bestk[*cmp_word]) {
                        std::cmp::Ordering::Less => {
                            *checking = false;
                            break;
                        }
                        std::cmp::Ordering::Greater => return false,
                        std::cmp::Ordering::Equal => *cmp_word += 1,
                    }
                }
            }
            true
        };
        assert!((-16..112).contains(&s.latch), "latch encoding range");
        w.push((s.latch + 16) as u64, 8);
        for &src in inv_pm.iter().take(sc.places as usize) {
            let p = src as usize;
            w.push(s.alive[p] as u64, 1);
            debug_assert!(s.epochs[p] < 4, "epoch encoding range");
            w.push((s.epochs[p] & 3) as u64, 2);
        }
        debug_assert!(s.drops_left < 4 && s.dups_left < 4);
        w.push((s.drops_left & 3) as u64, 2);
        w.push((s.dups_left & 3) as u64, 2);
        w.push(s.killed as u64, 1);
        w.push(s.restarted as u64, 1);
        for &src in inv_pm.iter().take(sc.places as usize) {
            let p = src as usize;
            for j in 0..wpp {
                match s.phases[p * wpp + j] {
                    Phase::Idle => w.push(0, 3),
                    Phase::Probe => w.push(1, 3),
                    Phase::CoWorker => w.push(2, 3),
                    Phase::LocalShared => w.push(3, 3),
                    Phase::Remote { untried, probed } => {
                        w.push(4, 3);
                        w.push(perm_mask(untried, pm) as u64, 8);
                        w.push(probed as u64, 1);
                    }
                    Phase::Busy { task } => {
                        let (_, inv_task) = ord.get_or_insert_with(|| self.task_order(sc, s, pm));
                        w.push(5, 3);
                        w.push(inv_task[task as usize] as u64, 4);
                    }
                    Phase::Dormant => w.push(6, 3),
                    Phase::Dead => w.push(7, 3),
                }
            }
            if !check(&w, &mut checking, &mut cmp_word) {
                return None;
            }
        }
        let (order, _) = *ord.get_or_insert_with(|| self.task_order(sc, s, pm));
        for &slot_t in order.iter().take(n_tasks) {
            let t = slot_t as usize;
            match s.tasks[t] {
                Loc::NotSpawned => w.push(0, 3),
                Loc::InFlight { to } => {
                    w.push(1, 3);
                    w.push(pm[to as usize] as u64, 3);
                }
                Loc::Private { w: pw } => {
                    w.push(2, 3);
                    w.push(wmap(pw) as u64, 4);
                }
                Loc::Shared { p } => {
                    w.push(3, 3);
                    w.push(pm[p as usize] as u64, 3);
                }
                Loc::Running { w: pw } => {
                    w.push(4, 3);
                    w.push(wmap(pw) as u64, 4);
                }
                Loc::Done => w.push(5, 3),
                Loc::Lost => w.push(6, 3),
                Loc::Vanished => w.push(7, 3),
            }
            w.push(s.exec[t].min(3) as u64, 2);
            w.push(((s.migrated >> t) & 1) as u64, 1);
            let ghost = (s.dup_ghost >> t) & 1;
            w.push(ghost as u64, 1);
            if ghost != 0 {
                w.push(((s.stale_ghost >> t) & 1) as u64, 1);
                let dest = s.dup_dest[t];
                let dest = if dest == 255 { dest } else { pm[dest as usize] };
                w.push((dest & 7) as u64, 3);
            }
            match s.lease[t] {
                Lease::None => w.push(0, 2),
                Lease::Held { p, e } => {
                    w.push(1, 2);
                    w.push(pm[p as usize] as u64, 3);
                    w.push((e & 3) as u64, 2);
                }
                Lease::InDoubt { answered } => {
                    w.push(2, 2);
                    w.push(perm_mask(answered, pm) as u64, 8);
                }
            }
            if !check(&w, &mut checking, &mut cmp_word) {
                return None;
            }
        }
        Some(w.words)
    }

    /// `order[slot]` = which old task index lands in `slot` after
    /// sorting each class's members by their `pm`-mapped dynamic
    /// signature (ties keep old index order, matching a stable sort),
    /// plus the inverse mapping for `Busy` payloads.
    fn task_order(
        &self,
        sc: &ProtocolScenario,
        s: &State,
        pm: &[u8],
    ) -> ([u8; MAX_TASKS], [u8; MAX_TASKS]) {
        let n_tasks = sc.tasks.len();
        let wpp = sc.workers_per_place as usize;
        let wmap = |w: u8| -> u8 { pm[w as usize / wpp] * wpp as u8 + (w % wpp as u8) };
        let mut order = [0u8; MAX_TASKS];
        for (t, o) in order.iter_mut().enumerate().take(n_tasks) {
            *o = t as u8;
        }
        let mut sigs = [(0u64, 0u8); MAX_TASKS];
        for class in &self.classes {
            let m = class.len();
            for (i, &t) in class.iter().enumerate() {
                let loc = match s.tasks[t] {
                    Loc::NotSpawned => 0u64,
                    Loc::InFlight { to } => (1 << 8) | pm[to as usize] as u64,
                    Loc::Private { w } => (2 << 8) | wmap(w) as u64,
                    Loc::Shared { p } => (3 << 8) | pm[p as usize] as u64,
                    Loc::Running { w } => (4 << 8) | wmap(w) as u64,
                    Loc::Done => 5 << 8,
                    Loc::Lost => 6 << 8,
                    Loc::Vanished => 7 << 8,
                };
                let sig =
                    (loc << 16) | ((s.exec[t] as u64) << 8) | (((s.migrated >> t) & 1) as u64);
                sigs[i] = (sig, t as u8);
            }
            sigs[..m].sort_unstable();
            for (slot, &(_, t)) in class.iter().zip(sigs[..m].iter()) {
                order[*slot] = t;
            }
        }
        let mut inv_task = [0u8; MAX_TASKS];
        for (slot, &old) in order.iter().enumerate().take(n_tasks) {
            inv_task[old as usize] = slot as u8;
        }
        (order, inv_task)
    }
}

/// Convenience one-shot wrapper over [`Canonizer`] (tests only;
/// exploration builds the tables once instead).
#[cfg(test)]
pub(crate) fn canonical_key(sc: &ProtocolScenario, s: &State) -> Key {
    Canonizer::new(sc).key(sc, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{scenario_by_name, ModelFaults, ModelTask};

    fn base(sc: &ProtocolScenario) -> State {
        State {
            tasks: crate::protocol::FixedVec::filled(Loc::NotSpawned, sc.tasks.len()),
            exec: crate::protocol::FixedVec::filled(0, sc.tasks.len()),
            lease: crate::protocol::FixedVec::filled(Lease::None, sc.tasks.len()),
            migrated: 0,
            dup_ghost: 0,
            stale_ghost: 0,
            dup_dest: crate::protocol::FixedVec::filled(255, sc.tasks.len()),
            latch: 0,
            phases: crate::protocol::FixedVec::filled(
                Phase::Idle,
                sc.places as usize * sc.workers_per_place as usize,
            ),
            alive: crate::protocol::FixedVec::filled(true, sc.places as usize),
            epochs: crate::protocol::FixedVec::filled(0, sc.places as usize),
            drops_left: 0,
            dups_left: 0,
            killed: false,
            restarted: false,
        }
    }

    fn scale_scenario() -> ProtocolScenario {
        let sc = scenario_by_name("wide_fanout").unwrap();
        assert!(sym_eligible(&sc));
        assert_eq!(free_places(&sc), vec![1, 2, 3]);
        sc
    }

    #[test]
    fn raw_key_distinguishes_distinct_states() {
        let sc = scale_scenario();
        let a = base(&sc);
        let mut b = a.clone();
        b.tasks[0] = Loc::Shared { p: 1 };
        let mut c = a.clone();
        c.phases[3] = Phase::Remote {
            untried: 0b1101,
            probed: true,
        };
        assert_ne!(raw_key(&sc, &a), raw_key(&sc, &b));
        assert_ne!(raw_key(&sc, &a), raw_key(&sc, &c));
        assert_ne!(raw_key(&sc, &b), raw_key(&sc, &c));
    }

    #[test]
    fn symmetric_place_relabelings_share_a_key() {
        let sc = scale_scenario();
        let mut a = base(&sc);
        a.tasks[2] = Loc::Shared { p: 1 };
        a.phases[2] = Phase::CoWorker; // worker block of place 1
        let mut b = base(&sc);
        b.tasks[2] = Loc::Shared { p: 3 };
        b.phases[6] = Phase::CoWorker; // worker block of place 3
        assert_ne!(raw_key(&sc, &a), raw_key(&sc, &b));
        assert_eq!(canonical_key(&sc, &a), canonical_key(&sc, &b));
    }

    #[test]
    fn class_internal_task_relabelings_share_a_key() {
        let sc = scale_scenario();
        // Tasks 2..=7 share a static class (sensitive, home 0, no parent).
        let mut a = base(&sc);
        a.tasks[2] = Loc::Done;
        a.exec[2] = 1;
        a.tasks[3] = Loc::Shared { p: 0 };
        let mut b = base(&sc);
        b.tasks[4] = Loc::Done;
        b.exec[4] = 1;
        b.tasks[2] = Loc::Shared { p: 0 };
        assert_ne!(raw_key(&sc, &a), raw_key(&sc, &b));
        assert_eq!(canonical_key(&sc, &a), canonical_key(&sc, &b));
    }

    #[test]
    fn different_classes_never_merge() {
        let sc = scale_scenario();
        // Task 0 (flexible) and task 2 (sensitive) are distinct classes:
        // swapping their dynamic state must produce distinct keys.
        let mut a = base(&sc);
        a.tasks[0] = Loc::Done;
        a.exec[0] = 1;
        let mut b = base(&sc);
        b.tasks[2] = Loc::Done;
        b.exec[2] = 1;
        assert_ne!(canonical_key(&sc, &a), canonical_key(&sc, &b));
    }

    #[test]
    fn fault_scenarios_fall_back_to_raw_keys() {
        let sc = ProtocolScenario {
            name: "t",
            places: 3,
            workers_per_place: 1,
            tasks: vec![ModelTask {
                home: 0,
                sensitive: false,
                parent: None,
            }],
            faults: ModelFaults {
                max_drops: 1,
                ..Default::default()
            },
            era: Era::Sim,
            full_ok: true,
        };
        assert!(!sym_eligible(&sc));
        let mut a = base(&sc);
        a.drops_left = 1;
        a.tasks[0] = Loc::Shared { p: 1 };
        let mut b = base(&sc);
        b.drops_left = 1;
        b.tasks[0] = Loc::Shared { p: 2 };
        assert_ne!(canonical_key(&sc, &a), canonical_key(&sc, &b));
    }
}
