//! The shared exploration engine: memoized DFS with optional
//! partial-order reduction, used by both model checkers
//! ([`crate::protocol`] and [`crate::interleave`]).
//!
//! A model implements [`System`]: an initial state, a successor
//! generator that records property violations as it fires transitions,
//! a terminal-state check, and a memoization key (the hook where
//! [`crate::canon`] plugs in symmetry canonicalization — any function
//! mapping each state to a fixed member of its symmetry orbit is a
//! sound quotient).
//!
//! ## Partial-order reduction (ample sets)
//!
//! With `reduce = true` the engine asks the model for an *ample*
//! successor at each state ([`System::ample`]): a single transition
//! that provably commutes with every transition of every other
//! process, cannot be disabled by them, cannot enable a dependent
//! transition of another process, and is invisible to the checked
//! properties. When the model nominates one, the engine expands only
//! that transition instead of the full successor set — the classic
//! persistent-singleton special case of ample-set POR, where the
//! commutation argument is made per transition *class* by the model
//! (see `docs/analysis.md` §5 for the class-by-class justification).
//!
//! **Soundness escape hatch (condition C3):** an ample transition
//! closing a cycle could defer the transitions of other processes
//! forever (the *ignoring problem*). The engine guards with the
//! classic DFS stack proviso: if the nominated successor is on the
//! current DFS path (a back-edge), the state is expanded in full
//! instead. Every cycle in the reduced graph closes a back-edge at
//! some state, so every cycle contains at least one fully expanded
//! state — the textbook C3 discharge for depth-first search with
//! memoization. Reconvergence onto an already-*finished* state (a
//! cross- or forward-edge, the overwhelmingly common case in this
//! confluent protocol) keeps the reduction.
//!
//! The reduction never suppresses a violation that the generator
//! reports while *firing* a transition (ample transitions are still
//! generated through the same checked path), and the cross-validation
//! suite (`repro check protocol --compare`) re-verifies on every
//! legacy scenario that the reduced and full explorations return the
//! same verdict.

use std::collections::{BTreeSet, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// A minimal Fx-style multiply-rotate hasher for the memo tables. The
/// packed `[u64; N]` keys hash through `write_u64` only, and the memo
/// sets see millions of lookups per run — SipHash's DoS resistance
/// buys nothing here and costs ~30% of exploration wall time.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        // 2^64 / φ, the classic Fibonacci-hashing multiplier.
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

pub(crate) type FxBuild = BuildHasherDefault<FxHasher>;

/// Result of exploring one scenario. (Re-exported as
/// `distws_analyze::Outcome`; kept here so both checkers share it.)
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Distinct global states visited (after canonicalization).
    pub states: u64,
    /// Distinct quiescent (transition-free) states.
    pub terminals: u64,
    /// Property violations found on any path (deduplicated, sorted).
    pub violations: Vec<String>,
}

/// Engine-side counters for one exploration, surfaced by
/// `repro check protocol` so reduction wins are visible and
/// regressions obvious.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreStats {
    /// Distinct states stored (equals `Outcome::states`).
    pub states: u64,
    /// Transitions fired (edges of the explored graph).
    pub transitions: u64,
    /// Peak depth of the DFS path.
    pub peak_queue: u64,
    /// States expanded through a singleton ample set.
    pub ample_states: u64,
    /// States expanded in full (no ample nominee, or the stack
    /// proviso fired).
    pub full_states: u64,
    /// Times the stack proviso (C3 cycle guard: the ample successor
    /// was on the current DFS path) forced a full expansion of a
    /// state that had an ample nominee.
    pub proviso_fallbacks: u64,
    /// Exploration stopped early at the state cap (verdict unsound —
    /// the caller must surface this).
    pub truncated: bool,
}

/// One labeled successor produced by [`System::successors`].
#[derive(Debug, Clone)]
pub struct Succ<S> {
    /// The post-state.
    pub state: S,
    /// Transition-class label the model's [`System::ample`] hook and
    /// the stats use to reason about reducibility.
    pub class: StepClass,
}

/// Coarse transition classes shared by the models. The engine never
/// interprets these beyond bookkeeping — the *model* decides which
/// classes are ample-eligible, because the commutation argument lives
/// with the model's semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepClass {
    /// A deterministic, invisible, process-local control step (e.g. a
    /// worker advancing Probe → CoWorker): commutes with everything.
    PhaseAdvance,
    /// A task completion whose effects are isolated at runtime (no
    /// pending arrival can observe the worker's busy bit flip).
    Completion,
    /// A remote-sweep step against a place that can *statically* never
    /// hold stealable work (no task homed there, so no delivery,
    /// spawn, recovery or reinject path ever routes work to it). The
    /// visit always fails, touches only the sweeping worker's own
    /// untried mask, and strongly commutes with every co-enabled
    /// transition — prioritizing it is a τ-confluence reduction.
    FreeVisit,
    /// Everything else: interleaved in full.
    Other,
}

/// A transition system the engine can explore.
pub trait System {
    /// Full (working) state representation.
    type State: Clone;
    /// Memoization key. For symmetry reduction return a canonical
    /// orbit representative ([`crate::canon`]); identity otherwise.
    type Key: Clone + Eq + Hash;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// All successors of `s`, recording property violations into
    /// `bad` as transitions are generated.
    fn successors(&self, s: &Self::State, bad: &mut BTreeSet<String>) -> Vec<Succ<Self::State>>;

    /// Quiescence checks on a transition-free state.
    fn check_terminal(&self, s: &Self::State, bad: &mut BTreeSet<String>);

    /// Memoization key of `s` (canonical packed encoding for the
    /// symmetry-reduced models).
    fn key(&self, s: &Self::State) -> Self::Key;

    /// Nominate the index of a singleton ample set among `succs`, or
    /// `None` to expand in full. Only consulted when the engine runs
    /// with `reduce = true`; the model must only nominate transitions
    /// whose class-level independence argument holds (see module
    /// docs).
    fn ample(&self, _s: &Self::State, _succs: &[Succ<Self::State>]) -> Option<usize> {
        None
    }
}

/// Exploration mode of [`explore_system`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Full interleaving expansion (no POR); canonicalization still
    /// applies through [`System::key`].
    Full,
    /// Ample-set partial-order reduction with the visited proviso.
    Reduced,
}

/// Exhaustively explore `sys`, optionally with ample-set reduction.
/// `cap` bounds the number of stored states; when hit, exploration
/// stops and `stats.truncated` is set (the outcome is then a *partial*
/// verdict and must not be reported as proof).
pub fn explore_system<S: System>(sys: &S, mode: Mode, cap: Option<u64>) -> (Outcome, ExploreStats) {
    let mut seen: HashSet<S::Key, FxBuild> = HashSet::default();
    let mut bad: BTreeSet<String> = BTreeSet::new();
    let mut stats = ExploreStats::default();
    let mut terminals = 0u64;

    // One open state on the DFS path: its not-yet-explored successors
    // (consumed back to front so finished ones free their memory) and
    // its key, kept so on_path can be maintained without
    // re-canonicalizing at pop time. An ample-restricted frame holds
    // just the nominated successor, whose key the proviso check
    // already computed (`pending_key`) — canonicalization is the hot
    // path, so it is never recomputed at pop time.
    struct Frame<St, K> {
        pending: Vec<Succ<St>>,
        pending_key: Option<K>,
        key: K,
    }
    let mut path: Vec<Frame<S::State, S::Key>> = Vec::new();
    let mut on_path: HashSet<S::Key, FxBuild> = HashSet::default();

    // Expand a newly visited state into a frame; `None` for terminals.
    // The caller must already have inserted `k` into `on_path`, so a
    // nominated successor that maps onto the state's own orbit (a
    // quotient self-loop) correctly counts as a back-edge.
    let enter = |s: S::State,
                 k: S::Key,
                 on_path: &HashSet<S::Key, FxBuild>,
                 bad: &mut BTreeSet<String>,
                 stats: &mut ExploreStats,
                 terminals: &mut u64|
     -> Option<Frame<S::State, S::Key>> {
        let mut succs = sys.successors(&s, bad);
        if succs.is_empty() {
            *terminals += 1;
            sys.check_terminal(&s, bad);
            return None;
        }
        // Ample-set reduction: keep only the nominated singleton
        // unless the stack proviso (C3) fires on a back-edge.
        if mode == Mode::Reduced {
            if let Some(i) = sys.ample(&s, &succs) {
                debug_assert!(i < succs.len());
                let nk = sys.key(&succs[i].state);
                if on_path.contains(&nk) {
                    stats.proviso_fallbacks += 1;
                } else {
                    let only = succs.swap_remove(i);
                    succs.clear();
                    succs.push(only);
                    stats.ample_states += 1;
                    return Some(Frame {
                        pending: succs,
                        pending_key: Some(nk),
                        key: k,
                    });
                }
            }
        }
        stats.full_states += 1;
        Some(Frame {
            pending: succs,
            pending_key: None,
            key: k,
        })
    };

    let init = sys.initial();
    let ikey = sys.key(&init);
    seen.insert(ikey.clone());
    on_path.insert(ikey.clone());
    match enter(
        init,
        ikey.clone(),
        &on_path,
        &mut bad,
        &mut stats,
        &mut terminals,
    ) {
        Some(f) => {
            path.push(f);
            stats.peak_queue = 1;
        }
        None => {
            on_path.remove(&ikey);
        }
    }

    while let Some(top) = path.last_mut() {
        let Some(succ) = top.pending.pop() else {
            let done = path.pop().expect("path nonempty");
            on_path.remove(&done.key);
            continue;
        };
        stats.transitions += 1;
        let k = match top.pending_key.take() {
            Some(k) => k,
            None => sys.key(&succ.state),
        };
        if seen.contains(&k) {
            continue;
        }
        if cap.is_some_and(|c| seen.len() as u64 >= c) {
            stats.truncated = true;
            continue;
        }
        seen.insert(k.clone());
        on_path.insert(k.clone());
        match enter(
            succ.state,
            k.clone(),
            &on_path,
            &mut bad,
            &mut stats,
            &mut terminals,
        ) {
            Some(f) => {
                path.push(f);
                stats.peak_queue = stats.peak_queue.max(path.len() as u64);
            }
            None => {
                on_path.remove(&k);
            }
        }
    }

    stats.states = seen.len() as u64;
    (
        Outcome {
            states: seen.len() as u64,
            terminals,
            violations: bad.into_iter().collect(),
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy system: `n` independent counters each stepping 0→1→2.
    /// Every interleaving reaches the same terminal; the counters'
    /// steps are genuinely independent, so nominating the first
    /// incomplete counter is a valid persistent singleton.
    struct Counters {
        n: usize,
        reduce_ok: bool,
    }

    impl System for Counters {
        type State = Vec<u8>;
        type Key = Vec<u8>;
        fn initial(&self) -> Vec<u8> {
            vec![0; self.n]
        }
        fn successors(&self, s: &Vec<u8>, _bad: &mut BTreeSet<String>) -> Vec<Succ<Vec<u8>>> {
            (0..self.n)
                .filter(|&i| s[i] < 2)
                .map(|i| {
                    let mut n = s.clone();
                    n[i] += 1;
                    Succ {
                        state: n,
                        class: StepClass::PhaseAdvance,
                    }
                })
                .collect()
        }
        fn check_terminal(&self, s: &Vec<u8>, bad: &mut BTreeSet<String>) {
            if s.iter().any(|&c| c != 2) {
                bad.insert("terminal with an unfinished counter".into());
            }
        }
        fn key(&self, s: &Vec<u8>) -> Vec<u8> {
            s.clone()
        }
        fn ample(&self, _s: &Vec<u8>, succs: &[Succ<Vec<u8>>]) -> Option<usize> {
            if self.reduce_ok { Some(0) } else { None }.filter(|_| !succs.is_empty())
        }
    }

    #[test]
    fn full_explores_the_grid() {
        let sys = Counters {
            n: 3,
            reduce_ok: false,
        };
        let (out, stats) = explore_system(&sys, Mode::Full, None);
        assert_eq!(out.states, 27, "3^3 grid");
        assert_eq!(out.terminals, 1);
        assert!(out.violations.is_empty());
        assert!(!stats.truncated);
    }

    #[test]
    fn reduction_collapses_independent_interleavings() {
        let sys = Counters {
            n: 3,
            reduce_ok: true,
        };
        let (out, stats) = explore_system(&sys, Mode::Reduced, None);
        assert_eq!(out.terminals, 1, "same verdict");
        assert!(out.violations.is_empty());
        assert!(
            out.states < 27,
            "reduced exploration stored {} states",
            out.states
        );
        assert_eq!(out.states, 7, "a single chain through the grid");
        assert!(stats.ample_states > 0);
    }

    #[test]
    fn cap_truncates_and_reports_it() {
        let sys = Counters {
            n: 4,
            reduce_ok: false,
        };
        let (out, stats) = explore_system(&sys, Mode::Full, Some(10));
        assert!(stats.truncated);
        assert!(out.states <= 10, "cap respected, got {}", out.states);
    }
}
