//! Explicit-state model checking of Algorithm 1's distributed
//! work-stealing protocol.
//!
//! Where `crate::interleave` proves the *primitives* (Chase–Lev deque,
//! shared FIFO) safe under arbitrary thread interleavings, this module
//! checks the *protocol built on them*: the paper's §V Algorithm 1 —
//! task mapping, the five-tier steal order with the line 19 re-probe,
//! chunk sizes, migration of flexible tasks, and finish-latch
//! termination — plus the fault transitions of the fault-injection
//! layer (message drop with lease reclaim, duplicate delivery,
//! fail-stop place kill, restart) and, for [`Era::Cluster`] scenarios,
//! the `distws-cluster` recovery protocol: incarnation-epoch fencing,
//! custody polls (`TaskQuery`/`TaskAnswer`), lease settlement lag
//! (`TaskMoved`), and the disown fence for stale-incarnation copies.
//!
//! Exploration runs on the shared engine ([`crate::reduce`]): memoized
//! DFS with optional ample-set partial-order reduction, keyed either
//! on the raw bit-packed state ([`crate::canon::raw_key`], full mode)
//! or on a canonical symmetry-orbit representative
//! ([`crate::canon::canonical_key`], reduced mode). Transitions are
//! generated from the protocol rules exported by
//! `distws_sched::protocol` — the same constants the real policies
//! consume — while an independent set of checks validates each
//! transition against Algorithm 1. The two code paths are deliberately
//! separate so a seeded protocol mutant (a bug injected into the
//! *generator*) is caught by the *checker*, not masked by it.
//!
//! ## Algorithm 1 line ↔ model transition map
//!
//! | Lines | Algorithm 1 | Model transition |
//! |---|---|---|
//! | 1–3 | sensitive task → private deque at home | `deliver` → [`Ctx::map_deliver`], sensitive arm |
//! | 5–8 | flexible task → private iff idle/under-utilized else shared | `deliver` → [`Ctx::map_deliver`], `map_flexible_private` |
//! | 9 | poll own private deque | [`Phase::Idle`] step |
//! | 11 | probe the network | [`Phase::Probe`] step |
//! | 13 | steal 1 from a co-located worker | [`Phase::CoWorker`] step, `LOCAL_STEAL_CHUNK` |
//! | 15 | take from the local shared deque | [`Phase::LocalShared`] step |
//! | 18–29 | distributed sweep over remote places, chunk 2 | [`Phase::Remote`] step, `REMOTE_STEAL_CHUNK` |
//! | 19 | re-probe the network after a failed remote steal | `probed` flag inside [`Phase::Remote`] |
//! | — | finish-latch quiescence | `Busy` finish step + terminal-state check |
//!
//! ## Cluster-era ↔ model transition map (`distws-cluster`)
//!
//! | Wire protocol | Model transition |
//! |---|---|
//! | place death (SIGKILL) | cluster kill: all workers die, located tasks → [`Loc::Vanished`] |
//! | late `TaskMoved` from the dead incarnation | stale ghost (budgeted by `max_dups`), dropped by the disown fence |
//! | coordinator death sweep | `SweepOpen`: a lease under a dead incarnation epoch → [`Lease::InDoubt`] |
//! | `TaskQuery` / `TaskAnswer` | custody poll: each live place answers yes (settle) or no (accumulate) |
//! | all live places disclaim | `Reinject`: the vanished task re-enters in flight toward home-or-0 |
//! | `TaskMoved` settlement lag | `LeaseConfirm`: a migrated task's lease catches up to its holder |
//! | restart (`Hello` with a new epoch) | cluster restart: `epochs[k] += 1`, dead workers rejoin idle |
//!
//! ## Properties proved (on every explored schedule)
//!
//! 1. **No sensitive migration** — a remote steal never takes a
//!    sensitive task off its home place.
//! 2. **Exactly-once** — no task id executes twice (including across
//!    custody reinjection and stale-incarnation copies).
//! 3. **No lost latch decrement** — every terminal state has the finish
//!    latch at exactly zero.
//! 4. **Termination** — every terminal (transition-free) state is fully
//!    quiescent: all tasks `Done`, nothing in flight, no custody left
//!    in doubt. (Schedules are finite-state; livelocks that require an
//!    adversarial scheduler to recur forever — e.g. perpetual steal
//!    ping-pong — exist in any work-stealing system and are excluded
//!    probabilistically, exactly as in the lifeline termination
//!    argument of Saraswat et al.)

use crate::canon;
use crate::reduce::{explore_system, ExploreStats, Mode, Outcome, StepClass, Succ, System};
use distws_sched::protocol as proto;
use std::collections::BTreeSet;

/// A task in a model scenario.
#[derive(Debug, Clone, Copy)]
pub struct ModelTask {
    /// Home place.
    pub home: u8,
    /// Locality-sensitive (never stealable remotely)?
    pub sensitive: bool,
    /// Spawned by this task's completion (`None` = root, in flight at
    /// time zero).
    pub parent: Option<usize>,
}

/// Optional fault transitions, mirroring the fault-injection layer's
/// semantics: dropped migrate payloads are lease-reclaimed at the
/// victim, duplicate deliveries are deduplicated by task id, a
/// fail-stop kill recovers queued tasks elsewhere, and a restart
/// rejoins the place empty-handed. In [`Era::Cluster`] scenarios the
/// kill is a real SIGKILL (running tasks vanish and recovery goes
/// through the custody poll) and `max_dups` budgets late
/// stale-incarnation `TaskMoved` copies instead of plain duplicates.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelFaults {
    /// Migrate payloads the network may drop (lease reclaim each).
    pub max_drops: u8,
    /// Deliveries the network may duplicate (dedup must discard each).
    pub max_dups: u8,
    /// A fail-stop kill of this place may fire at any point (never
    /// place 0, which hosts recovery).
    pub kill_place: Option<u8>,
    /// The killed place may rejoin once.
    pub restart: bool,
}

/// Which protocol generation a scenario models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Era {
    /// The in-process simulator protocol of PRs 1–4: kills respect
    /// task boundaries and recovery re-homes queued tasks directly.
    Sim,
    /// The `distws-cluster` protocol of PR 7: incarnation epochs,
    /// custody polls, lease settlement lag and disown fences.
    Cluster,
}

/// Stable lowercase era name (stats table, TLA+ header).
pub fn era_name(era: Era) -> &'static str {
    match era {
        Era::Sim => "sim",
        Era::Cluster => "cluster",
    }
}

/// One model configuration to explore.
#[derive(Debug, Clone)]
pub struct ProtocolScenario {
    /// Scenario name (stable; used by `repro check --scenario`).
    pub name: &'static str,
    /// Places in the cluster.
    pub places: u8,
    /// Workers per place.
    pub workers_per_place: u8,
    /// The task set (ids are indices).
    pub tasks: Vec<ModelTask>,
    /// Fault transitions to explore.
    pub faults: ModelFaults,
    /// Protocol generation.
    pub era: Era,
    /// Whether full (unreduced) exploration is feasible in CI budgets.
    /// `false` marks the scale scenarios that exist to demonstrate the
    /// reductions; `repro check protocol --full`/`--compare` skip them
    /// unless capped.
    pub full_ok: bool,
}

/// A protocol bug seeded into the transition *generator*. Every mutant
/// must be caught by the independent transition *checker* — that
/// detection power is what the mutation tests pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolMutant {
    /// Skip the line 19 network re-probe after a failed remote steal.
    SkipReprobe,
    /// Let remote steals take tasks from private deques — including
    /// sensitive tasks.
    StealSensitiveRemotely,
    /// Steal 2 tasks from a co-located worker (line 13 chunk is 1).
    LocalChunkTwo,
    /// Map flexible tasks to private deques unconditionally (ignore
    /// the lines 5–8 utilization predicate).
    MapFlexiblePrivateAlways,
    /// Skip the finish-latch decrement when a migrated task completes.
    SkipLatchDecrement,
    /// Fail-stop recovery forgets the failed place's queued tasks
    /// instead of re-homing them.
    DropRecoveredTasks,
    /// Duplicate deliveries are re-mapped instead of discarded by the
    /// task-id dedup.
    DupDeliveryRemaps,
    /// Cluster era: a late `TaskMoved` copy from a dead incarnation is
    /// re-mapped instead of being dropped by the disown fence.
    SkipDisownFence,
    /// Cluster era: the death sweep accepts a lease held under a
    /// stale incarnation epoch instead of opening a custody poll.
    AcceptStaleEpochLease,
    /// Livelock: the line 19 re-probe loop never backs off — a worker
    /// whose sweep comes up empty starts a new round instead of
    /// parking dormant, spinning forever.
    ReprobeNoBackoff,
    /// Livelock: the remote-sweep retry budget is ignored — a failed
    /// visit does not clear the victim's `untried` bit, so the sweep
    /// revisits the same empty place forever.
    RetryBudgetIgnored,
    /// Livelock: the lifeline wakeup is lost — a delivery maps the
    /// task but never wakes the dormant workers at the place, so the
    /// task parks silently in a sleeping worker's private deque.
    LostLifelineWakeup,
    /// Livelock: a restarted place re-parks recovered tasks forever —
    /// a delivery of a task at the rejoined incarnation puts it back
    /// in flight instead of mapping it.
    RestartReparkLoop,
}

impl ProtocolMutant {
    /// All seeded mutants, in catch-test order. The last four are
    /// livelock mutants: they violate no safety invariant reachable by
    /// the terminal checks alone and must be caught by the liveness
    /// layer as fair accepting cycles ([`crate::liveness`]).
    pub const ALL: [ProtocolMutant; 13] = [
        ProtocolMutant::SkipReprobe,
        ProtocolMutant::StealSensitiveRemotely,
        ProtocolMutant::LocalChunkTwo,
        ProtocolMutant::MapFlexiblePrivateAlways,
        ProtocolMutant::SkipLatchDecrement,
        ProtocolMutant::DropRecoveredTasks,
        ProtocolMutant::DupDeliveryRemaps,
        ProtocolMutant::SkipDisownFence,
        ProtocolMutant::AcceptStaleEpochLease,
        ProtocolMutant::ReprobeNoBackoff,
        ProtocolMutant::RetryBudgetIgnored,
        ProtocolMutant::LostLifelineWakeup,
        ProtocolMutant::RestartReparkLoop,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolMutant::SkipReprobe => "skip-reprobe",
            ProtocolMutant::StealSensitiveRemotely => "steal-sensitive-remotely",
            ProtocolMutant::LocalChunkTwo => "local-chunk-two",
            ProtocolMutant::MapFlexiblePrivateAlways => "map-flexible-private-always",
            ProtocolMutant::SkipLatchDecrement => "skip-latch-decrement",
            ProtocolMutant::DropRecoveredTasks => "drop-recovered-tasks",
            ProtocolMutant::DupDeliveryRemaps => "dup-delivery-remaps",
            ProtocolMutant::SkipDisownFence => "skip-disown-fence",
            ProtocolMutant::AcceptStaleEpochLease => "accept-stale-epoch-lease",
            ProtocolMutant::ReprobeNoBackoff => "reprobe-no-backoff",
            ProtocolMutant::RetryBudgetIgnored => "retry-budget-ignored",
            ProtocolMutant::LostLifelineWakeup => "lost-lifeline-wakeup",
            ProtocolMutant::RestartReparkLoop => "restart-repark-loop",
        }
    }

    /// Is this a seeded *livelock* (progress) bug rather than a safety
    /// bug? Livelock mutants are caught by the nested-DFS liveness
    /// layer as fair accepting cycles, not by the safety checker.
    pub fn is_livelock(self) -> bool {
        matches!(
            self,
            ProtocolMutant::ReprobeNoBackoff
                | ProtocolMutant::RetryBudgetIgnored
                | ProtocolMutant::LostLifelineWakeup
                | ProtocolMutant::RestartReparkLoop
        )
    }

    /// The scenario whose exploration must catch this mutant.
    pub fn catch_scenario(self) -> &'static str {
        match self {
            ProtocolMutant::SkipReprobe => "reprobe_sweep",
            ProtocolMutant::StealSensitiveRemotely => "sensitive_pinning",
            ProtocolMutant::LocalChunkTwo => "coworker_chunk",
            ProtocolMutant::MapFlexiblePrivateAlways => "saturation_mapping",
            ProtocolMutant::SkipLatchDecrement => "saturation_mapping",
            ProtocolMutant::DropRecoveredTasks => "kill_recover",
            ProtocolMutant::DupDeliveryRemaps => "dup_delivery",
            ProtocolMutant::SkipDisownFence => "cluster_reclaim",
            ProtocolMutant::AcceptStaleEpochLease => "cluster_epoch",
            ProtocolMutant::ReprobeNoBackoff => "reprobe_sweep",
            ProtocolMutant::RetryBudgetIgnored => "sensitive_pinning",
            ProtocolMutant::LostLifelineWakeup => "spawn_tree",
            ProtocolMutant::RestartReparkLoop => "kill_restart",
        }
    }

    /// The property expected to catch this mutant: `"safety"` for the
    /// invariant mutants, or the liveness property name (see
    /// [`crate::liveness::Property`]) for the livelock mutants. The
    /// mutant runner reports the *actual* catching properties and the
    /// mutation tests pin this expectation against them.
    pub fn catch_property(self) -> &'static str {
        match self {
            ProtocolMutant::ReprobeNoBackoff | ProtocolMutant::RetryBudgetIgnored => {
                "steal-progress"
            }
            ProtocolMutant::LostLifelineWakeup => "lifeline-wakeup",
            ProtocolMutant::RestartReparkLoop => "eventual-execution",
            _ => "safety",
        }
    }
}

/// Where a task is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Loc {
    /// Parent has not completed yet.
    NotSpawned,
    /// On the network, destined for place `to`.
    InFlight { to: u8 },
    /// In worker `w`'s private deque.
    Private { w: u8 },
    /// In place `p`'s shared deque.
    Shared { p: u8 },
    /// Executing on worker `w`.
    Running { w: u8 },
    /// Completed.
    Done,
    /// Forgotten by buggy fail-stop recovery (mutants only).
    Lost,
    /// Cluster era: was located at an incarnation that died; only the
    /// custody poll may bring it back.
    Vanished,
}

/// Cluster-era custody of a task, as the coordinator sees it. The
/// coordinator's view deliberately *lags* the ground truth
/// ([`Loc`]) — settlement is a separate `LeaseConfirm` transition,
/// which is exactly the window the PR 7 races live in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Lease {
    /// No custody claim (sim era, in flight, or done).
    None,
    /// Place `p` holds the task under incarnation epoch `e`.
    Held { p: u8, e: u8 },
    /// A death sweep opened a custody poll; `answered` is the bitmask
    /// of places that have disclaimed custody so far.
    InDoubt { answered: u8 },
}

/// A worker's position inside the Algorithm 1 steal automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Phase {
    /// About to run line 9 (poll own private deque).
    Idle,
    /// Line 11: probe the network.
    Probe,
    /// Line 13: steal from a co-located worker.
    CoWorker,
    /// Line 15: take from the local shared deque.
    LocalShared,
    /// Lines 18–29: the distributed sweep. `untried` is the bitmask of
    /// places not yet visited this round; `probed` records whether the
    /// network has been probed since the last failed remote attempt
    /// (line 19 bookkeeping — the checker flags an attempt with
    /// `probed == false`).
    Remote { untried: u8, probed: bool },
    /// Executing `task`.
    Busy { task: u8 },
    /// Parked (woken by newly mapped local work).
    Dormant,
    /// Halted by a place failure.
    Dead,
}

/// A fixed-capacity inline vector: derefs to a slice of its live
/// prefix, compares/hashes by that prefix, and clones by `memcpy`.
/// The model state is cloned once per generated transition — tens of
/// millions of times per scale-tier run — and inline storage removes
/// the seven heap round-trips a `Vec`-backed state paid per clone.
#[derive(Clone, Copy)]
pub(crate) struct FixedVec<T: Copy, const N: usize> {
    buf: [T; N],
    len: u8,
}

impl<T: Copy, const N: usize> FixedVec<T, N> {
    pub(crate) fn filled(v: T, len: usize) -> FixedVec<T, N> {
        assert!(len <= N, "FixedVec capacity exceeded");
        FixedVec {
            buf: [v; N],
            len: len as u8,
        }
    }
}

impl<T: Copy, const N: usize> From<Vec<T>> for FixedVec<T, N> {
    fn from(v: Vec<T>) -> FixedVec<T, N> {
        assert!(!v.is_empty() && v.len() <= N, "FixedVec capacity");
        let mut buf = [v[0]; N];
        buf[..v.len()].copy_from_slice(&v);
        FixedVec {
            buf,
            len: v.len() as u8,
        }
    }
}

impl<T: Copy, const N: usize> std::ops::Deref for FixedVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.buf[..self.len as usize]
    }
}

impl<T: Copy, const N: usize> std::ops::DerefMut for FixedVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.buf[..self.len as usize]
    }
}

impl<'a, T: Copy, const N: usize> IntoIterator for &'a FixedVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<T: Copy + PartialEq, const N: usize> PartialEq for FixedVec<T, N> {
    fn eq(&self, other: &FixedVec<T, N>) -> bool {
        self[..] == other[..]
    }
}

impl<T: Copy + Eq, const N: usize> Eq for FixedVec<T, N> {}

impl<T: Copy + std::hash::Hash, const N: usize> std::hash::Hash for FixedVec<T, N> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl<T: Copy + std::fmt::Debug, const N: usize> std::fmt::Debug for FixedVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self[..].fmt(f)
    }
}

/// One global model state. Task-indexed arrays are bounded by the
/// canonicalizer's 16-task scratch limit; place/worker arrays by the
/// packed key's 8-place / 16-worker encoding widths.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct State {
    pub(crate) tasks: FixedVec<Loc, 16>,
    /// Executions per task (exactly-once ⇒ never exceeds 1).
    pub(crate) exec: FixedVec<u8, 16>,
    /// Cluster era: the coordinator's custody view per task.
    pub(crate) lease: FixedVec<Lease, 16>,
    /// Tasks that ever migrated off their home place (bitmask).
    pub(crate) migrated: u16,
    /// Tasks with a duplicate delivery still in flight (bitmask).
    pub(crate) dup_ghost: u16,
    /// Ghosts that are stale-incarnation `TaskMoved` copies (bitmask;
    /// subset of `dup_ghost`): the disown fence must drop them.
    pub(crate) stale_ghost: u16,
    /// Ghost destination per task (255 = none).
    pub(crate) dup_dest: FixedVec<u8, 16>,
    pub(crate) latch: i16,
    pub(crate) phases: FixedVec<Phase, 16>,
    pub(crate) alive: FixedVec<bool, 8>,
    /// Cluster era: per-place incarnation epoch (bumped on restart).
    pub(crate) epochs: FixedVec<u8, 8>,
    pub(crate) drops_left: u8,
    pub(crate) dups_left: u8,
    pub(crate) killed: bool,
    pub(crate) restarted: bool,
}

/// The process a transition belongs to, for the weak-fairness
/// acceptance conditions of the liveness layer ([`crate::liveness`]).
/// Weak fairness is imposed per agent: a continuously enabled agent
/// must eventually step. Fault injections are adversarial — the
/// environment is never *obliged* to kill or restart a place — so
/// [`Agent::Env`] transitions carry no fairness obligation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Agent {
    /// Message delivery, duplicate arrival, and the cluster
    /// coordinator (sweep / custody poll / reinject).
    Net,
    /// Worker `w` (global index) walking the Algorithm 1 automaton.
    Worker(u8),
    /// Adversarial fault scheduler: kill, restart, stale-copy races.
    Env,
}

/// Compact label for one generated transition — the readable vocabulary
/// lasso counterexamples are printed in. Tags are data, not strings:
/// the successor hot path must not allocate per transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepTag {
    /// Network delivers task `t` at place `to` (Algorithm 1 lines 1–8).
    Deliver { t: u8, to: u8 },
    /// Network duplicates the delivery of `t` (ghost seeded).
    DupDeliver { t: u8, to: u8 },
    /// Arrival at a dead place re-routes `t` toward place 0.
    Reroute { t: u8 },
    /// A duplicate / stale `TaskMoved` copy of `t` surfaces.
    GhostArrive { t: u8 },
    /// Fail-stop kill of place `p`.
    Kill { p: u8 },
    /// Kill of place `p` racing a late `TaskMoved` copy of task `t`.
    KillStaleCopy { p: u8, t: u8 },
    /// Place `p` rejoins (new incarnation in the cluster era).
    Restart { p: u8 },
    /// Death sweep puts task `t`'s lease in doubt (custody poll opens).
    LeaseDoubt { t: u8 },
    /// A `TaskMoved` note settles `t`'s lease at its holder.
    LeaseConfirm { t: u8 },
    /// The named custodian disclaims `t`; the custody poll opens.
    Disclaim { t: u8 },
    /// Place `q` answers the custody poll for task `t`.
    PollAnswer { t: u8, q: u8 },
    /// Every live place disclaimed: `t` reinjected toward home-or-0.
    Reinject { t: u8 },
    /// Worker `w` polls its private deque empty (line 9 miss).
    PollEmpty { w: u8 },
    /// Worker `w` pops task `t` from its private deque (line 9 hit).
    PollRun { w: u8, t: u8 },
    /// Worker `w` probes the network (line 11).
    ProbeAdvance { w: u8 },
    /// Worker `w` steals task `t` from co-located worker `v` (line 13).
    CoSteal { w: u8, v: u8, t: u8 },
    /// Worker `w` finds no co-located victim (line 13 miss).
    CoStealFail { w: u8 },
    /// Worker `w` takes task `t` from the local shared deque (line 15).
    TakeShared { w: u8, t: u8 },
    /// Worker `w` finds the local shared deque empty (line 15 miss).
    SharedEmpty { w: u8 },
    /// Worker `w` parks dormant: sweep exhausted, no visible work.
    Park { w: u8 },
    /// Worker `w` restarts its steal round: sweep exhausted but local
    /// work became visible mid-round.
    NewRound { w: u8 },
    /// Worker `w`'s remote steal at place `q` fails (lines 22–27 miss).
    VisitFail { w: u8, q: u8 },
    /// Worker `w` steals task `t` (chunk head) from place `q`.
    RemoteSteal { w: u8, q: u8, t: u8 },
    /// Worker `w`'s steal from place `q` loses its migrate payload.
    StealDropped { w: u8, q: u8 },
    /// Worker `w` completes task `t` (finish-latch decrement, spawns).
    Complete { w: u8, t: u8 },
    /// Stutter self-loop added at states with no fair transition
    /// (terminal or environment-only): the standard stutter extension
    /// of maximal finite runs, so a quiescent deadlock with work left
    /// behind shows up as a fair accepting cycle, not a silent dead
    /// end.
    Stutter,
}

impl StepTag {
    /// The agent obliged (or not, for [`Agent::Env`]) by weak fairness
    /// to take this transition.
    pub(crate) fn agent(self) -> Agent {
        use StepTag::*;
        match self {
            Deliver { .. } | DupDeliver { .. } | Reroute { .. } | GhostArrive { .. } => Agent::Net,
            LeaseDoubt { .. } | LeaseConfirm { .. } | Disclaim { .. } => Agent::Net,
            PollAnswer { .. } | Reinject { .. } => Agent::Net,
            Kill { .. } | KillStaleCopy { .. } | Restart { .. } | Stutter => Agent::Env,
            PollEmpty { w } | PollRun { w, .. } | ProbeAdvance { w } => Agent::Worker(w),
            CoSteal { w, .. } | CoStealFail { w } => Agent::Worker(w),
            TakeShared { w, .. } | SharedEmpty { w } => Agent::Worker(w),
            Park { w } | NewRound { w } => Agent::Worker(w),
            VisitFail { w, .. } | RemoteSteal { w, .. } | StealDropped { w, .. } => {
                Agent::Worker(w)
            }
            Complete { w, .. } => Agent::Worker(w),
        }
    }

    /// Is this a futile steal-retry step? The `steal-progress` property
    /// rejects fair cycles that take retry steps forever without any
    /// intervening acquisition or completion.
    pub(crate) fn is_retry(self) -> bool {
        matches!(
            self,
            StepTag::PollEmpty { .. }
                | StepTag::ProbeAdvance { .. }
                | StepTag::CoStealFail { .. }
                | StepTag::SharedEmpty { .. }
                | StepTag::NewRound { .. }
                | StepTag::VisitFail { .. }
        )
    }

    /// Readable rendering for lasso counterexamples.
    pub(crate) fn render(self) -> String {
        use StepTag::*;
        match self {
            Deliver { t, to } => format!("deliver task {t} at place {to}"),
            DupDeliver { t, to } => {
                format!("network duplicates delivery of task {t} to place {to}")
            }
            Reroute { t } => format!("re-route task {t} (dead destination) toward place 0"),
            GhostArrive { t } => format!("late duplicate copy of task {t} arrives"),
            Kill { p } => format!("kill place {p}"),
            KillStaleCopy { p, t } => {
                format!("kill place {p} with a stale TaskMoved copy of task {t} in flight")
            }
            Restart { p } => format!("restart place {p}"),
            LeaseDoubt { t } => format!("coordinator: stale lease on task {t} put in doubt"),
            LeaseConfirm { t } => format!("coordinator: lease on task {t} settles at its holder"),
            Disclaim { t } => format!("coordinator: custodian disclaims task {t}"),
            PollAnswer { t, q } => format!("place {q} answers the custody poll for task {t}"),
            Reinject { t } => format!("coordinator: reinject task {t}"),
            PollEmpty { w } => format!("worker {w}: private deque empty (line 9)"),
            PollRun { w, t } => format!("worker {w}: run task {t} from its private deque"),
            ProbeAdvance { w } => format!("worker {w}: probe the network (line 11)"),
            CoSteal { w, v, t } => format!("worker {w}: steal task {t} from co-worker {v}"),
            CoStealFail { w } => format!("worker {w}: no co-located victim (line 13)"),
            TakeShared { w, t } => format!("worker {w}: take task {t} from the shared deque"),
            SharedEmpty { w } => format!("worker {w}: local shared deque empty (line 15)"),
            Park { w } => format!("worker {w}: park dormant"),
            NewRound { w } => format!("worker {w}: sweep exhausted, new steal round"),
            VisitFail { w, q } => format!("worker {w}: failed remote steal at place {q}"),
            RemoteSteal { w, q, t } => format!("worker {w}: remote-steal task {t} from place {q}"),
            StealDropped { w, q } => format!("worker {w}: migrate payload from place {q} dropped"),
            Complete { w, t } => format!("worker {w}: complete task {t}"),
            Stutter => "(stutter — no fair transition enabled)".to_string(),
        }
    }
}

/// A labeled successor: the state plus the reduction class and the
/// transition tag the liveness layer needs. The safety path strips the
/// tag back off via [`Ctx::successors`].
pub(crate) struct LSucc {
    pub(crate) state: State,
    pub(crate) class: StepClass,
    pub(crate) tag: StepTag,
}

/// Scenario + mutant context shared by the transition generator.
pub(crate) struct Ctx<'a> {
    pub(crate) sc: &'a ProtocolScenario,
    pub(crate) mutant: Option<ProtocolMutant>,
}

/// Fixed-capacity task-index list for the successor hot path. The
/// generator builds several of these per worker per state; collecting
/// them into heap `Vec`s was a measurable slice of exploration wall
/// time at the scale tier. Capacity matches the canonicalizer's
/// 16-task scratch bound.
#[derive(Clone, Copy)]
struct TaskBuf {
    buf: [u8; 16],
    len: usize,
}

impl TaskBuf {
    fn new() -> TaskBuf {
        TaskBuf {
            buf: [0; 16],
            len: 0,
        }
    }
    fn push(&mut self, t: usize) {
        self.buf[self.len] = t as u8;
        self.len += 1;
    }
    fn is_empty(&self) -> bool {
        self.len == 0
    }
    fn len(&self) -> usize {
        self.len
    }
    fn truncate(&mut self, n: usize) {
        self.len = self.len.min(n);
    }
    fn get(&self, i: usize) -> usize {
        self.buf[i] as usize
    }
    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.buf[..self.len].iter().map(|&t| t as usize)
    }
}

impl<'a> Ctx<'a> {
    fn wpp(&self) -> usize {
        self.sc.workers_per_place as usize
    }

    pub(crate) fn workers(&self) -> usize {
        self.sc.places as usize * self.wpp()
    }

    pub(crate) fn place_of(&self, w: usize) -> u8 {
        (w / self.wpp()) as u8
    }

    fn is(&self, m: ProtocolMutant) -> bool {
        self.mutant == Some(m)
    }

    fn cluster(&self) -> bool {
        self.sc.era == Era::Cluster
    }

    fn busy_at(&self, s: &State, p: u8) -> u32 {
        (0..self.workers())
            .filter(|&w| self.place_of(w) == p && matches!(s.phases[w], Phase::Busy { .. }))
            .count() as u32
    }

    /// The place currently holding `t`, if it is queued or running.
    fn cur_place(&self, s: &State, t: usize) -> Option<u8> {
        match s.tasks[t] {
            Loc::Private { w } | Loc::Running { w } => Some(self.place_of(w as usize)),
            Loc::Shared { p } => Some(p),
            _ => None,
        }
    }

    /// Is a lease held by place `p` under epoch `e` fenced off by
    /// incarnation death? Uses the shared wire predicate
    /// (`distws_sched::protocol::lease_is_stale`) — the same rule
    /// `distws-cluster`'s coordinator sweep applies.
    fn lease_stale(&self, s: &State, p: u8, e: u8) -> bool {
        let cur = s.epochs[p as usize] as u32;
        if s.alive[p as usize] {
            cur > 0 && proto::lease_is_stale(e as u32, cur - 1)
        } else {
            proto::lease_is_stale(e as u32, cur)
        }
    }

    /// Work a parking worker would see: its own private deque or the
    /// local shared deque (the engine's acquire is atomic in virtual
    /// time, so a worker never parks past visible local work).
    fn work_visible(&self, s: &State, w: usize) -> bool {
        let p = self.place_of(w);
        s.tasks.iter().any(|l| {
            matches!(l, Loc::Private { w: pw } if *pw as usize == w)
                || matches!(l, Loc::Shared { p: sp } if *sp == p)
        })
    }

    /// Liveness atomic proposition (`eventual-execution`): a task that
    /// has not reached [`Loc::Done`]. [`Loc::Lost`] is excluded — a
    /// lost task is a *safety* violation (flagged at terminals), not a
    /// progress obligation the scheduler could still discharge.
    pub(crate) fn unfinished_task(&self, s: &State) -> Option<usize> {
        s.tasks
            .iter()
            .position(|l| !matches!(l, Loc::Done | Loc::Lost))
    }

    /// Liveness atomic proposition (`lifeline-wakeup`): a dormant
    /// worker with a pending lifeline push — work already mapped at
    /// its place (its own private deque or the place's shared pool)
    /// or a delivery still in flight toward its place.
    pub(crate) fn lost_wakeup(&self, s: &State) -> Option<usize> {
        (0..self.workers()).find(|&w| {
            s.phases[w] == Phase::Dormant && {
                let p = self.place_of(w);
                s.tasks.iter().any(|l| match *l {
                    Loc::Private { w: pw } => pw as usize == w,
                    Loc::Shared { p: sp } => sp == p,
                    Loc::InFlight { to } => to == p,
                    _ => false,
                })
            }
        })
    }

    /// Algorithm 1 lines 1–8: map a delivered task at place `x`. The
    /// checker recomputes the lines 5–8 predicate independently and
    /// flags any divergence (catches `MapFlexiblePrivateAlways`). In
    /// the cluster era the mapping also records the custody lease
    /// under the place's current incarnation epoch.
    fn map_deliver(&self, s: &mut State, t: usize, x: u8, bad: &mut BTreeSet<String>) {
        let sensitive = self.sc.tasks[t].sensitive;
        let to_private = if sensitive {
            true // line 3
        } else {
            let busy = self.busy_at(s, x);
            let active = busy > 0;
            let under = busy < self.sc.workers_per_place as u32;
            let faithful = proto::map_flexible_private(active, under);
            let chosen = if self.is(ProtocolMutant::MapFlexiblePrivateAlways) {
                true
            } else {
                faithful
            };
            if chosen != faithful {
                bad.insert(format!(
                    "task {t}: flexible task mapped to a {} deque at place {x} against \
                     Algorithm 1 lines 5-8 (place {})",
                    if chosen { "private" } else { "shared" },
                    if faithful {
                        "is idle/under-utilized"
                    } else {
                        "is saturated"
                    },
                ));
            }
            chosen
        };
        if to_private {
            // The engine prefers a parked/idle worker; first non-busy
            // worker at x, else worker 0 of x.
            let base = x as usize * self.wpp();
            let target = (base..base + self.wpp())
                .find(|&w| !matches!(s.phases[w], Phase::Busy { .. } | Phase::Dead))
                .unwrap_or(base);
            s.tasks[t] = Loc::Private { w: target as u8 };
            // The lifeline push: mapping work at a place wakes its
            // dormant workers. The lost-wakeup livelock mutant drops
            // exactly this signal, parking the task in a sleeping
            // worker's deque forever.
            if s.phases[target] == Phase::Dormant && !self.is(ProtocolMutant::LostLifelineWakeup) {
                s.phases[target] = Phase::Idle;
            }
        } else {
            s.tasks[t] = Loc::Shared { p: x };
            let base = x as usize * self.wpp();
            if !self.is(ProtocolMutant::LostLifelineWakeup) {
                for w in base..base + self.wpp() {
                    if s.phases[w] == Phase::Dormant {
                        s.phases[w] = Phase::Idle;
                    }
                }
            }
        }
        if self.cluster() {
            s.lease[t] = Lease::Held {
                p: x,
                e: s.epochs[x as usize],
            };
        }
    }

    /// A worker begins executing `t`.
    fn start(&self, s: &mut State, w: usize, t: usize) {
        s.tasks[t] = Loc::Running { w: w as u8 };
        s.phases[w] = Phase::Busy { task: t as u8 };
    }

    /// All successor states of `s`, labeled with the transition tag and
    /// fairness agent, recording property violations into `bad` as
    /// transitions are generated. The safety path consumes this through
    /// [`Ctx::successors`]; the liveness layer needs the labels for its
    /// acceptance conditions and lasso counterexamples.
    pub(crate) fn successors_labeled(&self, s: &State, bad: &mut BTreeSet<String>) -> Vec<LSucc> {
        let mut out: Vec<LSucc> = Vec::new();
        let push = |out: &mut Vec<LSucc>, n: State, class: StepClass, tag: StepTag| {
            out.push(LSucc {
                state: n,
                class,
                tag,
            });
        };

        // --- Network delivery (the engine's Arrive event) -----------
        for t in 0..s.tasks.len() {
            let Loc::InFlight { to } = s.tasks[t] else {
                continue;
            };
            if !s.alive[to as usize] {
                // Arrival at a dead place: recovery re-routes to place 0.
                let mut n = s.clone();
                n.tasks[t] = Loc::InFlight { to: 0 };
                push(
                    &mut out,
                    n,
                    StepClass::Other,
                    StepTag::Reroute { t: t as u8 },
                );
                continue;
            }
            if self.is(ProtocolMutant::RestartReparkLoop)
                && s.restarted
                && Some(to) == self.sc.faults.kill_place
            {
                // Livelock mutant: the rejoined incarnation re-parks
                // every recovered task instead of mapping it — the
                // delivery puts the task straight back in flight, a
                // self-loop the liveness layer must flag as a fair
                // non-progress cycle.
                push(
                    &mut out,
                    s.clone(),
                    StepClass::Other,
                    StepTag::Deliver { t: t as u8, to },
                );
                continue;
            }
            let mut n = s.clone();
            self.map_deliver(&mut n, t, to, bad);
            push(
                &mut out,
                n,
                StepClass::Other,
                StepTag::Deliver { t: t as u8, to },
            );
            if !self.cluster() && s.dups_left > 0 && s.dup_ghost & (1 << t) == 0 {
                // The network also duplicated this delivery.
                let mut n = s.clone();
                self.map_deliver(&mut n, t, to, bad);
                n.dup_ghost |= 1 << t;
                n.dup_dest[t] = to;
                n.dups_left -= 1;
                push(
                    &mut out,
                    n,
                    StepClass::Other,
                    StepTag::DupDeliver { t: t as u8, to },
                );
            }
        }

        // --- Duplicate / stale-copy arrival -------------------------
        for t in 0..s.tasks.len() {
            if s.dup_ghost & (1 << t) == 0 {
                continue;
            }
            let mut n = s.clone();
            n.dup_ghost &= !(1 << t);
            let stale = s.stale_ghost & (1 << t) != 0;
            n.stale_ghost &= !(1 << t);
            let dest = n.dup_dest[t];
            n.dup_dest[t] = 255;
            if stale {
                // A `TaskMoved` copy leased under a dead incarnation
                // epoch arrives late. Faithful receivers drop it at
                // the disown fence; the mutant re-maps it.
                if self.is(ProtocolMutant::SkipDisownFence) && n.alive[dest as usize] {
                    bad.insert(format!(
                        "task {t}: stale-incarnation copy at place {dest} re-mapped; the \
                         disown fence must drop copies leased under a dead epoch"
                    ));
                    self.map_deliver(&mut n, t, dest, bad);
                }
            } else if self.is(ProtocolMutant::DupDeliveryRemaps) && n.alive[dest as usize] {
                // Buggy dedup: the second copy is mapped again.
                self.map_deliver(&mut n, t, dest, bad);
            }
            // Faithful: the place's task table already saw this id —
            // the duplicate is discarded.
            push(
                &mut out,
                n,
                StepClass::Other,
                StepTag::GhostArrive { t: t as u8 },
            );
        }

        // --- Fail-stop kill and restart -----------------------------
        if let Some(k) = self.sc.faults.kill_place {
            if !s.killed {
                match self.sc.era {
                    Era::Sim => {
                        let mut n = s.clone();
                        n.killed = true;
                        n.alive[k as usize] = false;
                        for w in 0..self.workers() {
                            if self.place_of(w) == k && !matches!(n.phases[w], Phase::Busy { .. }) {
                                n.phases[w] = Phase::Dead;
                            }
                        }
                        // Recover the failed place's queued tasks (running
                        // tasks finish at the next task boundary).
                        for t in 0..n.tasks.len() {
                            let queued_here = match n.tasks[t] {
                                Loc::Shared { p } => p == k,
                                Loc::Private { w } => self.place_of(w as usize) == k,
                                _ => false,
                            };
                            if queued_here {
                                if self.is(ProtocolMutant::DropRecoveredTasks) {
                                    n.tasks[t] = Loc::Lost;
                                } else {
                                    let home = self.sc.tasks[t].home;
                                    let dest = if home != k { home } else { 0 };
                                    n.tasks[t] = Loc::InFlight { to: dest };
                                }
                            }
                        }
                        push(&mut out, n, StepClass::Other, StepTag::Kill { p: k });
                    }
                    Era::Cluster => {
                        // A real SIGKILL: every worker dies mid-step and
                        // every task located at the incarnation vanishes.
                        // Recovery is the coordinator's job (sweep →
                        // custody poll → reinject), not the kill's.
                        let mut base = s.clone();
                        base.killed = true;
                        base.alive[k as usize] = false;
                        for w in 0..self.workers() {
                            if self.place_of(w) == k {
                                base.phases[w] = Phase::Dead;
                            }
                        }
                        let mut vanished: Vec<usize> = Vec::new();
                        for t in 0..base.tasks.len() {
                            let here = match base.tasks[t] {
                                Loc::Shared { p } => p == k,
                                Loc::Private { w } | Loc::Running { w } => {
                                    self.place_of(w as usize) == k
                                }
                                _ => false,
                            };
                            if here {
                                base.tasks[t] = Loc::Vanished;
                                vanished.push(t);
                            }
                        }
                        if s.dups_left > 0 {
                            // The dying incarnation may have a TaskMoved
                            // copy of a vanished task still in flight —
                            // the disown-fence race. It will surface at
                            // the lowest live place.
                            let dest = (0..self.sc.places).find(|&q| q != k && s.alive[q as usize]);
                            if let Some(dest) = dest {
                                for &t in &vanished {
                                    let mut n = base.clone();
                                    n.dup_ghost |= 1 << t;
                                    n.stale_ghost |= 1 << t;
                                    n.dup_dest[t] = dest;
                                    n.dups_left -= 1;
                                    push(
                                        &mut out,
                                        n,
                                        StepClass::Other,
                                        StepTag::KillStaleCopy { p: k, t: t as u8 },
                                    );
                                }
                            }
                        }
                        push(&mut out, base, StepClass::Other, StepTag::Kill { p: k });
                    }
                }
            } else if self.sc.faults.restart && !s.restarted {
                let mut n = s.clone();
                n.restarted = true;
                n.alive[k as usize] = true;
                if self.cluster() {
                    // The rejoining place is a *new incarnation*: the
                    // epoch bump is what fences stale leases and stale
                    // TaskMoved copies.
                    n.epochs[k as usize] = n.epochs[k as usize].saturating_add(1);
                }
                for w in 0..self.workers() {
                    if self.place_of(w) == k && n.phases[w] == Phase::Dead {
                        n.phases[w] = Phase::Idle;
                    }
                }
                push(&mut out, n, StepClass::Other, StepTag::Restart { p: k });
            }
        }

        // --- Cluster coordinator: sweep, custody poll, settlement ---
        if self.cluster() {
            let alive_mask: u8 = (0..self.sc.places)
                .filter(|&q| s.alive[q as usize])
                .fold(0, |m, q| m | (1 << q));
            for t in 0..s.tasks.len() {
                match s.lease[t] {
                    Lease::None => {}
                    Lease::Held { p, e } => {
                        if self.lease_stale(s, p, e) {
                            // Death sweep: custody claimed by a dead
                            // incarnation is in doubt. The checker
                            // recomputes the fencing predicate; the
                            // stale-epoch mutant accepts the lease.
                            let mut n = s.clone();
                            if self.is(ProtocolMutant::AcceptStaleEpochLease) {
                                bad.insert(format!(
                                    "task {t}: stale-epoch lease (place {p} epoch {e}) accepted \
                                     as live custody; incarnation fencing requires a custody poll"
                                ));
                                n.lease[t] = Lease::Held {
                                    p,
                                    e: n.epochs[p as usize],
                                };
                            } else {
                                n.lease[t] = Lease::InDoubt { answered: 0 };
                            }
                            if n != *s {
                                push(
                                    &mut out,
                                    n,
                                    StepClass::Other,
                                    StepTag::LeaseDoubt { t: t as u8 },
                                );
                            }
                        } else if let Some(q) = self.cur_place(s, t) {
                            if q != p {
                                // LeaseConfirm: the TaskMoved note from a
                                // migration catches up with the
                                // coordinator.
                                let mut n = s.clone();
                                n.lease[t] = Lease::Held {
                                    p: q,
                                    e: n.epochs[q as usize],
                                };
                                push(
                                    &mut out,
                                    n,
                                    StepClass::Other,
                                    StepTag::LeaseConfirm { t: t as u8 },
                                );
                            }
                        } else if s.tasks[t] == Loc::Vanished {
                            // The lease names a live incarnation that does
                            // not actually hold the task: it migrated away
                            // and vanished with the dead place before the
                            // TaskMoved note settled. The named custodian
                            // disclaims, which opens the custody poll.
                            let mut n = s.clone();
                            n.lease[t] = Lease::InDoubt {
                                answered: if s.alive[p as usize] { 1 << p } else { 0 },
                            };
                            push(
                                &mut out,
                                n,
                                StepClass::Other,
                                StepTag::Disclaim { t: t as u8 },
                            );
                        }
                    }
                    Lease::InDoubt { answered } => {
                        for q in 0..self.sc.places {
                            if !s.alive[q as usize] || answered & (1 << q) != 0 {
                                continue;
                            }
                            let mut n = s.clone();
                            if self.cur_place(s, t) == Some(q) {
                                // TaskAnswer: yes — q holds the task, the
                                // lease settles there.
                                n.lease[t] = Lease::Held {
                                    p: q,
                                    e: n.epochs[q as usize],
                                };
                            } else {
                                // TaskAnswer: no.
                                n.lease[t] = Lease::InDoubt {
                                    answered: answered | (1 << q),
                                };
                            }
                            push(
                                &mut out,
                                n,
                                StepClass::Other,
                                StepTag::PollAnswer { t: t as u8, q },
                            );
                        }
                        if answered & alive_mask == alive_mask && s.tasks[t] == Loc::Vanished {
                            // Every live place disclaimed custody: the
                            // task is provably gone — reinject toward
                            // home, or place 0 if home is down.
                            let mut n = s.clone();
                            let home = self.sc.tasks[t].home;
                            let dest = if n.alive[home as usize] { home } else { 0 };
                            n.tasks[t] = Loc::InFlight { to: dest };
                            n.lease[t] = Lease::None;
                            push(
                                &mut out,
                                n,
                                StepClass::Other,
                                StepTag::Reinject { t: t as u8 },
                            );
                        }
                    }
                }
            }
        }

        // --- Worker steps -------------------------------------------
        for w in 0..self.workers() {
            let p = self.place_of(w);
            match s.phases[w] {
                Phase::Dead | Phase::Dormant => {}
                Phase::Idle => {
                    // Line 9: poll own private deque.
                    let mut mine = TaskBuf::new();
                    for t in 0..s.tasks.len() {
                        if matches!(s.tasks[t], Loc::Private { w: pw } if pw as usize == w) {
                            mine.push(t);
                        }
                    }
                    if mine.is_empty() {
                        let mut n = s.clone();
                        // Statement merging: the line 11 probe is an
                        // unconditional, invisible, process-local step
                        // (the PhaseAdvance ample argument), so the
                        // faithful model folds it into the failed
                        // line 9 poll instead of storing the transient
                        // Probe state. Mutant runs keep the unfused
                        // automaton.
                        n.phases[w] = if self.mutant.is_none() {
                            Phase::CoWorker
                        } else {
                            Phase::Probe
                        };
                        // Once no delivery can ever land at this place
                        // again, the empty poll reads a deque that is
                        // empty on every deferred execution (its only
                        // external writer is `map_deliver`; co-worker
                        // steals can only remove) — a pure τ-step.
                        let class = if self.mutant.is_none() && self.place_delivery_dead(s, p) {
                            StepClass::FreeVisit
                        } else {
                            StepClass::Other
                        };
                        push(&mut out, n, class, StepTag::PollEmpty { w: w as u8 });
                    } else {
                        for t in mine.iter() {
                            let mut n = s.clone();
                            self.start(&mut n, w, t);
                            push(
                                &mut out,
                                n,
                                StepClass::Other,
                                StepTag::PollRun {
                                    w: w as u8,
                                    t: t as u8,
                                },
                            );
                        }
                    }
                }
                Phase::Probe => {
                    // Line 11: the probe itself is a pure step here —
                    // arrivals are the asynchronous deliver transition.
                    // This is the ample-eligible phase advance: it
                    // touches only this worker's control state, and the
                    // mapping/steal rules read phases solely through
                    // the busy/dead classification, which Probe →
                    // CoWorker does not change.
                    let mut n = s.clone();
                    n.phases[w] = Phase::CoWorker;
                    push(
                        &mut out,
                        n,
                        StepClass::PhaseAdvance,
                        StepTag::ProbeAdvance { w: w as u8 },
                    );
                }
                Phase::CoWorker => {
                    // Line 13: steal from a co-located worker.
                    let base = p as usize * self.wpp();
                    let mut any = false;
                    for v in base..base + self.wpp() {
                        if v == w {
                            continue;
                        }
                        let mut theirs = TaskBuf::new();
                        for t in 0..s.tasks.len() {
                            if matches!(s.tasks[t], Loc::Private { w: pw } if pw as usize == v) {
                                theirs.push(t);
                            }
                        }
                        if theirs.is_empty() {
                            continue;
                        }
                        any = true;
                        let chunk = if self.is(ProtocolMutant::LocalChunkTwo) {
                            2
                        } else {
                            proto::LOCAL_STEAL_CHUNK
                        };
                        let mut take = theirs;
                        take.truncate(chunk);
                        if take.len() > proto::LOCAL_STEAL_CHUNK {
                            bad.insert(format!(
                                "worker {w}: co-located steal took {} tasks; Algorithm 1 \
                                 line 13 chunk is {}",
                                take.len(),
                                proto::LOCAL_STEAL_CHUNK,
                            ));
                        }
                        let mut n = s.clone();
                        self.start(&mut n, w, take.get(0));
                        for extra in take.iter().skip(1) {
                            n.tasks[extra] = Loc::Private { w: w as u8 };
                        }
                        push(
                            &mut out,
                            n,
                            StepClass::Other,
                            StepTag::CoSteal {
                                w: w as u8,
                                v: v as u8,
                                t: take.get(0) as u8,
                            },
                        );
                    }
                    if !any {
                        let mut n = s.clone();
                        // Statement merging again: at a statically
                        // workless place the line 15 shared poll is a
                        // fact, so the faithful model advances straight
                        // into the remote sweep instead of storing the
                        // transient LocalShared state.
                        n.phases[w] = if self.mutant.is_none()
                            && self.sc.places > 1
                            && self.place_statically_empty(p)
                        {
                            Phase::Remote {
                                untried: self.sweep_mask(p),
                                probed: true,
                            }
                        } else {
                            Phase::LocalShared
                        };
                        // With no co-located worker to rob, the advance
                        // reads nothing at all — a pure phase step.
                        let class = if self.wpp() == 1 {
                            StepClass::PhaseAdvance
                        } else if self.mutant.is_none()
                            && self.place_delivery_dead(s, p)
                            && self.all_places_workless(s)
                        {
                            // The failed co-worker probe read deques
                            // that can never gain a task again: no
                            // delivery can land here and no steal can
                            // succeed anywhere (private deques' only
                            // other source). Deterministic-fail → τ.
                            StepClass::FreeVisit
                        } else {
                            StepClass::Other
                        };
                        push(&mut out, n, class, StepTag::CoStealFail { w: w as u8 });
                    }
                }
                Phase::LocalShared => {
                    // Line 15: take from the local shared deque.
                    let mut pooled = TaskBuf::new();
                    for t in 0..s.tasks.len() {
                        if matches!(s.tasks[t], Loc::Shared { p: sp } if sp == p) {
                            pooled.push(t);
                        }
                    }
                    if pooled.is_empty() {
                        let mut n = s.clone();
                        let mut class = StepClass::Other;
                        n.phases[w] = if self.sc.places > 1 {
                            // At a statically workless place the empty
                            // poll is a fact, not a race outcome, and
                            // the advance to the remote sweep is a
                            // deterministic τ-step (same argument as
                            // the FreeVisit remote case).
                            if self.mutant.is_none()
                                && (self.place_statically_empty(p) || self.place_workless(s, p))
                            {
                                class = StepClass::FreeVisit;
                            }
                            // The line 11 probe already ran this round.
                            Phase::Remote {
                                untried: self.sweep_mask(p),
                                probed: true,
                            }
                        } else if self.work_visible(s, w)
                            || self.is(ProtocolMutant::ReprobeNoBackoff)
                        {
                            // The no-backoff livelock mutant never
                            // parks: an empty round restarts at line 9.
                            Phase::Idle
                        } else {
                            Phase::Dormant
                        };
                        push(&mut out, n, class, StepTag::SharedEmpty { w: w as u8 });
                    } else {
                        for t in pooled.iter() {
                            let mut n = s.clone();
                            self.start(&mut n, w, t);
                            push(
                                &mut out,
                                n,
                                StepClass::Other,
                                StepTag::TakeShared {
                                    w: w as u8,
                                    t: t as u8,
                                },
                            );
                        }
                    }
                }
                Phase::Remote { untried, probed } => {
                    if untried == 0 {
                        // Sweep exhausted: park — unless local work
                        // appeared mid-round (the engine's atomic
                        // acquire would have seen it).
                        let visible =
                            self.work_visible(s, w) || self.is(ProtocolMutant::ReprobeNoBackoff);
                        let mut n = s.clone();
                        n.phases[w] = if visible { Phase::Idle } else { Phase::Dormant };
                        // Parking reads only this worker's private
                        // deque and the local shared pool; if neither
                        // can ever gain a task again the outcome is
                        // fixed on every deferred execution, and
                        // Remote{∅} → Dormant are both non-busy, so
                        // the flip is invisible. τ.
                        let class = if !visible
                            && self.mutant.is_none()
                            && self.place_delivery_dead(s, p)
                            && self.place_workless(s, p)
                        {
                            StepClass::FreeVisit
                        } else {
                            StepClass::Other
                        };
                        let tag = if visible {
                            StepTag::NewRound { w: w as u8 }
                        } else {
                            StepTag::Park { w: w as u8 }
                        };
                        push(&mut out, n, class, tag);
                        continue;
                    }
                    for q in 0..self.sc.places {
                        if untried & (1 << q) == 0 {
                            continue;
                        }
                        // Line 19 check: every remote attempt must be
                        // preceded by a network probe since the last
                        // failed one.
                        if !probed {
                            bad.insert(format!(
                                "worker {w}: remote steal attempt at place {q} without \
                                 the line 19 network re-probe after the previous failed \
                                 attempt"
                            ));
                        }
                        // Livelock mutant: the retry budget is ignored —
                        // a failed visit leaves the victim's untried
                        // bit set, so the sweep can revisit it forever.
                        let rest = if self.is(ProtocolMutant::RetryBudgetIgnored) {
                            untried
                        } else {
                            untried & !(1 << q)
                        };
                        let after_fail = Phase::Remote {
                            untried: rest,
                            probed: !self.is(ProtocolMutant::SkipReprobe),
                        };
                        // Victim pool: the remote shared deque — plus,
                        // under the sensitive-steal mutant, the remote
                        // workers' private deques.
                        let mut pool = TaskBuf::new();
                        if s.alive[q as usize] {
                            if self.is(ProtocolMutant::StealSensitiveRemotely) {
                                for t in 0..s.tasks.len() {
                                    if matches!(s.tasks[t], Loc::Private { w: pw }
                                        if self.place_of(pw as usize) == q)
                                    {
                                        pool.push(t);
                                    }
                                }
                            }
                            for t in 0..s.tasks.len() {
                                if matches!(s.tasks[t], Loc::Shared { p: sp } if sp == q) {
                                    pool.push(t);
                                }
                            }
                        }
                        if pool.is_empty() {
                            let mut n = s.clone();
                            n.phases[w] = after_fail;
                            // Against a statically workless place the
                            // failure is not a race outcome but a fact;
                            // the visit is then a pure τ-step (mutants
                            // widen the victim pool, so they disable
                            // the classification).
                            let class = if self.mutant.is_none()
                                && (self.place_statically_empty(q) || self.place_workless(s, q))
                            {
                                StepClass::FreeVisit
                            } else {
                                StepClass::Other
                            };
                            push(&mut out, n, class, StepTag::VisitFail { w: w as u8, q });
                            continue;
                        }
                        let mut take = pool;
                        take.truncate(proto::REMOTE_STEAL_CHUNK);
                        for t in take.iter() {
                            if self.sc.tasks[t].sensitive {
                                bad.insert(format!(
                                    "task {t}: sensitive task migrated off its home place \
                                     {q} by a remote steal"
                                ));
                            }
                        }
                        // Successful steal: first task executes, the
                        // extra rides along into the thief's private
                        // deque (migration wrapping). In the cluster
                        // era the lease deliberately stays at the
                        // victim until the TaskMoved note lands — the
                        // LeaseConfirm transition models that lag.
                        let mut n = s.clone();
                        for t in take.iter() {
                            n.migrated |= 1 << t;
                        }
                        self.start(&mut n, w, take.get(0));
                        for extra in take.iter().skip(1) {
                            n.tasks[extra] = Loc::Private { w: w as u8 };
                        }
                        push(
                            &mut out,
                            n,
                            StepClass::Other,
                            StepTag::RemoteSteal {
                                w: w as u8,
                                q,
                                t: take.get(0) as u8,
                            },
                        );
                        if s.drops_left > 0 {
                            // The migrate payload is lost in flight:
                            // the thief times out empty-handed and the
                            // victim lease-reclaims the tasks.
                            let mut n = s.clone();
                            for t in take.iter() {
                                n.tasks[t] = Loc::InFlight { to: q };
                            }
                            n.phases[w] = after_fail;
                            n.drops_left -= 1;
                            push(
                                &mut out,
                                n,
                                StepClass::Other,
                                StepTag::StealDropped { w: w as u8, q },
                            );
                        }
                    }
                }
                Phase::Busy { task } => {
                    let t = task as usize;
                    let mut n = s.clone();
                    n.exec[t] = n.exec[t].saturating_add(1);
                    if n.exec[t] > 1 {
                        bad.insert(format!(
                            "task {t}: executed {} times (exactly-once violated)",
                            n.exec[t]
                        ));
                    }
                    // Guarded for the dup-remap mutant: only clear the
                    // location this worker actually owns.
                    if n.tasks[t] == (Loc::Running { w: w as u8 }) {
                        n.tasks[t] = Loc::Done;
                        if self.cluster() {
                            n.lease[t] = Lease::None;
                        }
                    }
                    // Completion spawns the children.
                    for c in 0..n.tasks.len() {
                        if self.sc.tasks[c].parent == Some(t) && n.tasks[c] == Loc::NotSpawned {
                            n.tasks[c] = Loc::InFlight {
                                to: self.sc.tasks[c].home,
                            };
                            n.latch += 1;
                        }
                    }
                    let skip_dec =
                        self.is(ProtocolMutant::SkipLatchDecrement) && s.migrated & (1 << t) != 0;
                    if !skip_dec {
                        n.latch -= 1;
                        if n.latch < 0 {
                            bad.insert("finish latch decremented below zero".to_string());
                        }
                    }
                    n.phases[w] = if n.alive[p as usize] {
                        Phase::Idle
                    } else {
                        Phase::Dead
                    };
                    push(
                        &mut out,
                        n,
                        StepClass::Completion,
                        StepTag::Complete {
                            w: w as u8,
                            t: task,
                        },
                    );
                }
            }
        }

        out
    }

    /// Unlabeled successor view for the safety engine (`crate::reduce`).
    fn successors(&self, s: &State, bad: &mut BTreeSet<String>) -> Vec<Succ<State>> {
        self.successors_labeled(s, bad)
            .into_iter()
            .map(|l| Succ {
                state: l.state,
                class: l.class,
            })
            .collect()
    }

    /// Quiescence checks on a transition-free state.
    fn check_terminal(&self, s: &State, bad: &mut BTreeSet<String>) {
        for (t, loc) in s.tasks.iter().enumerate() {
            if *loc != Loc::Done {
                bad.insert(format!(
                    "termination violated: terminal state with task {t} {}",
                    match loc {
                        Loc::Lost => "lost by fail-stop recovery".to_string(),
                        Loc::Vanished => "vanished with a dead incarnation".to_string(),
                        other => format!("stuck at {other:?}"),
                    }
                ));
            }
        }
        if s.latch != 0 && s.tasks.iter().all(|l| *l == Loc::Done) {
            bad.insert(format!(
                "finish latch stuck at {} in a terminal state (lost decrement)",
                s.latch
            ));
        }
    }

    /// Ample-set nomination (see `crate::reduce` and `docs/analysis.md`
    /// §5 for the class-by-class independence argument). Only consulted
    /// by the reduced exploration mode.
    fn ample(&self, s: &State, succs: &[Succ<State>]) -> Option<usize> {
        self.ample_classes(s, succs.len(), |i| succs[i].class)
    }

    /// Labeled-successor view of the same nomination, used by the
    /// liveness certificate scan (`crate::liveness`) so reduced-mode
    /// liveness walks exactly the graph the safety engine walks.
    pub(crate) fn ample_labeled(&self, s: &State, succs: &[LSucc]) -> Option<usize> {
        self.ample_classes(s, succs.len(), |i| succs[i].class)
    }

    /// Shared ample-set body, generic over how a successor's
    /// [`StepClass`] is fetched so the safety and liveness engines
    /// cannot drift apart.
    fn ample_classes<F: Fn(usize) -> StepClass>(
        &self,
        s: &State,
        n: usize,
        class: F,
    ) -> Option<usize> {
        // A pending kill conflicts with everything (it overwrites
        // worker phases wholesale); no reduction until it has fired.
        let kill_inert = self.sc.faults.kill_place.is_none() || s.killed;
        if !kill_inert {
            return None;
        }
        // Drained tail: every task sits at a terminal location and the
        // fault/custody machinery is fully resolved. The only enabled
        // transitions are workers independently walking their scan
        // cycle toward Dormant. Each such step touches only its own
        // worker's control state; every read it makes (task locations,
        // place liveness, co-worker private deques) is frozen; and the
        // per-worker remote-sweep visit choices pairwise commute (each
        // clears a distinct untried bit and all fail). The cycle is
        // also acyclic (it ends in Dormant), so the visited proviso
        // never bites. Any single successor is therefore a sound
        // ample set — this collapses an O(c^W) product of scan chains
        // into a single interleaving.
        if self.mutant.is_none() && self.drained(s) {
            return Some(0);
        }
        // Probe → CoWorker: deterministic, invisible, process-local.
        if let Some(i) = (0..n).find(|&i| class(i) == StepClass::PhaseAdvance) {
            return Some(i);
        }
        // A sweep step against a statically workless place: a pure
        // τ-step by the FreeVisit confluence argument — any co-enabled
        // transition either commutes with it exactly or (the worker's
        // own successful steal) erases the untried mask it touched.
        if let Some(i) = (0..n).find(|&i| class(i) == StepClass::FreeVisit) {
            return Some(i);
        }
        // A completion commutes with every other enabled transition
        // when nothing can observe the worker's busy bit flipping or
        // race the lease it clears: no delivery pending or creatable
        // (spawn/drop), no ghost, and cluster custody fully settled.
        let no_inflight = !s.tasks.iter().any(|l| matches!(l, Loc::InFlight { .. }));
        if no_inflight
            && s.dup_ghost == 0
            && s.drops_left == 0
            && self.no_spawnable_children(s)
            && self.cluster_quiet(s)
        {
            if let Some(i) = (0..n).find(|&i| class(i) == StepClass::Completion) {
                return Some(i);
            }
        }
        None
    }

    /// The remote-sweep victim mask for a worker at place `p`.
    /// Statically workless places are elided from the faithful sweep
    /// outright: every visit there fails, so skipping them composes
    /// the FreeVisit τ-steps into the sweep entry (mutants widen the
    /// victim pool and keep the full sweep).
    fn sweep_mask(&self, p: u8) -> u8 {
        (0..self.sc.places)
            .filter(|&q| q != p)
            .filter(|&q| self.mutant.is_some() || !self.place_statically_empty(q))
            .fold(0u8, |m, q| m | (1 << q))
    }

    /// No task is ever routed to `q`'s shared pool on any reachable
    /// path: deliveries target the `InFlight` destination, which is
    /// always a task's home or place 0 (init, spawn, recovery reroute,
    /// cluster reinject), and steals move tasks into *private* deques.
    /// A remote-sweep visit against such a place always fails, so it
    /// only clears the sweeping worker's own untried bit — the
    /// [`StepClass::FreeVisit`] τ-confluence argument.
    fn place_statically_empty(&self, q: u8) -> bool {
        q != 0 && self.sc.tasks.iter().all(|t| t.home != q)
    }

    /// Dynamic counterpart of [`Self::place_statically_empty`]: from
    /// `s` onward, `q`'s shared pool is empty and will stay empty on
    /// every execution. `Loc::Shared` is written in exactly one spot —
    /// a flexible delivery targeting `q` under saturation — so the
    /// pool is dead once no flexible task routed to `q` (home or
    /// in-flight destination; deliveries, reroutes, and reinjects all
    /// target those) can still reach the delivery pipeline. The
    /// predicate is *stable*: it only flips false→true, never back, so
    /// a sweep visit against such a place is a pure τ-step by the same
    /// confluence argument as the static case. Fault machinery that
    /// could resurrect a delivery (a pending kill turning running
    /// tasks `Lost`, ghost copies, undropped deliveries) disables it
    /// wholesale, as do mutants (which widen victim pools and re-map
    /// ghosts).
    fn place_workless(&self, s: &State, q: u8) -> bool {
        if !self.quiescence_gate(s) {
            return false;
        }
        (0..s.tasks.len()).all(|t| {
            if matches!(s.tasks[t], Loc::Shared { p } if p == q) {
                return false;
            }
            if self.sc.tasks[t].sensitive {
                // Faithful mapping pins sensitive tasks to private
                // deques (Algorithm 1 line 3); they can never surface
                // in a shared pool.
                return true;
            }
            let routed_here =
                self.sc.tasks[t].home == q || matches!(s.tasks[t], Loc::InFlight { to } if to == q);
            !(routed_here
                && matches!(
                    s.tasks[t],
                    Loc::NotSpawned | Loc::InFlight { .. } | Loc::Lost | Loc::Vanished
                ))
        })
    }

    /// Shared gate for the dynamic-quiescence predicates: mutants
    /// widen victim pools and re-map ghost copies, ghost/duplicate
    /// machinery can replay a delivery, and a kill that has not fired
    /// yet can turn running tasks back into routable ones.
    fn quiescence_gate(&self, s: &State) -> bool {
        self.mutant.is_none()
            && s.dup_ghost == 0
            && s.dups_left == 0
            && (self.sc.faults.kill_place.is_none() || s.killed)
    }

    /// No delivery can ever land at place `p` again: no task routed
    /// there (home, or current in-flight destination) can still reach
    /// the delivery pipeline. Unlike [`Self::place_workless`] this
    /// counts sensitive tasks too — it freezes the *private* deques of
    /// `p`'s workers, whose only external writer is `map_deliver`.
    /// Stable for the same reasons as `place_workless`.
    fn place_delivery_dead(&self, s: &State, p: u8) -> bool {
        if !self.quiescence_gate(s) {
            return false;
        }
        (0..s.tasks.len()).all(|t| {
            let routed_here =
                self.sc.tasks[t].home == p || matches!(s.tasks[t], Loc::InFlight { to } if to == p);
            !(routed_here
                && matches!(
                    s.tasks[t],
                    Loc::NotSpawned | Loc::InFlight { .. } | Loc::Lost | Loc::Vanished
                ))
        })
    }

    /// Every shared pool in the system is dead ([`Self::place_workless`]
    /// for all places): no remote or local-shared steal can ever
    /// succeed again, so private deques can only gain tasks through
    /// deliveries.
    fn all_places_workless(&self, s: &State) -> bool {
        (0..self.sc.places).all(|q| self.place_workless(s, q))
    }

    /// Every task is at a terminal location and every non-worker
    /// transition source is spent: no delivery, ghost arrival, kill,
    /// restart, or coordinator step can ever fire again. See the
    /// drained-tail ample class in [`Ctx::ample`].
    fn drained(&self, s: &State) -> bool {
        s.tasks.iter().all(|l| matches!(l, Loc::Done | Loc::Lost))
            && s.dup_ghost == 0
            && (self.sc.faults.kill_place.is_none()
                || (s.killed && (!self.sc.faults.restart || s.restarted)))
            && (!self.cluster() || s.lease.iter().all(|l| *l == Lease::None))
    }

    /// No running task would spawn a child on completion (spawns
    /// create deliveries, whose mapping reads the busy classification
    /// that completions change).
    fn no_spawnable_children(&self, s: &State) -> bool {
        for w in 0..self.workers() {
            if let Phase::Busy { task } = s.phases[w] {
                let t = task as usize;
                if (0..s.tasks.len())
                    .any(|c| self.sc.tasks[c].parent == Some(t) && s.tasks[c] == Loc::NotSpawned)
                {
                    return false;
                }
            }
        }
        true
    }

    /// Cluster-era custody machinery is inert: every lease settled at
    /// its holder's current incarnation, nothing vanished or in doubt.
    fn cluster_quiet(&self, s: &State) -> bool {
        if !self.cluster() {
            return true;
        }
        for t in 0..s.tasks.len() {
            if s.tasks[t] == Loc::Vanished {
                return false;
            }
            match s.lease[t] {
                Lease::InDoubt { .. } => return false,
                Lease::Held { p, e } => {
                    if self.lease_stale(s, p, e) || self.cur_place(s, t) != Some(p) {
                        return false;
                    }
                }
                Lease::None => {}
            }
        }
        true
    }
}

pub(crate) fn init_state(sc: &ProtocolScenario) -> State {
    let ctx = Ctx { sc, mutant: None };
    State {
        tasks: sc
            .tasks
            .iter()
            .map(|t| {
                if t.parent.is_none() {
                    Loc::InFlight { to: t.home }
                } else {
                    Loc::NotSpawned
                }
            })
            .collect::<Vec<_>>()
            .into(),
        exec: FixedVec::filled(0, sc.tasks.len()),
        lease: FixedVec::filled(Lease::None, sc.tasks.len()),
        migrated: 0,
        dup_ghost: 0,
        stale_ghost: 0,
        dup_dest: FixedVec::filled(255, sc.tasks.len()),
        latch: sc.tasks.iter().filter(|t| t.parent.is_none()).count() as i16,
        phases: FixedVec::filled(Phase::Idle, ctx.workers()),
        alive: FixedVec::filled(true, sc.places as usize),
        epochs: FixedVec::filled(0, sc.places as usize),
        drops_left: sc.faults.max_drops,
        dups_left: sc.faults.max_dups,
        killed: false,
        restarted: false,
    }
}

/// The protocol model plugged into the shared engine: raw bit-packed
/// keys in full mode, canonical symmetry-orbit keys plus ample-set
/// reduction in reduced mode.
struct ProtoSys<'a> {
    ctx: Ctx<'a>,
    mode: Mode,
    canon: canon::Canonizer,
}

impl System for ProtoSys<'_> {
    type State = State;
    type Key = canon::Key;

    fn initial(&self) -> State {
        init_state(self.ctx.sc)
    }

    fn successors(&self, s: &State, bad: &mut BTreeSet<String>) -> Vec<Succ<State>> {
        self.ctx.successors(s, bad)
    }

    fn check_terminal(&self, s: &State, bad: &mut BTreeSet<String>) {
        self.ctx.check_terminal(s, bad);
    }

    fn key(&self, s: &State) -> canon::Key {
        match self.mode {
            Mode::Full => canon::raw_key(self.ctx.sc, s),
            Mode::Reduced => self.canon.key(self.ctx.sc, s),
        }
    }

    fn ample(&self, s: &State, succs: &[Succ<State>]) -> Option<usize> {
        self.ctx.ample(s, succs)
    }
}

/// Exhaustively explore one scenario, optionally with a seeded
/// protocol mutant, in the requested [`Mode`]; `cap` bounds stored
/// states (see [`ExploreStats::truncated`]). Violations are
/// deduplicated and sorted.
pub fn explore_protocol_mode(
    sc: &ProtocolScenario,
    mutant: Option<ProtocolMutant>,
    mode: Mode,
    cap: Option<u64>,
) -> (Outcome, ExploreStats) {
    assert!(sc.places >= 1 && sc.places <= 8, "u8 place bitmask");
    assert!(sc.tasks.len() <= 16, "u16 task bitmasks");
    assert!(
        sc.places as usize * sc.workers_per_place as usize <= 16,
        "compact worker encoding"
    );
    assert_ne!(sc.faults.kill_place, Some(0), "place 0 hosts recovery");
    let sys = ProtoSys {
        ctx: Ctx { sc, mutant },
        mode,
        canon: canon::Canonizer::new(sc),
    };
    explore_system(&sys, mode, cap)
}

/// Exhaustively explore one scenario in full (unreduced) mode —
/// the PR 4 behavior, kept as the compatibility surface.
pub fn explore_protocol(sc: &ProtocolScenario, mutant: Option<ProtocolMutant>) -> Outcome {
    explore_protocol_mode(sc, mutant, Mode::Full, None).0
}

fn flex(home: u8) -> ModelTask {
    ModelTask {
        home,
        sensitive: false,
        parent: None,
    }
}

fn sens(home: u8) -> ModelTask {
    ModelTask {
        home,
        sensitive: true,
        parent: None,
    }
}

fn child(home: u8, parent: usize) -> ModelTask {
    ModelTask {
        home,
        sensitive: false,
        parent: Some(parent),
    }
}

fn sens_child(home: u8, parent: usize) -> ModelTask {
    ModelTask {
        home,
        sensitive: true,
        parent: Some(parent),
    }
}

/// The base scenarios explored by `repro check protocol` and CI. All
/// must be violation-free without a mutant; each mutant is caught by
/// its [`ProtocolMutant::catch_scenario`]. Scenarios with
/// `full_ok: false` are the scale tier: they exist to demonstrate the
/// reductions and are only explored reduced (or capped).
pub fn builtin_scenarios() -> Vec<ProtocolScenario> {
    let sim = |name, places, workers_per_place, tasks: Vec<ModelTask>, faults| ProtocolScenario {
        name,
        places,
        workers_per_place,
        tasks,
        faults,
        era: Era::Sim,
        full_ok: true,
    };
    vec![
        // Sensitive tasks stay pinned while flexible work is raided.
        sim(
            "sensitive_pinning",
            2,
            1,
            vec![sens(0), flex(0), flex(0)],
            ModelFaults::default(),
        ),
        // Intra-place stealing: line 13's chunk of one.
        sim(
            "coworker_chunk",
            1,
            2,
            vec![sens(0), sens(0), sens(0)],
            ModelFaults::default(),
        ),
        // A saturated place pools flexible work; remote thieves take
        // chunked steals and migrated tasks release the latch.
        sim(
            "saturation_mapping",
            2,
            2,
            vec![flex(0), flex(0), flex(0), flex(0)],
            ModelFaults::default(),
        ),
        // A three-place sweep: failed remote attempts must re-probe
        // (line 19) before the next victim.
        sim(
            "reprobe_sweep",
            3,
            1,
            vec![flex(0), flex(0), flex(0)],
            ModelFaults::default(),
        ),
        // Completion spawns children across places; the finish latch
        // tracks the whole tree.
        sim(
            "spawn_tree",
            2,
            2,
            vec![flex(0), child(0, 0), child(1, 0), child(1, 0)],
            ModelFaults::default(),
        ),
        // A dropped migrate payload is lease-reclaimed at the victim.
        sim(
            "drop_reclaim",
            2,
            1,
            vec![flex(0), flex(0), flex(0)],
            ModelFaults {
                max_drops: 1,
                ..Default::default()
            },
        ),
        // A fail-stop kill: queued tasks are recovered, running tasks
        // finish at the task boundary, the latch still reaches zero.
        sim(
            "kill_recover",
            3,
            1,
            vec![flex(0), flex(1), flex(1)],
            ModelFaults {
                kill_place: Some(1),
                ..Default::default()
            },
        ),
        // The killed place additionally rejoins empty-handed.
        sim(
            "kill_restart",
            3,
            1,
            vec![flex(0), flex(1), flex(1)],
            ModelFaults {
                kill_place: Some(1),
                restart: true,
                ..Default::default()
            },
        ),
        // Duplicate deliveries must be discarded by task-id dedup.
        sim(
            "dup_delivery",
            2,
            1,
            vec![flex(0), flex(0)],
            ModelFaults {
                max_dups: 1,
                ..Default::default()
            },
        ),
        // ---- Scale tier (ROADMAP item 5): the reductions at work ----
        // Six flexible roots over three places: the smallest scenario
        // where full exploration visibly blows past the legacy sizes.
        ProtocolScenario {
            name: "mid_fanout",
            places: 3,
            workers_per_place: 2,
            tasks: vec![flex(0), flex(0), flex(0), flex(0), flex(0), flex(0)],
            faults: ModelFaults::default(),
            era: Era::Sim,
            full_ok: false,
        },
        // An eight-task spawn chain hopping across three places: deep
        // rather than wide, so completions dominate the interleavings.
        ProtocolScenario {
            name: "deep_spawn_chain",
            places: 3,
            workers_per_place: 2,
            tasks: vec![
                flex(0),
                child(1, 0),
                child(2, 1),
                child(0, 2),
                child(1, 3),
                child(2, 4),
                child(0, 5),
                child(1, 6),
            ],
            faults: ModelFaults::default(),
            era: Era::Sim,
            full_ok: false,
        },
        // The acceptance-bar scenario: 4 places x 2 workers x 8 tasks,
        // all homed at place 0 so places 1-3 are fully symmetric. Eight
        // independent roots land in one burst: six sensitive (pinned,
        // saturating the home place) and two flexible (spilled to the
        // shared deque once the place saturates, then raided by six
        // remote workers racing their scan cycles).
        ProtocolScenario {
            name: "wide_fanout",
            places: 4,
            workers_per_place: 2,
            tasks: vec![
                flex(0),
                flex(0),
                sens(0),
                sens(0),
                sens(0),
                sens(0),
                sens(0),
                sens(0),
            ],
            faults: ModelFaults::default(),
            era: Era::Sim,
            full_ok: false,
        },
        // Same scale, inverted locality: two migratable coordinators
        // fan out *pinned* work (the paper's selective locality-aware
        // tasks). The flexible parents can be raided across the
        // cluster, but every child they spawn must execute at place 0;
        // spawn staggering interleaves deliveries with completions.
        ProtocolScenario {
            name: "mixed_sensitive_fanout",
            places: 4,
            workers_per_place: 2,
            tasks: vec![
                sens(0),
                sens(0),
                flex(0),
                flex(0),
                sens_child(0, 2),
                sens_child(0, 2),
                sens_child(0, 3),
                sens_child(0, 3),
            ],
            faults: ModelFaults::default(),
            era: Era::Sim,
            full_ok: false,
        },
        // ---- Cluster era: the PR 7 races, model-side ---------------
        // A SIGKILL strands tasks at the dead incarnation; the sweep,
        // custody poll and reinject recover them, and a late TaskMoved
        // copy must die at the disown fence.
        ProtocolScenario {
            name: "cluster_reclaim",
            places: 3,
            workers_per_place: 1,
            tasks: vec![flex(0), flex(1), flex(1)],
            faults: ModelFaults {
                kill_place: Some(1),
                max_dups: 1,
                ..Default::default()
            },
            era: Era::Cluster,
            full_ok: true,
        },
        // The killed place rejoins as a new incarnation: the epoch
        // bump must fence every lease held under the dead epoch.
        ProtocolScenario {
            name: "cluster_epoch",
            places: 3,
            workers_per_place: 1,
            tasks: vec![flex(0), flex(1), flex(1)],
            faults: ModelFaults {
                kill_place: Some(1),
                restart: true,
                max_dups: 1,
                ..Default::default()
            },
            era: Era::Cluster,
            full_ok: true,
        },
    ]
}

/// Find a builtin scenario by name.
pub fn scenario_by_name(name: &str) -> Option<ProtocolScenario> {
    builtin_scenarios().into_iter().find(|s| s.name == name)
}

/// Explore every builtin scenario fault-free/mutant-free, reduced.
/// (The PR 4 surface explored full; with the scale tier in the suite,
/// reduced is the only mode that covers every scenario — the
/// `--compare` cross-validation is what keeps it honest.)
pub fn check_protocol_all() -> Vec<(&'static str, Outcome)> {
    builtin_scenarios()
        .iter()
        .map(|sc| {
            (
                sc.name,
                explore_protocol_mode(sc, None, Mode::Reduced, None).0,
            )
        })
        .collect()
}

/// Result of one mutation test.
#[derive(Debug, Clone)]
pub struct MutantCheck {
    /// Mutant name.
    pub mutant: &'static str,
    /// Scenario explored.
    pub scenario: &'static str,
    /// The property expected to catch this mutant: `"safety"` or a
    /// liveness property name ([`ProtocolMutant::catch_property`]).
    pub property: &'static str,
    /// Whether the *designated* property caught it (and nothing
    /// crashed).
    pub caught: bool,
    /// Everything that flagged the mutant: `"safety"` and/or liveness
    /// property names. A livelock mutant may trip several.
    pub caught_by: Vec<&'static str>,
    /// The safety violations found.
    pub violations: Vec<String>,
    /// The designated liveness property's lasso counterexample, for
    /// livelock mutants.
    pub lasso: Option<crate::liveness::Lasso>,
    /// A panic message, if the exploration *errored* instead of
    /// finishing — distinguished from a catch so a crash can never
    /// masquerade as detection power.
    pub error: Option<String>,
}

/// Re-inject every seeded protocol bug — safety and livelock — and
/// report which property caught it. CI requires every mutant caught
/// by its designated property (and none errored). Mutants are always
/// explored in full mode: reduction soundness arguments assume the
/// faithful generator, so mutated generators get the unreduced
/// treatment.
pub fn check_protocol_mutants() -> Vec<MutantCheck> {
    ProtocolMutant::ALL
        .iter()
        .map(|&m| {
            let name = m.catch_scenario();
            let sc = scenario_by_name(name).expect("catch scenario exists");
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let outcome = explore_protocol(&sc, Some(m));
                let liveness = crate::liveness::check_liveness(&sc, Some(m), Mode::Full, None);
                (outcome, liveness)
            }));
            match run {
                Ok((outcome, liveness)) => {
                    let mut caught_by = Vec::new();
                    if !outcome.violations.is_empty() {
                        caught_by.push("safety");
                    }
                    let mut lasso = None;
                    for r in &liveness {
                        if !r.holds {
                            caught_by.push(r.property.name());
                            if r.property.name() == m.catch_property() {
                                lasso = r.lasso.clone();
                            }
                        }
                    }
                    MutantCheck {
                        mutant: m.name(),
                        scenario: name,
                        property: m.catch_property(),
                        caught: caught_by.contains(&m.catch_property()),
                        caught_by,
                        violations: outcome.violations,
                        lasso,
                        error: None,
                    }
                }
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    MutantCheck {
                        mutant: m.name(),
                        scenario: name,
                        property: m.catch_property(),
                        caught: false,
                        caught_by: Vec::new(),
                        violations: Vec::new(),
                        lasso: None,
                        error: Some(msg),
                    }
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_base_scenarios_are_clean_reduced() {
        for sc in builtin_scenarios() {
            // The scale tier is exercised by `repro check protocol`
            // (release binary, CI wall budget), not debug unit tests.
            if !sc.full_ok {
                continue;
            }
            let (outcome, stats) = explore_protocol_mode(&sc, None, Mode::Reduced, None);
            assert!(
                outcome.violations.is_empty(),
                "{}: {:?}",
                sc.name,
                outcome.violations
            );
            assert!(outcome.states > 10, "{} explored too little", sc.name);
            assert!(outcome.terminals > 0, "{} never terminated", sc.name);
            assert!(!stats.truncated);
        }
    }

    #[test]
    fn reduced_and_full_verdicts_agree_on_every_legacy_scenario() {
        for sc in builtin_scenarios() {
            if !sc.full_ok {
                continue;
            }
            let (full, _) = explore_protocol_mode(&sc, None, Mode::Full, None);
            let (reduced, _) = explore_protocol_mode(&sc, None, Mode::Reduced, None);
            assert_eq!(
                full.violations.is_empty(),
                reduced.violations.is_empty(),
                "{}: verdicts diverged (full {:?}, reduced {:?})",
                sc.name,
                full.violations,
                reduced.violations
            );
            assert!(
                reduced.states <= full.states,
                "{}: reduction grew the state space ({} > {})",
                sc.name,
                reduced.states,
                full.states
            );
            // Keep the full scenarios explorable in CI.
            assert!(
                full.states < 2_000_000,
                "{} exploded to {} states",
                sc.name,
                full.states
            );
        }
    }

    #[test]
    fn every_seeded_mutant_is_caught_with_the_right_message() {
        // Safety mutants must trip a violation containing the needle;
        // livelock mutants must be caught by their designated
        // temporal property with a lasso counterexample.
        let safety_needles = [
            ("skip-reprobe", "line 19"),
            ("steal-sensitive-remotely", "sensitive task migrated"),
            ("local-chunk-two", "line 13 chunk"),
            ("map-flexible-private-always", "lines 5-8"),
            ("skip-latch-decrement", "latch stuck"),
            ("drop-recovered-tasks", "lost by fail-stop"),
            ("dup-delivery-remaps", "exactly-once"),
            ("skip-disown-fence", "disown fence"),
            ("accept-stale-epoch-lease", "stale-epoch"),
        ];
        let checks = check_protocol_mutants();
        assert_eq!(checks.len(), ProtocolMutant::ALL.len());
        for check in &checks {
            assert!(
                check.error.is_none(),
                "mutant {} errored on {}: {:?}",
                check.mutant,
                check.scenario,
                check.error
            );
            assert!(
                check.caught,
                "mutant {} escaped its designated property {} on {} (caught by {:?})",
                check.mutant, check.property, check.scenario, check.caught_by
            );
            if check.property == "safety" {
                let needle = safety_needles
                    .iter()
                    .find(|(m, _)| *m == check.mutant)
                    .map(|(_, n)| *n)
                    .unwrap_or_else(|| panic!("no needle for {}", check.mutant));
                assert!(
                    check.violations.iter().any(|v| v.contains(needle)),
                    "mutant {} caught for the wrong reason on {}: {:?}",
                    check.mutant,
                    check.scenario,
                    check.violations
                );
            } else {
                let lasso = check
                    .lasso
                    .as_ref()
                    .unwrap_or_else(|| panic!("livelock mutant {} has no lasso", check.mutant));
                assert!(
                    !lasso.cycle.is_empty(),
                    "mutant {}: empty lasso cycle",
                    check.mutant
                );
            }
        }
    }

    #[test]
    fn fault_scenarios_still_terminate_cleanly() {
        for name in [
            "drop_reclaim",
            "kill_recover",
            "kill_restart",
            "dup_delivery",
            "cluster_reclaim",
            "cluster_epoch",
        ] {
            let sc = scenario_by_name(name).unwrap();
            let o = explore_protocol(&sc, None);
            assert!(o.violations.is_empty(), "{name}: {:?}", o.violations);
            assert!(o.terminals > 0, "{name}");
        }
    }

    #[test]
    fn cluster_recovery_exercises_the_custody_poll() {
        // The reclaim scenario must actually reach vanished tasks,
        // custody doubt and reinjection — otherwise the cluster
        // transitions are dead code and the two cluster mutants prove
        // nothing.
        let sc = scenario_by_name("cluster_reclaim").unwrap();
        let ctx = Ctx {
            sc: &sc,
            mutant: None,
        };
        let mut seen_vanished = false;
        let mut seen_doubt = false;
        let mut seen_reinject = false;
        let sys = ProtoSys {
            ctx: Ctx {
                sc: &sc,
                mutant: None,
            },
            mode: Mode::Full,
            canon: canon::Canonizer::new(&sc),
        };
        let mut bad = BTreeSet::new();
        let mut stack = vec![sys.initial()];
        let mut seen = std::collections::HashSet::new();
        seen.insert(sys.key(&stack[0]));
        while let Some(s) = stack.pop() {
            for t in 0..s.tasks.len() {
                if s.tasks[t] == Loc::Vanished {
                    seen_vanished = true;
                    if matches!(s.lease[t], Lease::InDoubt { .. }) {
                        seen_doubt = true;
                    }
                }
                if matches!(s.tasks[t], Loc::InFlight { .. }) && s.killed && s.exec[t] == 0 {
                    seen_reinject = true;
                }
            }
            for succ in ctx.successors(&s, &mut bad) {
                let k = sys.key(&succ.state);
                if seen.insert(k) {
                    stack.push(succ.state);
                }
            }
        }
        assert!(seen_vanished, "kill never stranded a task");
        assert!(seen_doubt, "sweep never opened a custody poll");
        assert!(seen_reinject, "custody never reinjected a task");
    }
}
