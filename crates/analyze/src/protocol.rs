//! Explicit-state model checking of Algorithm 1's distributed
//! work-stealing protocol.
//!
//! Where `crate::interleave` proves the *primitives* (Chase–Lev deque,
//! shared FIFO) safe under arbitrary thread interleavings, this module
//! checks the *protocol built on them*: the paper's §V Algorithm 1 —
//! task mapping, the five-tier steal order with the line 19 re-probe,
//! chunk sizes, migration of flexible tasks, and finish-latch
//! termination — plus the fault transitions of the fault-injection
//! layer (message drop with lease reclaim, duplicate delivery,
//! fail-stop place kill, restart).
//!
//! The state space is explored by memoized DFS over small
//! configurations (2–3 places × 1–2 workers × 3–5 tasks). Each state
//! records every task's location, every worker's position inside the
//! steal automaton, place liveness, and the finish latch. Transitions
//! are generated from the protocol rules exported by
//! `distws_sched::protocol` — the same constants the real policies
//! consume — while an independent set of checks validates each
//! transition against Algorithm 1. The two code paths are deliberately
//! separate so a seeded protocol mutant (a bug injected into the
//! *generator*) is caught by the *checker*, not masked by it.
//!
//! ## Algorithm 1 line ↔ model transition map
//!
//! | Lines | Algorithm 1 | Model transition |
//! |---|---|---|
//! | 1–3 | sensitive task → private deque at home | `deliver` → [`Ctx::map_deliver`], sensitive arm |
//! | 5–8 | flexible task → private iff idle/under-utilized else shared | `deliver` → [`Ctx::map_deliver`], `map_flexible_private` |
//! | 9 | poll own private deque | [`Phase::Idle`] step |
//! | 11 | probe the network | [`Phase::Probe`] step |
//! | 13 | steal 1 from a co-located worker | [`Phase::CoWorker`] step, `LOCAL_STEAL_CHUNK` |
//! | 15 | take from the local shared deque | [`Phase::LocalShared`] step |
//! | 18–29 | distributed sweep over remote places, chunk 2 | [`Phase::Remote`] step, `REMOTE_STEAL_CHUNK` |
//! | 19 | re-probe the network after a failed remote steal | `probed` flag inside [`Phase::Remote`] |
//! | — | finish-latch quiescence | `Busy` finish step + terminal-state check |
//!
//! ## Properties proved (on every explored schedule)
//!
//! 1. **No sensitive migration** — a remote steal never takes a
//!    sensitive task off its home place.
//! 2. **Exactly-once** — no task id executes twice.
//! 3. **No lost latch decrement** — every terminal state has the finish
//!    latch at exactly zero.
//! 4. **Termination** — every terminal (transition-free) state is fully
//!    quiescent: all tasks `Done`, nothing in flight. (Schedules are
//!    finite-state; livelocks that require an adversarial scheduler to
//!    recur forever — e.g. perpetual steal ping-pong — exist in any
//!    work-stealing system and are excluded probabilistically, exactly
//!    as in the lifeline termination argument of Saraswat et al.)

use crate::interleave::Outcome;
use distws_sched::protocol as proto;
use std::collections::{BTreeSet, HashSet};

/// A task in a model scenario.
#[derive(Debug, Clone, Copy)]
pub struct ModelTask {
    /// Home place.
    pub home: u8,
    /// Locality-sensitive (never stealable remotely)?
    pub sensitive: bool,
    /// Spawned by this task's completion (`None` = root, in flight at
    /// time zero).
    pub parent: Option<usize>,
}

/// Optional fault transitions, mirroring the fault-injection layer's
/// semantics: dropped migrate payloads are lease-reclaimed at the
/// victim, duplicate deliveries are deduplicated by task id, a
/// fail-stop kill recovers queued tasks elsewhere while running tasks
/// finish at the next task boundary, and a restart rejoins the place
/// empty-handed.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelFaults {
    /// Migrate payloads the network may drop (lease reclaim each).
    pub max_drops: u8,
    /// Deliveries the network may duplicate (dedup must discard each).
    pub max_dups: u8,
    /// A fail-stop kill of this place may fire at any point (never
    /// place 0, which hosts recovery).
    pub kill_place: Option<u8>,
    /// The killed place may rejoin once.
    pub restart: bool,
}

/// One model configuration to explore.
#[derive(Debug, Clone)]
pub struct ProtocolScenario {
    /// Scenario name (stable; used by `repro check --scenario`).
    pub name: &'static str,
    /// Places in the cluster.
    pub places: u8,
    /// Workers per place.
    pub workers_per_place: u8,
    /// The task set (ids are indices).
    pub tasks: Vec<ModelTask>,
    /// Fault transitions to explore.
    pub faults: ModelFaults,
}

/// A protocol bug seeded into the transition *generator*. Every mutant
/// must be caught by the independent transition *checker* — that
/// detection power is what the mutation tests pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolMutant {
    /// Skip the line 19 network re-probe after a failed remote steal.
    SkipReprobe,
    /// Let remote steals take tasks from private deques — including
    /// sensitive tasks.
    StealSensitiveRemotely,
    /// Steal 2 tasks from a co-located worker (line 13 chunk is 1).
    LocalChunkTwo,
    /// Map flexible tasks to private deques unconditionally (ignore
    /// the lines 5–8 utilization predicate).
    MapFlexiblePrivateAlways,
    /// Skip the finish-latch decrement when a migrated task completes.
    SkipLatchDecrement,
    /// Fail-stop recovery forgets the failed place's queued tasks
    /// instead of re-homing them.
    DropRecoveredTasks,
    /// Duplicate deliveries are re-mapped instead of discarded by the
    /// task-id dedup.
    DupDeliveryRemaps,
}

impl ProtocolMutant {
    /// All seeded mutants, in catch-test order.
    pub const ALL: [ProtocolMutant; 7] = [
        ProtocolMutant::SkipReprobe,
        ProtocolMutant::StealSensitiveRemotely,
        ProtocolMutant::LocalChunkTwo,
        ProtocolMutant::MapFlexiblePrivateAlways,
        ProtocolMutant::SkipLatchDecrement,
        ProtocolMutant::DropRecoveredTasks,
        ProtocolMutant::DupDeliveryRemaps,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolMutant::SkipReprobe => "skip-reprobe",
            ProtocolMutant::StealSensitiveRemotely => "steal-sensitive-remotely",
            ProtocolMutant::LocalChunkTwo => "local-chunk-two",
            ProtocolMutant::MapFlexiblePrivateAlways => "map-flexible-private-always",
            ProtocolMutant::SkipLatchDecrement => "skip-latch-decrement",
            ProtocolMutant::DropRecoveredTasks => "drop-recovered-tasks",
            ProtocolMutant::DupDeliveryRemaps => "dup-delivery-remaps",
        }
    }

    /// The scenario whose exploration must catch this mutant.
    pub fn catch_scenario(self) -> &'static str {
        match self {
            ProtocolMutant::SkipReprobe => "reprobe_sweep",
            ProtocolMutant::StealSensitiveRemotely => "sensitive_pinning",
            ProtocolMutant::LocalChunkTwo => "coworker_chunk",
            ProtocolMutant::MapFlexiblePrivateAlways => "saturation_mapping",
            ProtocolMutant::SkipLatchDecrement => "saturation_mapping",
            ProtocolMutant::DropRecoveredTasks => "kill_recover",
            ProtocolMutant::DupDeliveryRemaps => "dup_delivery",
        }
    }
}

/// Where a task is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Loc {
    /// Parent has not completed yet.
    NotSpawned,
    /// On the network, destined for place `to`.
    InFlight { to: u8 },
    /// In worker `w`'s private deque.
    Private { w: u8 },
    /// In place `p`'s shared deque.
    Shared { p: u8 },
    /// Executing on worker `w`.
    Running { w: u8 },
    /// Completed.
    Done,
    /// Forgotten by buggy fail-stop recovery (mutants only).
    Lost,
}

/// A worker's position inside the Algorithm 1 steal automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Phase {
    /// About to run line 9 (poll own private deque).
    Idle,
    /// Line 11: probe the network.
    Probe,
    /// Line 13: steal from a co-located worker.
    CoWorker,
    /// Line 15: take from the local shared deque.
    LocalShared,
    /// Lines 18–29: the distributed sweep. `untried` is the bitmask of
    /// places not yet visited this round; `probed` records whether the
    /// network has been probed since the last failed remote attempt
    /// (line 19 bookkeeping — the checker flags an attempt with
    /// `probed == false`).
    Remote { untried: u8, probed: bool },
    /// Executing `task`.
    Busy { task: u8 },
    /// Parked (woken by newly mapped local work).
    Dormant,
    /// Halted by a place failure.
    Dead,
}

/// One global model state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    tasks: Vec<Loc>,
    /// Executions per task (exactly-once ⇒ never exceeds 1).
    exec: Vec<u8>,
    /// Tasks that ever migrated off their home place (bitmask).
    migrated: u16,
    /// Tasks with a duplicate delivery still in flight (bitmask).
    dup_ghost: u16,
    /// Ghost destination per task (255 = none).
    dup_dest: Vec<u8>,
    latch: i16,
    phases: Vec<Phase>,
    alive: Vec<bool>,
    drops_left: u8,
    dups_left: u8,
    killed: bool,
    restarted: bool,
}

/// Scenario + mutant context shared by the transition generator.
struct Ctx<'a> {
    sc: &'a ProtocolScenario,
    mutant: Option<ProtocolMutant>,
}

impl<'a> Ctx<'a> {
    fn wpp(&self) -> usize {
        self.sc.workers_per_place as usize
    }

    fn workers(&self) -> usize {
        self.sc.places as usize * self.wpp()
    }

    fn place_of(&self, w: usize) -> u8 {
        (w / self.wpp()) as u8
    }

    fn is(&self, m: ProtocolMutant) -> bool {
        self.mutant == Some(m)
    }

    fn busy_at(&self, s: &State, p: u8) -> u32 {
        (0..self.workers())
            .filter(|&w| self.place_of(w) == p && matches!(s.phases[w], Phase::Busy { .. }))
            .count() as u32
    }

    /// Work a parking worker would see: its own private deque or the
    /// local shared deque (the engine's acquire is atomic in virtual
    /// time, so a worker never parks past visible local work).
    fn work_visible(&self, s: &State, w: usize) -> bool {
        let p = self.place_of(w);
        s.tasks.iter().any(|l| {
            matches!(l, Loc::Private { w: pw } if *pw as usize == w)
                || matches!(l, Loc::Shared { p: sp } if *sp == p)
        })
    }

    /// Algorithm 1 lines 1–8: map a delivered task at place `x`. The
    /// checker recomputes the lines 5–8 predicate independently and
    /// flags any divergence (catches `MapFlexiblePrivateAlways`).
    fn map_deliver(&self, s: &mut State, t: usize, x: u8, bad: &mut BTreeSet<String>) {
        let sensitive = self.sc.tasks[t].sensitive;
        let to_private = if sensitive {
            true // line 3
        } else {
            let busy = self.busy_at(s, x);
            let active = busy > 0;
            let under = busy < self.sc.workers_per_place as u32;
            let faithful = proto::map_flexible_private(active, under);
            let chosen = if self.is(ProtocolMutant::MapFlexiblePrivateAlways) {
                true
            } else {
                faithful
            };
            if chosen != faithful {
                bad.insert(format!(
                    "task {t}: flexible task mapped to a {} deque at place {x} against \
                     Algorithm 1 lines 5-8 (place {})",
                    if chosen { "private" } else { "shared" },
                    if faithful {
                        "is idle/under-utilized"
                    } else {
                        "is saturated"
                    },
                ));
            }
            chosen
        };
        if to_private {
            // The engine prefers a parked/idle worker; first non-busy
            // worker at x, else worker 0 of x.
            let base = x as usize * self.wpp();
            let target = (base..base + self.wpp())
                .find(|&w| !matches!(s.phases[w], Phase::Busy { .. } | Phase::Dead))
                .unwrap_or(base);
            s.tasks[t] = Loc::Private { w: target as u8 };
            if s.phases[target] == Phase::Dormant {
                s.phases[target] = Phase::Idle;
            }
        } else {
            s.tasks[t] = Loc::Shared { p: x };
            let base = x as usize * self.wpp();
            for w in base..base + self.wpp() {
                if s.phases[w] == Phase::Dormant {
                    s.phases[w] = Phase::Idle;
                }
            }
        }
    }

    /// A worker begins executing `t`.
    fn start(&self, s: &mut State, w: usize, t: usize) {
        s.tasks[t] = Loc::Running { w: w as u8 };
        s.phases[w] = Phase::Busy { task: t as u8 };
    }

    /// All successor states of `s`, recording property violations into
    /// `bad` as transitions are generated.
    fn successors(&self, s: &State, bad: &mut BTreeSet<String>) -> Vec<State> {
        let mut out = Vec::new();

        // --- Network delivery (the engine's Arrive event) -----------
        for t in 0..s.tasks.len() {
            let Loc::InFlight { to } = s.tasks[t] else {
                continue;
            };
            if !s.alive[to as usize] {
                // Arrival at a dead place: recovery re-routes to place 0.
                let mut n = s.clone();
                n.tasks[t] = Loc::InFlight { to: 0 };
                out.push(n);
                continue;
            }
            let mut n = s.clone();
            self.map_deliver(&mut n, t, to, bad);
            out.push(n);
            if s.dups_left > 0 && s.dup_ghost & (1 << t) == 0 {
                // The network also duplicated this delivery.
                let mut n = s.clone();
                self.map_deliver(&mut n, t, to, bad);
                n.dup_ghost |= 1 << t;
                n.dup_dest[t] = to;
                n.dups_left -= 1;
                out.push(n);
            }
        }

        // --- Duplicate-delivery arrival -----------------------------
        for t in 0..s.tasks.len() {
            if s.dup_ghost & (1 << t) == 0 {
                continue;
            }
            let mut n = s.clone();
            n.dup_ghost &= !(1 << t);
            let dest = n.dup_dest[t];
            n.dup_dest[t] = 255;
            if self.is(ProtocolMutant::DupDeliveryRemaps) && n.alive[dest as usize] {
                // Buggy dedup: the second copy is mapped again.
                self.map_deliver(&mut n, t, dest, bad);
            }
            // Faithful: the place's task table already saw this id —
            // the duplicate is discarded.
            out.push(n);
        }

        // --- Fail-stop kill and restart -----------------------------
        if let Some(k) = self.sc.faults.kill_place {
            if !s.killed {
                let mut n = s.clone();
                n.killed = true;
                n.alive[k as usize] = false;
                for w in 0..self.workers() {
                    if self.place_of(w) == k && !matches!(n.phases[w], Phase::Busy { .. }) {
                        n.phases[w] = Phase::Dead;
                    }
                }
                // Recover the failed place's queued tasks (running
                // tasks finish at the next task boundary).
                for t in 0..n.tasks.len() {
                    let queued_here = match n.tasks[t] {
                        Loc::Shared { p } => p == k,
                        Loc::Private { w } => self.place_of(w as usize) == k,
                        _ => false,
                    };
                    if queued_here {
                        if self.is(ProtocolMutant::DropRecoveredTasks) {
                            n.tasks[t] = Loc::Lost;
                        } else {
                            let home = self.sc.tasks[t].home;
                            let dest = if home != k { home } else { 0 };
                            n.tasks[t] = Loc::InFlight { to: dest };
                        }
                    }
                }
                out.push(n);
            } else if self.sc.faults.restart && !s.restarted {
                let mut n = s.clone();
                n.restarted = true;
                n.alive[k as usize] = true;
                for w in 0..self.workers() {
                    if self.place_of(w) == k && n.phases[w] == Phase::Dead {
                        n.phases[w] = Phase::Idle;
                    }
                }
                out.push(n);
            }
        }

        // --- Worker steps -------------------------------------------
        for w in 0..self.workers() {
            let p = self.place_of(w);
            match s.phases[w] {
                Phase::Dead | Phase::Dormant => {}
                Phase::Idle => {
                    // Line 9: poll own private deque.
                    let mine: Vec<usize> = (0..s.tasks.len())
                        .filter(
                            |&t| matches!(s.tasks[t], Loc::Private { w: pw } if pw as usize == w),
                        )
                        .collect();
                    if mine.is_empty() {
                        let mut n = s.clone();
                        n.phases[w] = Phase::Probe;
                        out.push(n);
                    } else {
                        for t in mine {
                            let mut n = s.clone();
                            self.start(&mut n, w, t);
                            out.push(n);
                        }
                    }
                }
                Phase::Probe => {
                    // Line 11: the probe itself is a pure step here —
                    // arrivals are the asynchronous deliver transition.
                    let mut n = s.clone();
                    n.phases[w] = Phase::CoWorker;
                    out.push(n);
                }
                Phase::CoWorker => {
                    // Line 13: steal from a co-located worker.
                    let base = p as usize * self.wpp();
                    let mut any = false;
                    for v in base..base + self.wpp() {
                        if v == w {
                            continue;
                        }
                        let theirs: Vec<usize> = (0..s.tasks.len())
                            .filter(
                                |&t| matches!(s.tasks[t], Loc::Private { w: pw } if pw as usize == v),
                            )
                            .collect();
                        if theirs.is_empty() {
                            continue;
                        }
                        any = true;
                        let chunk = if self.is(ProtocolMutant::LocalChunkTwo) {
                            2
                        } else {
                            proto::LOCAL_STEAL_CHUNK
                        };
                        let take: Vec<usize> = theirs.into_iter().take(chunk).collect();
                        if take.len() > proto::LOCAL_STEAL_CHUNK {
                            bad.insert(format!(
                                "worker {w}: co-located steal took {} tasks; Algorithm 1 \
                                 line 13 chunk is {}",
                                take.len(),
                                proto::LOCAL_STEAL_CHUNK,
                            ));
                        }
                        let mut n = s.clone();
                        self.start(&mut n, w, take[0]);
                        for &extra in &take[1..] {
                            n.tasks[extra] = Loc::Private { w: w as u8 };
                        }
                        out.push(n);
                    }
                    if !any {
                        let mut n = s.clone();
                        n.phases[w] = Phase::LocalShared;
                        out.push(n);
                    }
                }
                Phase::LocalShared => {
                    // Line 15: take from the local shared deque.
                    let pooled: Vec<usize> = (0..s.tasks.len())
                        .filter(|&t| matches!(s.tasks[t], Loc::Shared { p: sp } if sp == p))
                        .collect();
                    if pooled.is_empty() {
                        let mut n = s.clone();
                        n.phases[w] = if self.sc.places > 1 {
                            let untried = (0..self.sc.places)
                                .filter(|&q| q != p)
                                .fold(0u8, |m, q| m | (1 << q));
                            // The line 11 probe already ran this round.
                            Phase::Remote {
                                untried,
                                probed: true,
                            }
                        } else if self.work_visible(s, w) {
                            Phase::Idle
                        } else {
                            Phase::Dormant
                        };
                        out.push(n);
                    } else {
                        for t in pooled {
                            let mut n = s.clone();
                            self.start(&mut n, w, t);
                            out.push(n);
                        }
                    }
                }
                Phase::Remote { untried, probed } => {
                    if untried == 0 {
                        // Sweep exhausted: park — unless local work
                        // appeared mid-round (the engine's atomic
                        // acquire would have seen it).
                        let mut n = s.clone();
                        n.phases[w] = if self.work_visible(s, w) {
                            Phase::Idle
                        } else {
                            Phase::Dormant
                        };
                        out.push(n);
                        continue;
                    }
                    for q in 0..self.sc.places {
                        if untried & (1 << q) == 0 {
                            continue;
                        }
                        // Line 19 check: every remote attempt must be
                        // preceded by a network probe since the last
                        // failed one.
                        if !probed {
                            bad.insert(format!(
                                "worker {w}: remote steal attempt at place {q} without \
                                 the line 19 network re-probe after the previous failed \
                                 attempt"
                            ));
                        }
                        let rest = untried & !(1 << q);
                        let after_fail = Phase::Remote {
                            untried: rest,
                            probed: !self.is(ProtocolMutant::SkipReprobe),
                        };
                        // Victim pool: the remote shared deque — plus,
                        // under the sensitive-steal mutant, the remote
                        // workers' private deques.
                        let mut pool: Vec<usize> = Vec::new();
                        if s.alive[q as usize] {
                            if self.is(ProtocolMutant::StealSensitiveRemotely) {
                                pool.extend((0..s.tasks.len()).filter(|&t| {
                                    matches!(s.tasks[t], Loc::Private { w: pw }
                                        if self.place_of(pw as usize) == q)
                                }));
                            }
                            pool.extend((0..s.tasks.len()).filter(
                                |&t| matches!(s.tasks[t], Loc::Shared { p: sp } if sp == q),
                            ));
                        }
                        if pool.is_empty() {
                            let mut n = s.clone();
                            n.phases[w] = after_fail;
                            out.push(n);
                            continue;
                        }
                        let take: Vec<usize> =
                            pool.into_iter().take(proto::REMOTE_STEAL_CHUNK).collect();
                        for &t in &take {
                            if self.sc.tasks[t].sensitive {
                                bad.insert(format!(
                                    "task {t}: sensitive task migrated off its home place \
                                     {q} by a remote steal"
                                ));
                            }
                        }
                        // Successful steal: first task executes, the
                        // extra rides along into the thief's private
                        // deque (migration wrapping).
                        let mut n = s.clone();
                        for &t in &take {
                            n.migrated |= 1 << t;
                        }
                        self.start(&mut n, w, take[0]);
                        for &extra in &take[1..] {
                            n.tasks[extra] = Loc::Private { w: w as u8 };
                        }
                        out.push(n);
                        if s.drops_left > 0 {
                            // The migrate payload is lost in flight:
                            // the thief times out empty-handed and the
                            // victim lease-reclaims the tasks.
                            let mut n = s.clone();
                            for &t in &take {
                                n.tasks[t] = Loc::InFlight { to: q };
                            }
                            n.phases[w] = after_fail;
                            n.drops_left -= 1;
                            out.push(n);
                        }
                    }
                }
                Phase::Busy { task } => {
                    let t = task as usize;
                    let mut n = s.clone();
                    n.exec[t] = n.exec[t].saturating_add(1);
                    if n.exec[t] > 1 {
                        bad.insert(format!(
                            "task {t}: executed {} times (exactly-once violated)",
                            n.exec[t]
                        ));
                    }
                    // Guarded for the dup-remap mutant: only clear the
                    // location this worker actually owns.
                    if n.tasks[t] == (Loc::Running { w: w as u8 }) {
                        n.tasks[t] = Loc::Done;
                    }
                    // Completion spawns the children.
                    for c in 0..n.tasks.len() {
                        if self.sc.tasks[c].parent == Some(t) && n.tasks[c] == Loc::NotSpawned {
                            n.tasks[c] = Loc::InFlight {
                                to: self.sc.tasks[c].home,
                            };
                            n.latch += 1;
                        }
                    }
                    let skip_dec =
                        self.is(ProtocolMutant::SkipLatchDecrement) && s.migrated & (1 << t) != 0;
                    if !skip_dec {
                        n.latch -= 1;
                        if n.latch < 0 {
                            bad.insert("finish latch decremented below zero".to_string());
                        }
                    }
                    n.phases[w] = if n.alive[p as usize] {
                        Phase::Idle
                    } else {
                        Phase::Dead
                    };
                    out.push(n);
                }
            }
        }

        out
    }

    /// Quiescence checks on a transition-free state.
    fn check_terminal(&self, s: &State, bad: &mut BTreeSet<String>) {
        for (t, loc) in s.tasks.iter().enumerate() {
            if *loc != Loc::Done {
                bad.insert(format!(
                    "termination violated: terminal state with task {t} {}",
                    match loc {
                        Loc::Lost => "lost by fail-stop recovery".to_string(),
                        other => format!("stuck at {other:?}"),
                    }
                ));
            }
        }
        if s.latch != 0 && s.tasks.iter().all(|l| *l == Loc::Done) {
            bad.insert(format!(
                "finish latch stuck at {} in a terminal state (lost decrement)",
                s.latch
            ));
        }
    }
}

/// Exhaustively explore one scenario, optionally with a seeded
/// protocol mutant. Violations are deduplicated and sorted.
pub fn explore_protocol(sc: &ProtocolScenario, mutant: Option<ProtocolMutant>) -> Outcome {
    assert!(sc.places >= 1 && sc.places <= 8, "u8 place bitmask");
    assert!(sc.tasks.len() <= 16, "u16 task bitmasks");
    assert_ne!(sc.faults.kill_place, Some(0), "place 0 hosts recovery");
    let ctx = Ctx { sc, mutant };
    let init = State {
        tasks: sc
            .tasks
            .iter()
            .map(|t| {
                if t.parent.is_none() {
                    Loc::InFlight { to: t.home }
                } else {
                    Loc::NotSpawned
                }
            })
            .collect(),
        exec: vec![0; sc.tasks.len()],
        migrated: 0,
        dup_ghost: 0,
        dup_dest: vec![255; sc.tasks.len()],
        latch: sc.tasks.iter().filter(|t| t.parent.is_none()).count() as i16,
        phases: vec![Phase::Idle; ctx.workers()],
        alive: vec![true; sc.places as usize],
        drops_left: sc.faults.max_drops,
        dups_left: sc.faults.max_dups,
        killed: false,
        restarted: false,
    };
    let mut seen: HashSet<State> = HashSet::new();
    seen.insert(init.clone());
    let mut stack = vec![init];
    let mut bad: BTreeSet<String> = BTreeSet::new();
    let mut terminals = 0u64;
    while let Some(s) = stack.pop() {
        let succ = ctx.successors(&s, &mut bad);
        if succ.is_empty() {
            terminals += 1;
            ctx.check_terminal(&s, &mut bad);
        }
        for n in succ {
            if !seen.contains(&n) {
                seen.insert(n.clone());
                stack.push(n);
            }
        }
    }
    Outcome {
        states: seen.len() as u64,
        terminals,
        violations: bad.into_iter().collect(),
    }
}

fn flex(home: u8) -> ModelTask {
    ModelTask {
        home,
        sensitive: false,
        parent: None,
    }
}

fn sens(home: u8) -> ModelTask {
    ModelTask {
        home,
        sensitive: true,
        parent: None,
    }
}

fn child(home: u8, parent: usize) -> ModelTask {
    ModelTask {
        home,
        sensitive: false,
        parent: Some(parent),
    }
}

/// The base scenarios explored by `repro check protocol` and CI. All
/// must be violation-free without a mutant; each mutant is caught by
/// its [`ProtocolMutant::catch_scenario`].
pub fn builtin_scenarios() -> Vec<ProtocolScenario> {
    vec![
        // Sensitive tasks stay pinned while flexible work is raided.
        ProtocolScenario {
            name: "sensitive_pinning",
            places: 2,
            workers_per_place: 1,
            tasks: vec![sens(0), flex(0), flex(0)],
            faults: ModelFaults::default(),
        },
        // Intra-place stealing: line 13's chunk of one.
        ProtocolScenario {
            name: "coworker_chunk",
            places: 1,
            workers_per_place: 2,
            tasks: vec![sens(0), sens(0), sens(0)],
            faults: ModelFaults::default(),
        },
        // A saturated place pools flexible work; remote thieves take
        // chunked steals and migrated tasks release the latch.
        ProtocolScenario {
            name: "saturation_mapping",
            places: 2,
            workers_per_place: 2,
            tasks: vec![flex(0), flex(0), flex(0), flex(0)],
            faults: ModelFaults::default(),
        },
        // A three-place sweep: failed remote attempts must re-probe
        // (line 19) before the next victim.
        ProtocolScenario {
            name: "reprobe_sweep",
            places: 3,
            workers_per_place: 1,
            tasks: vec![flex(0), flex(0), flex(0)],
            faults: ModelFaults::default(),
        },
        // Completion spawns children across places; the finish latch
        // tracks the whole tree.
        ProtocolScenario {
            name: "spawn_tree",
            places: 2,
            workers_per_place: 2,
            tasks: vec![flex(0), child(0, 0), child(1, 0), child(1, 0)],
            faults: ModelFaults::default(),
        },
        // A dropped migrate payload is lease-reclaimed at the victim.
        ProtocolScenario {
            name: "drop_reclaim",
            places: 2,
            workers_per_place: 1,
            tasks: vec![flex(0), flex(0), flex(0)],
            faults: ModelFaults {
                max_drops: 1,
                ..Default::default()
            },
        },
        // A fail-stop kill: queued tasks are recovered, running tasks
        // finish at the task boundary, the latch still reaches zero.
        ProtocolScenario {
            name: "kill_recover",
            places: 3,
            workers_per_place: 1,
            tasks: vec![flex(0), flex(1), flex(1)],
            faults: ModelFaults {
                kill_place: Some(1),
                ..Default::default()
            },
        },
        // The killed place additionally rejoins empty-handed.
        ProtocolScenario {
            name: "kill_restart",
            places: 3,
            workers_per_place: 1,
            tasks: vec![flex(0), flex(1), flex(1)],
            faults: ModelFaults {
                kill_place: Some(1),
                restart: true,
                ..Default::default()
            },
        },
        // Duplicate deliveries must be discarded by task-id dedup.
        ProtocolScenario {
            name: "dup_delivery",
            places: 2,
            workers_per_place: 1,
            tasks: vec![flex(0), flex(0)],
            faults: ModelFaults {
                max_dups: 1,
                ..Default::default()
            },
        },
    ]
}

/// Find a builtin scenario by name.
pub fn scenario_by_name(name: &str) -> Option<ProtocolScenario> {
    builtin_scenarios().into_iter().find(|s| s.name == name)
}

/// Explore every builtin scenario fault-free/mutant-free.
pub fn check_protocol_all() -> Vec<(&'static str, Outcome)> {
    builtin_scenarios()
        .iter()
        .map(|sc| (sc.name, explore_protocol(sc, None)))
        .collect()
}

/// Result of one mutation test.
#[derive(Debug, Clone)]
pub struct MutantCheck {
    /// Mutant name.
    pub mutant: &'static str,
    /// Scenario explored.
    pub scenario: &'static str,
    /// Whether the checker caught it (violations non-empty).
    pub caught: bool,
    /// The violations found.
    pub violations: Vec<String>,
}

/// Re-inject every seeded protocol bug and report whether the checker
/// caught it. CI requires all of them caught.
pub fn check_protocol_mutants() -> Vec<MutantCheck> {
    ProtocolMutant::ALL
        .iter()
        .map(|&m| {
            let name = m.catch_scenario();
            let sc = scenario_by_name(name).expect("catch scenario exists");
            let outcome = explore_protocol(&sc, Some(m));
            MutantCheck {
                mutant: m.name(),
                scenario: name,
                caught: !outcome.violations.is_empty(),
                violations: outcome.violations,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_base_scenarios_are_clean() {
        for (name, outcome) in check_protocol_all() {
            assert!(
                outcome.violations.is_empty(),
                "{name}: {:?}",
                outcome.violations
            );
            assert!(outcome.states > 10, "{name} explored too little");
            assert!(outcome.terminals > 0, "{name} never terminated");
            // Keep the scenarios explorable in CI.
            assert!(
                outcome.states < 2_000_000,
                "{name} exploded to {} states",
                outcome.states
            );
        }
    }

    #[test]
    fn every_seeded_mutant_is_caught_with_the_right_message() {
        let expected = [
            ("skip-reprobe", "line 19"),
            ("steal-sensitive-remotely", "sensitive task migrated"),
            ("local-chunk-two", "line 13 chunk"),
            ("map-flexible-private-always", "lines 5-8"),
            ("skip-latch-decrement", "latch stuck"),
            ("drop-recovered-tasks", "lost by fail-stop"),
            ("dup-delivery-remaps", "exactly-once"),
        ];
        let checks = check_protocol_mutants();
        assert_eq!(checks.len(), expected.len());
        for (check, (mutant, needle)) in checks.iter().zip(expected) {
            assert_eq!(check.mutant, mutant);
            assert!(
                check.caught,
                "mutant {} escaped on {}",
                check.mutant, check.scenario
            );
            assert!(
                check.violations.iter().any(|v| v.contains(needle)),
                "mutant {} caught for the wrong reason on {}: {:?}",
                check.mutant,
                check.scenario,
                check.violations
            );
        }
    }

    #[test]
    fn fault_scenarios_still_terminate_cleanly() {
        for name in [
            "drop_reclaim",
            "kill_recover",
            "kill_restart",
            "dup_delivery",
        ] {
            let sc = scenario_by_name(name).unwrap();
            let o = explore_protocol(&sc, None);
            assert!(o.violations.is_empty(), "{name}: {:?}", o.violations);
            assert!(o.terminals > 0, "{name}");
        }
    }
}
