//! # distws-analyze
//!
//! The correctness-tooling layer: three std-only analysis passes that
//! turn the reproduction's implicit invariants (seeded-RNG
//! discipline, deterministic output ordering, a sound Chase–Lev
//! deque, causally-ordered traces) into machine-checked ones.
//!
//! * [`lint`] — a token-level determinism lint over the workspace's
//!   `src/` trees (string/comment-aware hand-rolled lexer, seven
//!   rules, per-file `// distws-lint: allow(rule)` pragmas). Surface:
//!   `repro lint`.
//! * [`interleave`] — a bounded-DFS schedule explorer ("mini-loom")
//!   that re-states the Chase–Lev deque and the shared FIFO as step
//!   machines and exhaustively checks every interleaving of small
//!   push/pop/steal scenarios for lost tasks, double-takes and
//!   use-after-grow. Surface: `repro check interleave`.
//! * [`hb`] — a vector-clock happens-before validator over
//!   `distws-trace` JSONL runs: spawn ≺ execution, migration ≺ remote
//!   execution, execution ≺ finish-latch release, exactly-once per
//!   task id, per-worker monotonic time. Surface: `repro check hb`,
//!   plus the fault property tests and the chaos sweep.
//! * [`protocol`] — an explicit-state model checker for Algorithm 1
//!   itself: task mapping, the five-tier steal order with the line 19
//!   re-probe, chunk sizes, migration wrapping and finish-latch
//!   termination, explored over every schedule of small place/worker/
//!   task configurations, with optional fault transitions (drop, dup,
//!   fail-stop kill, restart), cluster-era recovery transitions
//!   (incarnation epochs, custody polls, disown fences mirroring
//!   `distws-cluster`) and seeded protocol mutants that the checker
//!   must catch. Surface: `repro check protocol` and
//!   `repro check mutants`.
//! * [`liveness`] — temporal checking over the same protocol graph:
//!   a nested-DFS accepting-cycle detector with weak fairness on
//!   workers and message delivery, checking eventual task execution,
//!   lifeline wakeup, and steal-retry progress, with lasso (stem +
//!   cycle) counterexamples for the seeded livelock mutants. Surface:
//!   `repro check liveness` and the liveness half of
//!   `repro check mutants`.
//! * [`reduce`] — the shared memoized-DFS exploration engine with
//!   ample-set partial-order reduction (visited-proviso cycle guard),
//!   used by both [`protocol`] and [`interleave`].
//! * [`canon`] — symmetry canonicalization (place/task orbit
//!   representatives) and compact bit-packed state keys for the
//!   protocol model's reduced mode.
//! * [`tla`] — a TLA+ exporter that renders a protocol scenario's
//!   transition relation as a TLC-checkable module. Surface:
//!   `repro check tla`.
//! * [`conform`] — a steal-order conformance pass that replays real
//!   `*.trace.jsonl` streams against the Algorithm 1 automaton: tier
//!   monotonicity per worker round, success justification by prior
//!   failed attempts, the line 19 re-probe between remote attempts,
//!   and the per-policy remote chunk bound. Surface: `repro conform`,
//!   plus `repro trace` and `repro chaos --validate`.
//!
//! All passes are deterministic: same input, same report, byte for
//! byte — the tooling obeys the invariants it enforces.

#![forbid(unsafe_code)]

pub mod canon;
pub mod conform;
pub mod hb;
pub mod interleave;
pub mod lexer;
pub mod lint;
pub mod liveness;
pub mod protocol;
pub mod reduce;
pub mod tla;

pub use conform::{conform_lines, conform_str, ConformConfig, ConformReport, ConformViolation};
pub use hb::{validate_lines, validate_str, HbReport, HbViolation};
pub use interleave::{
    builtin_scenarios, check_all, explore, explore_fifo, fifo_scenario, Outcome, Scenario,
};
pub use lint::{lint_source, lint_workspace, Rule, Violation};
pub use liveness::{check_liveness, Lasso, LivenessReport, Property};
pub use protocol::{
    builtin_scenarios as protocol_scenarios, check_protocol_all, check_protocol_mutants, era_name,
    explore_protocol, explore_protocol_mode, scenario_by_name, Era, ModelFaults, ModelTask,
    MutantCheck, ProtocolMutant, ProtocolScenario,
};
pub use reduce::{ExploreStats, Mode};
pub use tla::export_tla;
