//! # distws-analyze
//!
//! The correctness-tooling layer: three std-only analysis passes that
//! turn the reproduction's implicit invariants (seeded-RNG
//! discipline, deterministic output ordering, a sound Chase–Lev
//! deque, causally-ordered traces) into machine-checked ones.
//!
//! * [`lint`] — a token-level determinism lint over the workspace's
//!   `src/` trees (string/comment-aware hand-rolled lexer, five rules,
//!   per-file `// distws-lint: allow(rule)` pragmas). Surface:
//!   `repro lint`.
//! * [`interleave`] — a bounded-DFS schedule explorer ("mini-loom")
//!   that re-states the Chase–Lev deque and the shared FIFO as step
//!   machines and exhaustively checks every interleaving of small
//!   push/pop/steal scenarios for lost tasks, double-takes and
//!   use-after-grow. Surface: `repro check interleave`.
//! * [`hb`] — a vector-clock happens-before validator over
//!   `distws-trace` JSONL runs: spawn ≺ execution, migration ≺ remote
//!   execution, execution ≺ finish-latch release, exactly-once per
//!   task id, per-worker monotonic time. Surface: `repro check hb`,
//!   plus the fault property tests and the chaos sweep.
//!
//! All passes are deterministic: same input, same report, byte for
//! byte — the tooling obeys the invariants it enforces.

#![forbid(unsafe_code)]

pub mod hb;
pub mod interleave;
pub mod lexer;
pub mod lint;

pub use hb::{validate_lines, validate_str, HbReport, HbViolation};
pub use interleave::{
    builtin_scenarios, check_all, explore, explore_fifo, fifo_scenario, Outcome, Scenario,
};
pub use lint::{lint_source, lint_workspace, Rule, Violation};
