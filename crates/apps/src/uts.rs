//! **UTS — Unbalanced Tree Search** (§X comparison workload).
//!
//! Counts the nodes of an implicitly defined, highly unbalanced tree.
//! Each node's child count is derived deterministically from a hash of
//! the node's path, geometric-distribution style with depth-decaying
//! expectation, so subtree sizes vary wildly and cannot be predicted
//! without traversal — the canonical stress test for dynamic load
//! balancing, and the benchmark on which the paper compares DistWS
//! against random stealing and lifeline-based load balancing.
//!
//! Every task is *locality-flexible* with an empty footprint: UTS has
//! no data to move, which is exactly why the paper notes "DistWS does
//! not incur any overhead on the UTS problem" even though its selective
//! machinery buys nothing here.
//!
//! Validation: the parallel node count must equal a sequential count
//! of the same tree.

use distws_core::rng::SplitMix64;
use distws_core::{ClusterConfig, Locality, PlaceId, TaskScope, TaskSpec, Workload};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Virtual cost of expanding one node (SHA-1 evaluation in classic
/// UTS; ns).
const NS_PER_NODE: u64 = 4_000;

/// UTS tree shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct UtsParams {
    /// Root branching factor.
    pub root_children: u32,
    /// Expected branching at depth 1 (decays linearly to 0 at
    /// `max_depth`).
    pub b0: f64,
    /// Maximum depth.
    pub max_depth: u32,
    /// Tree seed.
    pub seed: u64,
}

/// Deterministic child count of a node with hash `h` at `depth`.
fn child_count(p: &UtsParams, h: u64, depth: u32) -> u32 {
    if depth >= p.max_depth {
        return 0;
    }
    if depth == 0 {
        return p.root_children;
    }
    // Expected branching decays with depth; draw from a geometric-ish
    // distribution using the node hash.
    let decay = 1.0 - depth as f64 / p.max_depth as f64;
    let b = p.b0 * decay;
    let mut rng = SplitMix64::new(h);
    let u = rng.next_f64();
    // Geometric with mean b: P(k children) ~ q^k, q = b/(b+1).
    let q = b / (b + 1.0);
    if q <= 0.0 {
        return 0;
    }
    let k = (u.ln() / q.ln()).floor();
    k.clamp(0.0, 10.0) as u32
}

fn child_hash(h: u64, i: u32) -> u64 {
    let mut r = SplitMix64::new(h ^ (0x9E37_79B9 + i as u64));
    r.next_u64()
}

/// Sequential traversal (golden count).
fn count_sequential(p: &UtsParams) -> u64 {
    let mut stack = vec![(p.seed, 0u32)];
    let mut count = 0u64;
    while let Some((h, d)) = stack.pop() {
        count += 1;
        let c = child_count(p, h, d);
        for i in 0..c {
            stack.push((child_hash(h, i), d + 1));
        }
    }
    count
}

/// The UTS workload.
pub struct Uts {
    /// Tree shape.
    pub params: UtsParams,
    /// Nodes processed per task before spawning children as separate
    /// tasks (grain control).
    pub grain: usize,
    state: Mutex<Option<RunState>>,
}

struct RunState {
    counted: Arc<AtomicU64>,
    expect: u64,
}

impl Default for Uts {
    fn default() -> Self {
        Uts::new(
            UtsParams {
                root_children: 256,
                b0: 2.8,
                max_depth: 14,
                seed: 19,
            },
            32,
        )
    }
}

impl Uts {
    /// UTS with explicit shape parameters.
    pub fn new(params: UtsParams, grain: usize) -> Self {
        Uts {
            params,
            grain,
            state: Mutex::new(None),
        }
    }

    /// Tiny instance for tests.
    pub fn quick() -> Self {
        Uts::new(
            UtsParams {
                root_children: 16,
                b0: 1.8,
                max_depth: 8,
                seed: 19,
            },
            8,
        )
    }

    /// Number of tree nodes (runs the sequential traversal).
    pub fn tree_size(&self) -> u64 {
        count_sequential(&self.params)
    }
}

struct Shared {
    params: UtsParams,
    grain: usize,
    counted: Arc<AtomicU64>,
}

/// A task that expands a frontier of nodes. It processes up to `grain`
/// nodes depth-first; any remaining frontier is split into child tasks.
fn subtree_task(sh: Arc<Shared>, frontier: Vec<(u64, u32)>) -> TaskSpec {
    let est = NS_PER_NODE * sh.grain.min(8) as u64;
    let sh2 = Arc::clone(&sh);
    let body = move |s: &mut dyn TaskScope| {
        let mut stack = frontier;
        let mut processed = 0u64;
        while let Some((h, d)) = stack.pop() {
            processed += 1;
            let c = child_count(&sh2.params, h, d);
            for i in 0..c {
                stack.push((child_hash(h, i), d + 1));
            }
            if processed as usize >= sh2.grain {
                break;
            }
        }
        sh2.counted.fetch_add(processed, Ordering::Relaxed);
        s.charge(NS_PER_NODE * processed);
        // Split the remaining frontier into two child tasks (binary
        // split keeps task sizes workable without exploding counts).
        if !stack.is_empty() {
            let here = s.here();
            if stack.len() == 1 {
                s.spawn(subtree_task_at(Arc::clone(&sh2), stack, here));
            } else {
                let half = stack.len() / 2;
                let rest = stack.split_off(half);
                s.spawn(subtree_task_at(Arc::clone(&sh2), stack, here));
                s.spawn(subtree_task_at(Arc::clone(&sh2), rest, here));
            }
        }
    };
    TaskSpec::new(PlaceId(0), Locality::Flexible, est, "uts", body)
}

fn subtree_task_at(sh: Arc<Shared>, frontier: Vec<(u64, u32)>, home: PlaceId) -> TaskSpec {
    let mut t = subtree_task(sh, frontier);
    t.home = home;
    t
}

impl Workload for Uts {
    fn name(&self) -> String {
        "UTS".into()
    }

    fn roots(&self, _cfg: &ClusterConfig) -> Vec<TaskSpec> {
        let counted = Arc::new(AtomicU64::new(0));
        *self.state.lock().unwrap() = Some(RunState {
            counted: Arc::clone(&counted),
            expect: count_sequential(&self.params),
        });
        let sh = Arc::new(Shared {
            params: self.params,
            grain: self.grain,
            counted,
        });
        // Single root at place 0: the pathological imbalance UTS is
        // famous for.
        vec![subtree_task(sh, vec![(self.params.seed, 0)])]
    }

    fn validate(&self) -> Result<(), String> {
        let guard = self.state.lock().unwrap();
        let st = guard.as_ref().ok_or("uts: no run state")?;
        let got = st.counted.load(Ordering::Relaxed);
        if got != st.expect {
            return Err(format!("node count {got} != sequential {}", st.expect));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_is_deterministic() {
        let p = UtsParams {
            root_children: 16,
            b0: 1.8,
            max_depth: 8,
            seed: 19,
        };
        assert_eq!(count_sequential(&p), count_sequential(&p));
    }

    #[test]
    fn tree_is_nontrivial_and_unbalanced() {
        let u = Uts::quick();
        let n = u.tree_size();
        assert!(n > 100, "tree too small: {n}");
        // Subtree sizes under the root should vary (unbalance check).
        let p = u.params;
        let sizes: Vec<u64> = (0..p.root_children)
            .map(|i| {
                let sub = UtsParams {
                    root_children: 0,
                    seed: child_hash(p.seed, i),
                    ..p
                };
                // count subtree rooted at depth 1
                let mut stack = vec![(sub.seed, 1u32)];
                let mut c = 0u64;
                while let Some((h, d)) = stack.pop() {
                    c += 1;
                    for j in 0..child_count(&p, h, d) {
                        stack.push((child_hash(h, j), d + 1));
                    }
                }
                c
            })
            .collect();
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        assert!(
            max >= &(min * 2),
            "subtrees suspiciously balanced: {sizes:?}"
        );
    }

    #[test]
    fn depth_limit_holds() {
        let p = UtsParams {
            root_children: 4,
            b0: 3.0,
            max_depth: 3,
            seed: 1,
        };
        assert_eq!(child_count(&p, 12345, 3), 0);
        assert_eq!(child_count(&p, 12345, 7), 0);
    }

    #[test]
    fn root_branching_is_exact() {
        let p = UtsParams {
            root_children: 7,
            b0: 2.0,
            max_depth: 5,
            seed: 9,
        };
        assert_eq!(child_count(&p, p.seed, 0), 7);
    }
}
