//! Shared utilities for the application suite.

use std::sync::Arc;

/// A heap array that multiple tasks may mutate through **disjoint
/// ranges**.
///
/// The work-stealing applications (quicksort, merge sort, Turing ring)
/// partition an array into segments and hand each segment to exactly
/// one task. Rust cannot prove that property across `Arc`-captured
/// closures, so this wrapper provides unchecked range access with the
/// invariant documented here:
///
/// > **Safety contract**: at any instant, no two live references
/// > obtained from [`SharedSlice::slice_mut`] may overlap. The
/// > applications guarantee this structurally — each task's range is
/// > carved out by its parent and never aliased (the same discipline
/// > X10/Cilk array programs rely on).
#[derive(Debug)]
pub struct SharedSlice<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: access discipline per the documented contract; T: Send
// suffices because disjoint ranges are touched by at most one thread.
unsafe impl<T: Send> Send for SharedSlice<T> {}
// SAFETY: same contract — `&SharedSlice` only yields aliased data when
// callers break the documented range discipline.
unsafe impl<T: Send> Sync for SharedSlice<T> {}

impl<T> SharedSlice<T> {
    /// Wrap a vector.
    pub fn new(data: Vec<T>) -> Arc<Self> {
        let boxed = data.into_boxed_slice();
        let len = boxed.len();
        let ptr = Box::into_raw(boxed) as *mut T;
        Arc::new(SharedSlice { ptr, len })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable access to a range.
    ///
    /// # Safety
    /// The caller must guarantee the range does not overlap any other
    /// live reference obtained from this array (see type docs).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, end: usize) -> &mut [T] {
        assert!(
            start <= end && end <= self.len,
            "range {start}..{end} out of bounds {}",
            self.len
        );
        std::slice::from_raw_parts_mut(self.ptr.add(start), end - start)
    }

    /// Shared access to a range.
    ///
    /// # Safety
    /// The caller must guarantee no overlapping mutable reference is
    /// live (see type docs).
    pub unsafe fn slice(&self, start: usize, end: usize) -> &[T] {
        assert!(
            start <= end && end <= self.len,
            "range {start}..{end} out of bounds {}",
            self.len
        );
        std::slice::from_raw_parts(self.ptr.add(start), end - start)
    }

    /// Consume the (uniquely owned) wrapper, returning the vector.
    /// Panics if other `Arc` handles are still alive.
    pub fn try_unwrap(this: Arc<Self>) -> Vec<T> {
        match Arc::try_unwrap(this) {
            Ok(s) => {
                // SAFETY: sole owner; reconstitute the box and prevent
                // the Drop impl from double-freeing.
                let v = unsafe {
                    Box::from_raw(std::ptr::slice_from_raw_parts_mut(s.ptr, s.len)).into_vec()
                };
                std::mem::forget(s);
                v
            }
            Err(_) => panic!("SharedSlice still shared"),
        }
    }

    /// Snapshot of the full contents (requires exclusive logical
    /// access, e.g. after a run completed).
    ///
    /// # Safety
    /// No task may be mutating the array concurrently.
    pub unsafe fn snapshot(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.slice(0, self.len).to_vec()
    }
}

impl<T> Drop for SharedSlice<T> {
    fn drop(&mut self) {
        // SAFETY: constructed from Box::into_raw in `new`.
        unsafe {
            drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                self.ptr, self.len,
            )));
        }
    }
}

/// Fold a slice of f64s with Kahan summation (used by validation code
/// that compares across schedulers, where naive summation order
/// differences would create false mismatches).
pub fn kahan_sum(xs: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut c = 0.0;
    for x in xs {
        let y = x - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_ranges_mutate_independently() {
        let s = SharedSlice::new(vec![0u32; 10]);
        // SAFETY: the two ranges are disjoint and nothing else holds
        // a reference.
        unsafe {
            let a = s.slice_mut(0, 5);
            let b = s.slice_mut(5, 10);
            a.fill(1);
            b.fill(2);
        }
        // SAFETY: the slices above were dropped; sole access again.
        let v = unsafe { s.snapshot() };
        assert_eq!(&v[..5], &[1; 5]);
        assert_eq!(&v[5..], &[2; 5]);
    }

    #[test]
    fn unwrap_returns_storage() {
        let s = SharedSlice::new(vec![7u8; 3]);
        assert_eq!(SharedSlice::try_unwrap(s), vec![7u8; 3]);
    }

    #[test]
    fn kahan_handles_catastrophic_cancellation() {
        // 1 + 1e-16 repeated: naive f64 sum loses the small terms.
        let xs = std::iter::once(1.0).chain(std::iter::repeat_n(1e-16, 1_000_000));
        let s = kahan_sum(xs);
        assert!((s - (1.0 + 1e-10)).abs() < 1e-12, "kahan sum {s}");
    }
}
