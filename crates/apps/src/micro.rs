//! §VIII.2 **granularity study** micro-applications.
//!
//! The paper's separate study runs five small applications whose task
//! granularities (0.005 ms – 0.93 ms) are far below the main suite's
//! (1.1 ms – 899 ms) and shows DistWS performing *worse* on them —
//! fine-grained tasks cannot amortize a distributed steal. These are
//! real implementations with exact validation; their task sizes are
//! tuned to the granularities the paper reports:
//!
//! | app | paper granularity |
//! |---|---|
//! | merge sort | 0.12 ms |
//! | skyline matrix multiplication | 0.93 ms |
//! | Monte-Carlo π | 0.005 ms |
//! | matrix chain multiplication | 0.09 ms |
//! | random access | 0.006 ms |

use crate::util::SharedSlice;
use distws_core::rng::SplitMix64;
use distws_core::{
    BlockDist, ClusterConfig, FinishLatch, Locality, PlaceId, TaskScope, TaskSpec, Workload,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// All five micro workloads, paper order.
pub fn micro_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(MergeSortMicro::default()),
        Box::new(SkylineMM::default()),
        Box::new(MonteCarloPi::default()),
        Box::new(MatrixChain::default()),
        Box::new(RandomAccess::default()),
    ]
}

// ---------------------------------------------------------------------------
// Merge sort (0.12 ms tasks)
// ---------------------------------------------------------------------------

/// Bottom-up parallel merge sort: phase `r` merges adjacent runs of
/// length `2^r` with one flexible task per merge pair, phases separated
/// by finish latches.
pub struct MergeSortMicro {
    /// Element count (power of two for clean phases).
    pub n: usize,
    /// Initial run length (sorted sequentially inside the leaf tasks).
    pub run: usize,
    /// Input seed.
    pub seed: u64,
    state: Mutex<Option<MsState>>,
}

struct MsState {
    a: Arc<SharedSlice<u64>>,
    b: Arc<SharedSlice<u64>>,
    phases: u32,
    expect_sum: u64,
    n: usize,
}

impl Default for MergeSortMicro {
    fn default() -> Self {
        MergeSortMicro::new(1 << 16, 1 << 10, 3)
    }
}

impl MergeSortMicro {
    /// Sort `n` elements with initial runs of length `run`.
    pub fn new(n: usize, run: usize, seed: u64) -> Self {
        assert!(n.is_power_of_two() && run.is_power_of_two() && run <= n);
        MergeSortMicro {
            n,
            run,
            seed,
            state: Mutex::new(None),
        }
    }

    /// Tiny instance for tests.
    pub fn quick() -> Self {
        MergeSortMicro::new(1 << 12, 1 << 8, 3)
    }
}

fn ms_phase(st: Arc<MsState>, dist: BlockDist, phase: u32) -> TaskSpec {
    let body = move |s: &mut dyn TaskScope| {
        if phase > st.phases {
            return;
        }
        let run = st.a.len() >> (st.phases - phase + 1) << 1; // current run after this phase
        let in_a = phase % 2 == 1; // odd phases read a, write b
        let pairs = st.n / run;
        let next = ms_phase(Arc::clone(&st), dist, phase + 1);
        let latch = FinishLatch::new(pairs, next);
        for k in 0..pairs {
            let lo = k * run;
            let st2 = Arc::clone(&st);
            let home = dist.place_of(lo.min(dist.len() - 1));
            let t = TaskSpec::new(
                home,
                Locality::Flexible,
                120_000, // 0.12 ms, the paper's merge-sort granularity
                "msort-merge",
                move |_s: &mut dyn TaskScope| {
                    // SAFETY: merge pairs own disjoint ranges in both
                    // buffers.
                    let (src, dst) = unsafe {
                        if in_a {
                            (st2.a.slice(lo, lo + run), st2.b.slice_mut(lo, lo + run))
                        } else {
                            (st2.b.slice(lo, lo + run), st2.a.slice_mut(lo, lo + run))
                        }
                    };
                    merge_halves(src, dst);
                },
            )
            .with_latch(Arc::clone(&latch));
            s.spawn(t);
        }
    };
    TaskSpec::new(PlaceId(0), Locality::Sensitive, 2_000, "msort-phase", body)
}

fn merge_halves(src: &[u64], dst: &mut [u64]) {
    let mid = src.len() / 2;
    let (mut i, mut j) = (0usize, mid);
    for d in dst.iter_mut() {
        if i < mid && (j >= src.len() || src[i] <= src[j]) {
            *d = src[i];
            i += 1;
        } else {
            *d = src[j];
            j += 1;
        }
    }
}

impl Workload for MergeSortMicro {
    fn name(&self) -> String {
        "MergeSort".into()
    }

    fn roots(&self, cfg: &ClusterConfig) -> Vec<TaskSpec> {
        let mut rng = SplitMix64::new(self.seed);
        let mut data: Vec<u64> = (0..self.n).map(|_| rng.next_u64()).collect();
        let expect_sum = data.iter().fold(0u64, |a, &x| a.wrapping_add(x));
        // Pre-sort the initial runs (leaf granularity control).
        for chunk in data.chunks_mut(self.run) {
            chunk.sort_unstable();
        }
        let phases = (self.n / self.run).trailing_zeros();
        let st = Arc::new(MsState {
            a: SharedSlice::new(data.clone()),
            b: SharedSlice::new(data),
            phases,
            expect_sum,
            n: self.n,
        });
        *self.state.lock().unwrap() = Some(MsState {
            a: Arc::clone(&st.a),
            b: Arc::clone(&st.b),
            phases,
            expect_sum,
            n: self.n,
        });
        vec![ms_phase(st, BlockDist::new(self.n, cfg.places), 1)]
    }

    fn validate(&self) -> Result<(), String> {
        let guard = self.state.lock().unwrap();
        let st = guard.as_ref().ok_or("mergesort: no run state")?;
        // Final data lives in `a` if the phase count is even, else `b`.
        // SAFETY: validation runs after the simulation drained, so no
        // task aliases either buffer.
        let out = unsafe {
            if st.phases % 2 == 0 {
                st.a.slice(0, st.n)
            } else {
                st.b.slice(0, st.n)
            }
        };
        if !out.windows(2).all(|w| w[0] <= w[1]) {
            return Err("not sorted".into());
        }
        let sum = out.iter().fold(0u64, |a, &x| a.wrapping_add(x));
        if sum != st.expect_sum {
            return Err("not a permutation".into());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Skyline matrix multiplication (0.93 ms tasks)
// ---------------------------------------------------------------------------

/// Multiply a skyline (variable row-profile) matrix by a vector, one
/// flexible task per row chunk.
pub struct SkylineMM {
    /// Matrix dimension.
    pub n: usize,
    /// Rows per task.
    pub rows_per_task: usize,
    /// Input seed.
    pub seed: u64,
    state: Mutex<Option<SkState>>,
}

struct SkState {
    y: Arc<SharedSlice<i64>>,
    expect: Vec<i64>,
}

impl Default for SkylineMM {
    fn default() -> Self {
        SkylineMM::new(1_024, 16, 5)
    }
}

impl SkylineMM {
    /// An `n × n` skyline matrix.
    pub fn new(n: usize, rows_per_task: usize, seed: u64) -> Self {
        SkylineMM {
            n,
            rows_per_task,
            seed,
            state: Mutex::new(None),
        }
    }

    /// Tiny instance for tests.
    pub fn quick() -> Self {
        SkylineMM::new(128, 8, 5)
    }

    /// Row `i` stores columns `[skyline[i], i]` (lower triangular
    /// profile). Integer entries keep validation exact.
    fn gen(&self) -> (Vec<usize>, Vec<Vec<i64>>, Vec<i64>) {
        let mut rng = SplitMix64::new(self.seed);
        let mut skyline = Vec::with_capacity(self.n);
        let mut rows = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let start = rng.below_usize(i + 1);
            skyline.push(start);
            rows.push(
                (start..=i)
                    .map(|_| rng.below(2_000) as i64 - 1_000)
                    .collect(),
            );
        }
        let x: Vec<i64> = (0..self.n)
            .map(|_| rng.below(2_000) as i64 - 1_000)
            .collect();
        (skyline, rows, x)
    }
}

impl Workload for SkylineMM {
    fn name(&self) -> String {
        "SkylineMM".into()
    }

    fn roots(&self, cfg: &ClusterConfig) -> Vec<TaskSpec> {
        let (skyline, rows, x) = self.gen();
        // Sequential golden product.
        let expect: Vec<i64> = (0..self.n)
            .map(|i| {
                rows[i]
                    .iter()
                    .zip(&x[skyline[i]..=i])
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect();
        let y = SharedSlice::new(vec![0i64; self.n]);
        *self.state.lock().unwrap() = Some(SkState {
            y: Arc::clone(&y),
            expect,
        });
        let rows = Arc::new(rows);
        let skyline = Arc::new(skyline);
        let x = Arc::new(x);
        let dist = BlockDist::new(self.n, cfg.places);
        let mut out = Vec::new();
        let mut lo = 0usize;
        while lo < self.n {
            let hi = (lo + self.rows_per_task).min(self.n);
            let (rows, skyline, x, y) = (
                Arc::clone(&rows),
                Arc::clone(&skyline),
                Arc::clone(&x),
                Arc::clone(&y),
            );
            let est_ops: usize = (lo..hi).map(|i| i - skyline[i] + 1).sum();
            out.push(TaskSpec::new(
                dist.place_of(lo),
                Locality::Flexible,
                (est_ops as u64) * 15 + 2_000,
                "skyline-rows",
                move |_s: &mut dyn TaskScope| {
                    // SAFETY: row chunks write disjoint y ranges.
                    let yc = unsafe { y.slice_mut(lo, hi) };
                    for (k, i) in (lo..hi).enumerate() {
                        yc[k] = rows[i]
                            .iter()
                            .zip(&x[skyline[i]..=i])
                            .map(|(a, b)| a * b)
                            .sum();
                    }
                },
            ));
            lo = hi;
        }
        out
    }

    fn validate(&self) -> Result<(), String> {
        let guard = self.state.lock().unwrap();
        let st = guard.as_ref().ok_or("skyline: no run state")?;
        // SAFETY: validation runs after the simulation drained, so no
        // task aliases `y`.
        let got = unsafe { st.y.slice(0, st.expect.len()) };
        if got != st.expect.as_slice() {
            return Err("product differs from sequential result".into());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Monte-Carlo π (0.005 ms tasks)
// ---------------------------------------------------------------------------

/// Estimate π by dart throwing; each tiny task handles one seeded
/// sample block, so the hit count is scheduler-independent.
pub struct MonteCarloPi {
    /// Total samples.
    pub samples: u64,
    /// Samples per task.
    pub per_task: u64,
    /// Base seed.
    pub seed: u64,
    state: Mutex<Option<PiState>>,
}

struct PiState {
    hits: Arc<AtomicU64>,
    expect_hits: u64,
    samples: u64,
}

impl Default for MonteCarloPi {
    fn default() -> Self {
        MonteCarloPi::new(2_000_000, 1_000, 17)
    }
}

impl MonteCarloPi {
    /// `samples` darts in blocks of `per_task`.
    pub fn new(samples: u64, per_task: u64, seed: u64) -> Self {
        MonteCarloPi {
            samples,
            per_task,
            seed,
            state: Mutex::new(None),
        }
    }

    /// Tiny instance for tests.
    pub fn quick() -> Self {
        MonteCarloPi::new(100_000, 500, 17)
    }

    fn block_hits(seed: u64, n: u64) -> u64 {
        let mut rng = SplitMix64::new(seed);
        let mut hits = 0;
        for _ in 0..n {
            let x = rng.next_f64();
            let y = rng.next_f64();
            if x * x + y * y <= 1.0 {
                hits += 1;
            }
        }
        hits
    }
}

impl Workload for MonteCarloPi {
    fn name(&self) -> String {
        "MonteCarloPi".into()
    }

    fn roots(&self, cfg: &ClusterConfig) -> Vec<TaskSpec> {
        let blocks = self.samples.div_ceil(self.per_task);
        let expect_hits: u64 = (0..blocks)
            .map(|b| {
                let n = self.per_task.min(self.samples - b * self.per_task);
                Self::block_hits(self.seed ^ (b + 1), n)
            })
            .sum();
        let hits = Arc::new(AtomicU64::new(0));
        *self.state.lock().unwrap() = Some(PiState {
            hits: Arc::clone(&hits),
            expect_hits,
            samples: self.samples,
        });
        let mut out = Vec::new();
        for b in 0..blocks {
            let n = self.per_task.min(self.samples - b * self.per_task);
            let seed = self.seed ^ (b + 1);
            let hits = Arc::clone(&hits);
            out.push(TaskSpec::new(
                PlaceId((b % cfg.places as u64) as u32),
                Locality::Flexible,
                5_000, // 0.005 ms, the paper's π granularity
                "pi-block",
                move |_s: &mut dyn TaskScope| {
                    hits.fetch_add(Self::block_hits(seed, n), Ordering::Relaxed);
                },
            ));
        }
        out
    }

    fn validate(&self) -> Result<(), String> {
        let guard = self.state.lock().unwrap();
        let st = guard.as_ref().ok_or("pi: no run state")?;
        let got = st.hits.load(Ordering::Relaxed);
        if got != st.expect_hits {
            return Err(format!("hits {got} != expected {}", st.expect_hits));
        }
        let pi = 4.0 * got as f64 / st.samples as f64;
        if (pi - std::f64::consts::PI).abs() > 0.05 {
            return Err(format!("π estimate {pi} implausibly bad"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Matrix chain multiplication (0.09 ms tasks)
// ---------------------------------------------------------------------------

/// The classic O(n³) dynamic program over parenthesisations, one task
/// per diagonal chunk with a latch barrier between diagonals.
pub struct MatrixChain {
    /// Number of matrices in the chain.
    pub n: usize,
    /// Cells per task along a diagonal.
    pub cells_per_task: usize,
    /// Dimension seed.
    pub seed: u64,
    state: Mutex<Option<McState>>,
}

struct McState {
    m: Arc<SharedSlice<u64>>,
    n: usize,
    expect: u64,
}

impl Default for MatrixChain {
    fn default() -> Self {
        MatrixChain::new(192, 8, 29)
    }
}

impl MatrixChain {
    /// A chain of `n` matrices with random dimensions.
    pub fn new(n: usize, cells_per_task: usize, seed: u64) -> Self {
        assert!(n >= 2);
        MatrixChain {
            n,
            cells_per_task,
            seed,
            state: Mutex::new(None),
        }
    }

    /// Tiny instance for tests.
    pub fn quick() -> Self {
        MatrixChain::new(48, 4, 29)
    }

    fn dims(&self) -> Vec<u64> {
        let mut rng = SplitMix64::new(self.seed);
        (0..=self.n).map(|_| 5 + rng.below(95)).collect()
    }

    fn golden(dims: &[u64]) -> u64 {
        let n = dims.len() - 1;
        let mut m = vec![0u64; n * n];
        for len in 2..=n {
            for i in 0..=n - len {
                let j = i + len - 1;
                m[i * n + j] = (i..j)
                    .map(|k| {
                        m[i * n + k] + m[(k + 1) * n + j] + dims[i] * dims[k + 1] * dims[j + 1]
                    })
                    .min()
                    .unwrap();
            }
        }
        m[n - 1]
    }
}

fn mc_diagonal(
    m: Arc<SharedSlice<u64>>,
    dims: Arc<Vec<u64>>,
    n: usize,
    len: usize,
    cells_per_task: usize,
    places: u32,
) -> TaskSpec {
    let body = move |s: &mut dyn TaskScope| {
        if len > n {
            return;
        }
        let cells: Vec<usize> = (0..=n - len).collect();
        let next = mc_diagonal(
            Arc::clone(&m),
            Arc::clone(&dims),
            n,
            len + 1,
            cells_per_task,
            places,
        );
        let chunks: Vec<Vec<usize>> = cells.chunks(cells_per_task).map(|c| c.to_vec()).collect();
        let latch = FinishLatch::new(chunks.len(), next);
        for (ci, chunk) in chunks.into_iter().enumerate() {
            let (m, dims) = (Arc::clone(&m), Arc::clone(&dims));
            let est = (chunk.len() * (len - 1)) as u64 * 90 + 2_000;
            s.spawn(
                TaskSpec::new(
                    PlaceId((ci % places as usize) as u32),
                    Locality::Flexible,
                    est,
                    "mchain-cells",
                    move |_s: &mut dyn TaskScope| {
                        // SAFETY: each diagonal cell is written once by
                        // exactly one task; reads target previous
                        // diagonals, already final.
                        let mm = unsafe { m.slice_mut(0, n * n) };
                        for &i in &chunk {
                            let j = i + len - 1;
                            mm[i * n + j] = (i..j)
                                .map(|k| {
                                    mm[i * n + k]
                                        + mm[(k + 1) * n + j]
                                        + dims[i] * dims[k + 1] * dims[j + 1]
                                })
                                .min()
                                .unwrap();
                        }
                    },
                )
                .with_latch(Arc::clone(&latch)),
            );
        }
    };
    TaskSpec::new(PlaceId(0), Locality::Sensitive, 2_000, "mchain-diag", body)
}

impl Workload for MatrixChain {
    fn name(&self) -> String {
        "MatrixChain".into()
    }

    fn roots(&self, cfg: &ClusterConfig) -> Vec<TaskSpec> {
        let dims = Arc::new(self.dims());
        let expect = Self::golden(&dims);
        let m = SharedSlice::new(vec![0u64; self.n * self.n]);
        *self.state.lock().unwrap() = Some(McState {
            m: Arc::clone(&m),
            n: self.n,
            expect,
        });
        vec![mc_diagonal(
            m,
            dims,
            self.n,
            2,
            self.cells_per_task,
            cfg.places,
        )]
    }

    fn validate(&self) -> Result<(), String> {
        let guard = self.state.lock().unwrap();
        let st = guard.as_ref().ok_or("mchain: no run state")?;
        // SAFETY: validation runs after the simulation drained, so no
        // task aliases the cost matrix.
        let mm = unsafe { st.m.slice(0, st.n * st.n) };
        let got = mm[st.n - 1];
        if got != st.expect {
            return Err(format!("optimal cost {got} != {}", st.expect));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Random access (0.006 ms tasks)
// ---------------------------------------------------------------------------

/// GUPS-style random table updates. XOR updates commute, so the final
/// table is scheduler-independent and validated exactly.
pub struct RandomAccess {
    /// Table size (power of two).
    pub table: usize,
    /// Total updates.
    pub updates: u64,
    /// Updates per task.
    pub per_task: u64,
    /// Seed.
    pub seed: u64,
    state: Mutex<Option<RaState>>,
}

struct RaState {
    table: Arc<Vec<AtomicU64>>,
    expect: Vec<u64>,
}

impl Default for RandomAccess {
    fn default() -> Self {
        RandomAccess::new(1 << 16, 400_000, 200, 43)
    }
}

impl RandomAccess {
    /// `updates` XOR updates over a `table`-entry table.
    pub fn new(table: usize, updates: u64, per_task: u64, seed: u64) -> Self {
        assert!(table.is_power_of_two());
        RandomAccess {
            table,
            updates,
            per_task,
            seed,
            state: Mutex::new(None),
        }
    }

    /// Tiny instance for tests.
    pub fn quick() -> Self {
        RandomAccess::new(1 << 12, 20_000, 100, 43)
    }
}

impl Workload for RandomAccess {
    fn name(&self) -> String {
        "RandomAccess".into()
    }

    fn roots(&self, cfg: &ClusterConfig) -> Vec<TaskSpec> {
        let mask = (self.table - 1) as u64;
        // Golden table.
        let mut expect = vec![0u64; self.table];
        let blocks = self.updates.div_ceil(self.per_task);
        for b in 0..blocks {
            let mut rng = SplitMix64::new(self.seed ^ (b + 1));
            let n = self.per_task.min(self.updates - b * self.per_task);
            for _ in 0..n {
                let r = rng.next_u64();
                expect[(r & mask) as usize] ^= r;
            }
        }
        let table: Arc<Vec<AtomicU64>> =
            Arc::new((0..self.table).map(|_| AtomicU64::new(0)).collect());
        *self.state.lock().unwrap() = Some(RaState {
            table: Arc::clone(&table),
            expect,
        });
        let mut out = Vec::new();
        for b in 0..blocks {
            let n = self.per_task.min(self.updates - b * self.per_task);
            let seed = self.seed ^ (b + 1);
            let table = Arc::clone(&table);
            out.push(TaskSpec::new(
                PlaceId((b % cfg.places as u64) as u32),
                Locality::Flexible,
                6_000, // 0.006 ms, the paper's random-access granularity
                "gups-block",
                move |_s: &mut dyn TaskScope| {
                    let mut rng = SplitMix64::new(seed);
                    for _ in 0..n {
                        let r = rng.next_u64();
                        table[(r & mask) as usize].fetch_xor(r, Ordering::Relaxed);
                    }
                },
            ));
        }
        out
    }

    fn validate(&self) -> Result<(), String> {
        let guard = self.state.lock().unwrap();
        let st = guard.as_ref().ok_or("gups: no run state")?;
        for (i, e) in st.expect.iter().enumerate() {
            let got = st.table[i].load(Ordering::Relaxed);
            if got != *e {
                return Err(format!("table[{i}] = {got}, expected {e}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_halves_merges() {
        let src = vec![1u64, 3, 5, 2, 4, 6];
        let mut dst = vec![0u64; 6];
        merge_halves(&src, &mut dst);
        assert_eq!(dst, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn matrix_chain_golden_matches_known_example() {
        // CLRS example: dims [30,35,15,5,10,20,25] → 15125.
        assert_eq!(MatrixChain::golden(&[30, 35, 15, 5, 10, 20, 25]), 15_125);
    }

    #[test]
    fn pi_block_hits_deterministic() {
        assert_eq!(
            MonteCarloPi::block_hits(9, 1_000),
            MonteCarloPi::block_hits(9, 1_000)
        );
        let hits = MonteCarloPi::block_hits(9, 100_000);
        let pi = 4.0 * hits as f64 / 100_000.0;
        assert!((pi - std::f64::consts::PI).abs() < 0.05, "pi {pi}");
    }

    #[test]
    fn micro_suite_has_five_apps() {
        assert_eq!(micro_suite().len(), 5);
    }
}
