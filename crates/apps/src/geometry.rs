//! 2-D / 3-D geometry primitives shared by the Delaunay, clustering and
//! n-body applications.

/// A point in the plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point2 {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

impl Point2 {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Squared Euclidean distance to `other`.
    pub fn dist2(&self, other: &Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: &Point2) -> f64 {
        self.dist2(other).sqrt()
    }
}

/// A point/vector in 3-space.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// Construct a vector.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// The zero vector.
    pub fn zero() -> Self {
        Vec3::default()
    }

    /// Component-wise addition.
    pub fn add(&self, o: &Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }

    /// Component-wise subtraction.
    pub fn sub(&self, o: &Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }

    /// Scalar multiplication.
    pub fn scale(&self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }

    /// Squared magnitude.
    pub fn norm2(&self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }
}

/// Sign of the area of triangle `(a, b, c)`: positive if
/// counter-clockwise, negative if clockwise, ~0 if collinear.
pub fn orient2d(a: &Point2, b: &Point2, c: &Point2) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Whether point `p` lies strictly inside the circumcircle of the
/// counter-clockwise triangle `(a, b, c)` — the Delaunay predicate.
///
/// Standard 3×3 determinant formulation with coordinates translated to
/// `p` for conditioning; sufficient for the randomly perturbed inputs
/// our generators produce (we do not need Shewchuk-exact arithmetic).
pub fn in_circumcircle(a: &Point2, b: &Point2, c: &Point2, p: &Point2) -> bool {
    let adx = a.x - p.x;
    let ady = a.y - p.y;
    let bdx = b.x - p.x;
    let bdy = b.y - p.y;
    let cdx = c.x - p.x;
    let cdy = c.y - p.y;
    let ad = adx * adx + ady * ady;
    let bd = bdx * bdx + bdy * bdy;
    let cd = cdx * cdx + cdy * cdy;
    let det =
        adx * (bdy * cd - bd * cdy) - ady * (bdx * cd - bd * cdx) + ad * (bdx * cdy - bdy * cdx);
    det > 0.0
}

/// Circumcenter of triangle `(a, b, c)`; `None` if degenerate.
pub fn circumcenter(a: &Point2, b: &Point2, c: &Point2) -> Option<Point2> {
    let d = 2.0 * orient2d(a, b, c);
    if d.abs() < 1e-30 {
        return None;
    }
    let a2 = a.x * a.x + a.y * a.y;
    let b2 = b.x * b.x + b.y * b.y;
    let c2 = c.x * c.x + c.y * c.y;
    let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
    let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
    Some(Point2::new(ux, uy))
}

/// Minimum interior angle of triangle `(a, b, c)` in degrees.
pub fn min_angle_deg(a: &Point2, b: &Point2, c: &Point2) -> f64 {
    let la = b.dist(c);
    let lb = a.dist(c);
    let lc = a.dist(b);
    let angle = |opp: f64, s1: f64, s2: f64| -> f64 {
        let cos = ((s1 * s1 + s2 * s2 - opp * opp) / (2.0 * s1 * s2)).clamp(-1.0, 1.0);
        cos.acos().to_degrees()
    };
    angle(la, lb, lc)
        .min(angle(lb, la, lc))
        .min(angle(lc, la, lb))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_signs() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.0, 1.0);
        assert!(orient2d(&a, &b, &c) > 0.0, "ccw positive");
        assert!(orient2d(&a, &c, &b) < 0.0, "cw negative");
        let d = Point2::new(2.0, 0.0);
        assert_eq!(orient2d(&a, &b, &d), 0.0, "collinear zero");
    }

    #[test]
    fn circumcircle_membership() {
        // Unit circle through (1,0), (0,1), (-1,0).
        let a = Point2::new(1.0, 0.0);
        let b = Point2::new(0.0, 1.0);
        let c = Point2::new(-1.0, 0.0);
        assert!(in_circumcircle(&a, &b, &c, &Point2::new(0.0, 0.0)));
        assert!(in_circumcircle(&a, &b, &c, &Point2::new(0.5, -0.3)));
        assert!(!in_circumcircle(&a, &b, &c, &Point2::new(2.0, 0.0)));
        assert!(!in_circumcircle(&a, &b, &c, &Point2::new(0.0, -1.5)));
    }

    #[test]
    fn circumcenter_of_right_triangle() {
        // Right triangle: circumcenter is the hypotenuse midpoint.
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 0.0);
        let c = Point2::new(0.0, 2.0);
        let cc = circumcenter(&a, &b, &c).unwrap();
        assert!((cc.x - 1.0).abs() < 1e-12 && (cc.y - 1.0).abs() < 1e-12);
        // Degenerate triangle has none.
        assert!(circumcenter(&a, &b, &Point2::new(4.0, 0.0)).is_none());
    }

    #[test]
    fn angles_of_known_triangles() {
        // Equilateral: 60°.
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.5, 3f64.sqrt() / 2.0);
        assert!((min_angle_deg(&a, &b, &c) - 60.0).abs() < 1e-9);
        // 30-60-90 triangle.
        let c2 = Point2::new(0.0, 1.0 / 3f64.sqrt());
        assert!((min_angle_deg(&a, &b, &c2) - 30.0).abs() < 1e-6);
    }

    #[test]
    fn vec3_algebra() {
        let v = Vec3::new(1.0, 2.0, 2.0);
        assert_eq!(v.norm2(), 9.0);
        let w = v.add(&v.scale(-1.0));
        assert_eq!(w, Vec3::zero());
        assert_eq!(v.sub(&Vec3::new(1.0, 0.0, 0.0)), Vec3::new(0.0, 2.0, 2.0));
    }
}
