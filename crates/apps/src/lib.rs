//! # distws-apps
//!
//! The application suite of the paper, implemented from scratch:
//!
//! **Cowichan problems** (§VII d):
//! * [`quicksort`] — global sort of a large integer array
//! * [`turing_ring`] — predator/prey dynamics on a distributed ring of
//!   cells with body migration (the paper's §IV.B running example)
//! * [`kmeans`] — k-means clustering, 4 clusters, fixed iterations
//! * [`nbody`] — Barnes–Hut n-body simulation
//!
//! **Lonestar problems** (ported from Galois in the paper):
//! * [`agglomerative`] — bottom-up hierarchical clustering
//! * [`delaunay_gen`] — 2-D Delaunay mesh generation (Bowyer–Watson)
//! * [`delaunay_refine`] — Delaunay mesh refinement to a 30° minimum
//!   angle (Chew/Ruppert-style circumcenter insertion)
//!
//! **§X comparison**: [`uts`] — Unbalanced Tree Search.
//!
//! **§VIII.2 granularity study micro-apps** ([`micro`]): merge sort,
//! skyline matrix multiplication, Monte-Carlo π, matrix chain
//! multiplication, random access.
//!
//! Every application implements [`distws_core::Workload`]: it produces
//! annotated root tasks (locality-sensitive / locality-flexible exactly
//! as the paper's examples prescribe), runs unmodified under every
//! scheduler and engine, and validates its own answer afterwards —
//! scheduling must never change results.

pub mod agglomerative;
pub mod delaunay;
pub mod delaunay_gen;
pub mod delaunay_refine;
pub mod geometry;
pub mod kmeans;
pub mod micro;
pub mod nbody;
pub mod quicksort;
pub mod turing_ring;
pub mod util;
pub mod uts;

pub use agglomerative::Agglomerative;
pub use delaunay_gen::DelaunayGen;
pub use delaunay_refine::DelaunayRefine;
pub use kmeans::KMeans;
pub use nbody::NBody;
pub use quicksort::Quicksort;
pub use turing_ring::TuringRing;
pub use uts::Uts;

use distws_core::Workload;

/// The seven applications of the paper's main evaluation (Figs. 3–7,
/// Tables I–III), at reduced default scale. Order matches the paper's
/// tables.
pub fn paper_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Quicksort::default()),
        Box::new(TuringRing::default()),
        Box::new(KMeans::default()),
        Box::new(Agglomerative::default()),
        Box::new(DelaunayGen::default()),
        Box::new(DelaunayRefine::default()),
        Box::new(NBody::default()),
    ]
}

/// Tiny-input versions of the same seven applications, for fast tests.
pub fn quick_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Quicksort::quick()),
        Box::new(TuringRing::quick()),
        Box::new(KMeans::quick()),
        Box::new(Agglomerative::quick()),
        Box::new(DelaunayGen::quick()),
        Box::new(DelaunayRefine::quick()),
        Box::new(NBody::quick()),
    ]
}
