//! **Agglomerative clustering** (Lonestar): bottom-up hierarchical
//! clustering of a point set (the paper clusters 2 M points into a
//! hierarchical tree).
//!
//! We use the *reciprocal nearest neighbour* (RNN) formulation:
//! every round, nearest-neighbour queries over the active clusters are
//! fanned out as *locality-flexible* chunk tasks (each chunk of the
//! query space encapsulates nothing but cluster centroids — cheap to
//! ship, coarse to execute — paper §II (c)); a sensitive reduction task
//! then merges every reciprocal pair (centroid linkage) and launches
//! the next round, until one cluster remains. At least the globally
//! closest pair is always reciprocal, so every round makes progress.
//!
//! Determinism: each NN query is computed independently (no cross-task
//! accumulation) with index-ordered tie-breaks, so the dendrogram is
//! bit-identical under every scheduler; validation compares it against
//! a sequential golden run and checks structural invariants (n−1
//! merges, sizes add up).

use crate::geometry::Point2;
use distws_core::rng::SplitMix64;
use distws_core::{
    ClusterConfig, FinishLatch, Footprint, Locality, ObjectId, PlaceId, TaskScope, TaskSpec,
    Workload,
};
use std::sync::{Arc, Mutex};

/// Virtual cost per centroid-pair distance evaluation (ns).
const NS_PER_PAIR: u64 = 200;
/// Fixed per-task cost (ns).
const TASK_BASE_NS: u64 = 4_000;
/// Object id of the active-cluster table (homed at place 0).
const TABLE_OBJ: ObjectId = ObjectId(1);

/// One merge record of the dendrogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// Merged cluster ids (a < b by construction).
    pub a: u32,
    /// Second cluster id.
    pub b: u32,
    /// New cluster id.
    pub into: u32,
    /// Squared centroid distance at merge time.
    pub dist2: f64,
}

#[derive(Debug, Clone, Copy)]
struct Cluster {
    id: u32,
    center: Point2,
    size: u32,
}

/// Nearest active cluster to `clusters[i]` (excluding itself), with
/// index-ordered tie-break.
fn nearest(clusters: &[Cluster], i: usize) -> (usize, f64) {
    let mut best = usize::MAX;
    let mut bd = f64::INFINITY;
    for (j, c) in clusters.iter().enumerate() {
        if j == i {
            continue;
        }
        let d = clusters[i].center.dist2(&c.center);
        if d < bd || (d == bd && j < best) {
            bd = d;
            best = j;
        }
    }
    (best, bd)
}

/// Merge all reciprocal NN pairs given the complete NN table; returns
/// the surviving cluster list and appends merge records.
fn merge_round(
    clusters: &[Cluster],
    nn: &[(usize, f64)],
    next_id: &mut u32,
    out: &mut Vec<Merge>,
) -> Vec<Cluster> {
    let n = clusters.len();
    let mut dead = vec![false; n];
    let mut merged = Vec::new();
    for i in 0..n {
        let (j, d) = nn[i];
        if j > i || dead[i] || dead[j] {
            // Handle each pair once, at the larger index.
            if j > i && nn[j].0 == i && !dead[i] && !dead[j] {
                // handled when the loop reaches j
            }
            continue;
        }
        // i > j here; reciprocal if nn[j] points back at i.
        if nn[j].0 == i {
            dead[i] = true;
            dead[j] = true;
            let (a, b) = (clusters[j], clusters[i]);
            let size = a.size + b.size;
            let w = 1.0 / size as f64;
            let center = Point2::new(
                (a.center.x * a.size as f64 + b.center.x * b.size as f64) * w,
                (a.center.y * a.size as f64 + b.center.y * b.size as f64) * w,
            );
            let id = *next_id;
            *next_id += 1;
            out.push(Merge {
                a: a.id.min(b.id),
                b: a.id.max(b.id),
                into: id,
                dist2: d,
            });
            merged.push(Cluster { id, center, size });
        }
    }
    let mut survivors: Vec<Cluster> = clusters
        .iter()
        .zip(&dead)
        .filter(|(_, &d)| !d)
        .map(|(c, _)| *c)
        .collect();
    survivors.extend(merged);
    survivors
}

/// Sequential golden clustering.
fn golden(points: &[Point2]) -> Vec<Merge> {
    let mut clusters: Vec<Cluster> = points
        .iter()
        .enumerate()
        .map(|(i, p)| Cluster {
            id: i as u32,
            center: *p,
            size: 1,
        })
        .collect();
    let mut next_id = points.len() as u32;
    let mut merges = Vec::new();
    while clusters.len() > 1 {
        let nn: Vec<(usize, f64)> = (0..clusters.len()).map(|i| nearest(&clusters, i)).collect();
        clusters = merge_round(&clusters, &nn, &mut next_id, &mut merges);
    }
    merges
}

/// The agglomerative-clustering workload.
pub struct Agglomerative {
    /// Number of points.
    pub n: usize,
    /// Input seed.
    pub seed: u64,
    /// NN-query chunks per place per round.
    pub chunks_per_place: usize,
    state: Mutex<Option<RunState>>,
}

struct RunState {
    result: Arc<Mutex<AlgoState>>,
    expect: Vec<Merge>,
    n: usize,
}

struct AlgoState {
    clusters: Vec<Cluster>,
    nn: Vec<(usize, f64)>,
    next_id: u32,
    merges: Vec<Merge>,
}

impl Default for Agglomerative {
    fn default() -> Self {
        Agglomerative::new(2_048, 23)
    }
}

impl Agglomerative {
    /// Cluster `n` points.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 2);
        Agglomerative {
            n,
            seed,
            chunks_per_place: 12,
            state: Mutex::new(None),
        }
    }

    /// Tiny instance for tests.
    pub fn quick() -> Self {
        Agglomerative::new(192, 23)
    }

    /// Clustered, highly non-uniform input: most points in one dense
    /// blob (chunks covering it do far more shrinking work per round).
    fn gen_points(&self) -> Vec<Point2> {
        let mut rng = SplitMix64::new(self.seed);
        (0..self.n)
            .map(|i| {
                if i % 4 != 0 {
                    Point2::new(rng.range_f64(0.4, 0.6), rng.range_f64(0.4, 0.6))
                } else {
                    Point2::new(rng.range_f64(0.0, 1.0), rng.range_f64(0.0, 1.0))
                }
            })
            .collect()
    }
}

struct Shared {
    state: Arc<Mutex<AlgoState>>,
    places: u32,
    chunks_per_place: usize,
}

/// NN-query task over active-cluster indices `[lo, hi)`.
fn nn_task(
    sh: Arc<Shared>,
    lo: usize,
    hi: usize,
    home: PlaceId,
    latch: Arc<FinishLatch>,
) -> TaskSpec {
    let sh2 = Arc::clone(&sh);
    let body = move |s: &mut dyn TaskScope| {
        let (snapshot, pairs) = {
            let st = sh2.state.lock().unwrap();
            (st.clusters.clone(), (hi - lo) * st.clusters.len())
        };
        // Read the cluster table (homed at place 0 — broadcast cost).
        s.read(TABLE_OBJ, 0, snapshot.len() as u64 * 24, PlaceId(0));
        let mut results = Vec::with_capacity(hi - lo);
        for i in lo..hi.min(snapshot.len()) {
            results.push((i, nearest(&snapshot, i)));
        }
        s.charge(NS_PER_PAIR * pairs as u64);
        let mut st = sh2.state.lock().unwrap();
        for (i, nn) in results {
            st.nn[i] = nn;
        }
    };
    TaskSpec::new(home, Locality::Flexible, TASK_BASE_NS, "agglom-nn", body)
        .with_footprint(Footprint::empty())
        .with_latch(latch)
}

/// Round coordinator: merge reciprocal pairs from the previous round,
/// then fan out the next round of NN tasks.
fn round_task(sh: Arc<Shared>, first: bool) -> TaskSpec {
    let sh0 = Arc::clone(&sh);
    let body = move |s: &mut dyn TaskScope| {
        {
            let mut st = sh0.state.lock().unwrap();
            if !first {
                let st = &mut *st;
                let survivors = merge_round(&st.clusters, &st.nn, &mut st.next_id, &mut st.merges);
                st.clusters = survivors;
                s.charge(200 * st.clusters.len() as u64);
            }
            if st.clusters.len() <= 1 {
                return;
            }
            st.nn = vec![(usize::MAX, f64::INFINITY); st.clusters.len()];
        }
        s.write(
            TABLE_OBJ,
            0,
            24 * sh0.state.lock().unwrap().clusters.len() as u64,
            PlaceId(0),
        );
        let active = sh0.state.lock().unwrap().clusters.len();
        let chunks_total = (sh0.places as usize * sh0.chunks_per_place).min(active);
        let next = round_task(Arc::clone(&sh0), false);
        // Size-skewed spans (span k gets a share ∝ k+1): the cluster
        // table is ordered by creation, and later entries — merged
        // super-clusters — carry more candidate bookkeeping, so a real
        // partitioning by id range is uneven. X10WS cannot repair this
        // static imbalance; DistWS steals the heavy spans.
        let weight_total = chunks_total * (chunks_total + 1) / 2;
        let mut spans = Vec::new();
        let mut lo = 0usize;
        for k in 0..chunks_total {
            let hi = if k == chunks_total - 1 {
                active
            } else {
                (lo + ((k + 1) * active).div_ceil(weight_total)).min(active)
            };
            if hi > lo {
                spans.push((k, lo, hi));
            }
            lo = hi;
        }
        let latch = FinishLatch::new(spans.len(), next);
        for (k, lo, hi) in spans {
            let home = PlaceId((k * sh0.places as usize / chunks_total) as u32);
            s.spawn(nn_task(Arc::clone(&sh0), lo, hi, home, Arc::clone(&latch)));
        }
    };
    TaskSpec::new(
        PlaceId(0),
        Locality::Sensitive,
        TASK_BASE_NS,
        "agglom-round",
        body,
    )
}

impl Workload for Agglomerative {
    fn name(&self) -> String {
        "Agglomerative".into()
    }

    fn roots(&self, cfg: &ClusterConfig) -> Vec<TaskSpec> {
        let points = self.gen_points();
        let expect = golden(&points);
        let clusters: Vec<Cluster> = points
            .iter()
            .enumerate()
            .map(|(i, p)| Cluster {
                id: i as u32,
                center: *p,
                size: 1,
            })
            .collect();
        let state = Arc::new(Mutex::new(AlgoState {
            nn: vec![(usize::MAX, f64::INFINITY); clusters.len()],
            next_id: clusters.len() as u32,
            clusters,
            merges: Vec::new(),
        }));
        *self.state.lock().unwrap() = Some(RunState {
            result: Arc::clone(&state),
            expect,
            n: self.n,
        });
        let sh = Arc::new(Shared {
            state,
            places: cfg.places,
            chunks_per_place: self.chunks_per_place,
        });
        vec![round_task(sh, true)]
    }

    fn validate(&self) -> Result<(), String> {
        let guard = self.state.lock().unwrap();
        let st = guard.as_ref().ok_or("agglomerative: no run state")?;
        let algo = st.result.lock().unwrap();
        if algo.clusters.len() != 1 {
            return Err(format!("{} clusters remain", algo.clusters.len()));
        }
        if algo.merges.len() != st.n - 1 {
            return Err(format!(
                "{} merges, expected {}",
                algo.merges.len(),
                st.n - 1
            ));
        }
        if algo.clusters[0].size as usize != st.n {
            return Err("root cluster size wrong".into());
        }
        if algo.merges != st.expect {
            return Err("dendrogram differs from sequential golden run".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_produces_full_dendrogram() {
        let a = Agglomerative::new(64, 5);
        let merges = golden(&a.gen_points());
        assert_eq!(merges.len(), 63);
        // Ids used exactly once as inputs.
        let mut used = std::collections::HashSet::new();
        for m in &merges {
            assert!(used.insert(m.a), "cluster {} merged twice", m.a);
            assert!(used.insert(m.b), "cluster {} merged twice", m.b);
        }
    }

    #[test]
    fn global_min_pair_is_reciprocal() {
        let a = Agglomerative::new(128, 9);
        let pts = a.gen_points();
        let clusters: Vec<Cluster> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| Cluster {
                id: i as u32,
                center: *p,
                size: 1,
            })
            .collect();
        let nn: Vec<(usize, f64)> = (0..clusters.len()).map(|i| nearest(&clusters, i)).collect();
        // The closest pair overall must be mutual (guarantees progress).
        let (i, _) = nn
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let j = nn[i].0;
        assert_eq!(nn[j].0, i, "closest pair not reciprocal");
    }

    #[test]
    fn merge_round_reduces_cluster_count() {
        let a = Agglomerative::new(100, 3);
        let pts = a.gen_points();
        let clusters: Vec<Cluster> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| Cluster {
                id: i as u32,
                center: *p,
                size: 1,
            })
            .collect();
        let nn: Vec<(usize, f64)> = (0..clusters.len()).map(|i| nearest(&clusters, i)).collect();
        let mut next = 100;
        let mut merges = Vec::new();
        let out = merge_round(&clusters, &nn, &mut next, &mut merges);
        assert!(out.len() < clusters.len());
        assert_eq!(out.len(), clusters.len() - merges.len());
        // Sizes conserved.
        let total: u32 = out.iter().map(|c| c.size).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn merge_distances_trend_upward() {
        // Centroid-linkage RNN is not strictly monotone, but the tail
        // of the dendrogram must be far coarser than the head.
        let a = Agglomerative::new(128, 7);
        let merges = golden(&a.gen_points());
        let head: f64 = merges[..16].iter().map(|m| m.dist2).sum::<f64>() / 16.0;
        let tail: f64 = merges[merges.len() - 4..]
            .iter()
            .map(|m| m.dist2)
            .sum::<f64>()
            / 4.0;
        assert!(tail > head * 10.0, "head {head} tail {tail}");
    }
}
