//! **Delaunay mesh refinement (DMR)** (Lonestar): refine a Delaunay
//! mesh until no triangle has an interior angle below 30° (the paper
//! refines a 550 K-triangle mesh).
//!
//! Chew-style refinement: repeatedly insert the circumcenter of a bad
//! triangle. We only refine triangles whose circumradius exceeds a
//! floor `r_min`; since a Delaunay circumcircle is empty, every
//! inserted circumcenter is at least `r_min` from all existing
//! vertices, so the point set stays `r_min`-separated and termination
//! follows from a packing argument — at termination every remaining
//! skinny triangle is below the resolution floor.
//!
//! Distribution mirrors DMG: per-bucket meshes refined by chains of
//! *locality-flexible* tasks that carry their mesh as footprint. Bad
//! triangles cluster where the input points do, so bucket workloads are
//! highly unequal.
//!
//! Validation: per bucket — zero bad triangles above the floor,
//! structural and Delaunay checks; refinement monotonically reduced the
//! work-list.

use crate::delaunay::Triangulation;
use crate::geometry::{circumcenter, Point2};
use distws_core::{
    Access, ClusterConfig, Footprint, Locality, ObjectId, PlaceId, TaskScope, TaskSpec, Workload,
};
use std::sync::{Arc, Mutex};

/// Virtual cost per circumcenter insertion (ns) — refinement cavities
/// are larger than generation cavities.
const NS_PER_INSERT: u64 = 60_000;
/// Virtual cost per triangle scanned for badness (ns).
const NS_PER_SCAN: u64 = 250;
/// Fixed per-task cost (ns).
const TASK_BASE_NS: u64 = 5_000;
/// Accounted bytes per mesh triangle.
const TRI_BYTES: u64 = 40;

/// The DMR workload.
pub struct DelaunayRefine {
    /// Points of the seed mesh (refinement roughly doubles-to-
    /// quadruples the triangle count).
    pub n_points: usize,
    /// Spatial buckets.
    pub buckets: usize,
    /// Minimum acceptable angle in degrees (paper: 30°).
    pub min_angle: f64,
    /// Circumradius floor — triangles finer than this are left alone.
    pub r_min: f64,
    /// Circumcenters inserted per task.
    pub batch: usize,
    /// Input seed.
    pub seed: u64,
    state: Mutex<Option<RunState>>,
}

struct RunState {
    meshes: Vec<Arc<Mutex<Triangulation>>>,
    #[allow(dead_code)]
    initial_bad: usize,
    min_angle: f64,
    r_min: f64,
}

impl Default for DelaunayRefine {
    fn default() -> Self {
        DelaunayRefine::new(12_000, 256, 30.0, 37)
    }
}

impl DelaunayRefine {
    /// Refine a mesh generated from `n_points` clustered points.
    pub fn new(n_points: usize, buckets: usize, min_angle: f64, seed: u64) -> Self {
        DelaunayRefine {
            n_points,
            buckets,
            min_angle,
            // Floor scales with mean point spacing.
            r_min: 0.7 / (n_points as f64).sqrt().max(1.0),
            batch: 64,
            seed,
            state: Mutex::new(None),
        }
    }

    /// Tiny instance for tests.
    pub fn quick() -> Self {
        DelaunayRefine::new(600, 8, 30.0, 37)
    }

    /// Paper-leaning scale (larger seed mesh).
    pub fn paper() -> Self {
        DelaunayRefine::new(60_000, 64, 30.0, 37)
    }

    /// Build the seed meshes (clustered points, same scheme as DMG).
    fn build_seed(&self) -> Vec<Triangulation> {
        let gen = crate::delaunay_gen::DelaunayGen::new(self.n_points, self.buckets, 64, self.seed);
        let buckets = gen.gen_points();
        buckets
            .into_iter()
            .map(|pts| {
                let mut t = Triangulation::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
                for p in pts {
                    t.insert(p);
                }
                t
            })
            .collect()
    }
}

struct Shared {
    meshes: Vec<Arc<Mutex<Triangulation>>>,
    min_angle: f64,
    r_min: f64,
    batch: usize,
}

/// Insert up to `batch` circumcenters from a (possibly stale) bad-
/// triangle list. Termination hinges on every inserted point being at
/// least `r_min` from *all* existing points: each center is at
/// circumradius (> `r_min`) from all points that existed when the list
/// was computed, but an earlier insertion *this round* may have landed
/// inside the circumcircle — so centers closer than `r_min` to this
/// round's insertions are skipped. The point set then stays
/// `r_min`-separated and refinement terminates by a packing argument.
fn insert_round(mesh: &mut Triangulation, bad: &[[Point2; 3]], batch: usize, r_min: f64) -> u64 {
    let mut placed: Vec<Point2> = Vec::with_capacity(batch);
    for tri in bad.iter() {
        if placed.len() >= batch {
            break;
        }
        if let Some(cc) = circumcenter(&tri[0], &tri[1], &tri[2]) {
            if cc.dist(&tri[0]) > r_min && placed.iter().all(|p| p.dist(&cc) >= r_min) {
                mesh.insert(cc);
                placed.push(cc);
            }
        }
    }
    placed.len() as u64
}

/// One refinement round over a bucket: pick up to `batch` bad
/// triangles, insert their circumcenters, chain if work remains.
fn refine_task(sh: Arc<Shared>, bucket: usize, home: PlaceId) -> TaskSpec {
    let obj = ObjectId(1 + bucket as u64);
    let sh2 = Arc::clone(&sh);
    let body = move |s: &mut dyn TaskScope| {
        let here = s.here();
        let mut mesh = sh2.meshes[bucket].lock().unwrap();
        let scanned = mesh.live_triangles() as u64;
        let bad = mesh.bad_triangles(sh2.min_angle, sh2.r_min);
        let inserted = insert_round(&mut mesh, &bad, sh2.batch, sh2.r_min);
        s.charge(NS_PER_SCAN * scanned + NS_PER_INSERT * inserted);
        let mesh_bytes = mesh.live_triangles() as u64 * TRI_BYTES;
        s.access(Access::read(obj, 0, mesh_bytes.min(1 << 20), here));
        s.access(Access::write(obj, 0, (inserted * 4) * TRI_BYTES, here));
        let more = bad.len() > sh2.batch || inserted > 0;
        drop(mesh);
        if more {
            s.spawn(refine_task(Arc::clone(&sh2), bucket, here));
        }
    };
    // Footprint: the whole bucket mesh travels with a stolen round.
    let mesh_bytes = {
        let m = sh.meshes[bucket].lock().unwrap();
        m.live_triangles() as u64 * TRI_BYTES
    };
    let fp = Footprint {
        regions: vec![Access::read(obj, 0, mesh_bytes, home)],
    };
    TaskSpec::new(home, Locality::Flexible, TASK_BASE_NS, "dmr-round", body).with_footprint(fp)
}

impl Workload for DelaunayRefine {
    fn name(&self) -> String {
        "DMR".into()
    }

    fn roots(&self, cfg: &ClusterConfig) -> Vec<TaskSpec> {
        let seeds = self.build_seed();
        let initial_bad: usize = seeds
            .iter()
            .map(|m| m.bad_triangles(self.min_angle, self.r_min).len())
            .sum();
        let meshes: Vec<Arc<Mutex<Triangulation>>> =
            seeds.into_iter().map(|m| Arc::new(Mutex::new(m))).collect();
        *self.state.lock().unwrap() = Some(RunState {
            meshes: meshes.clone(),
            initial_bad,
            min_angle: self.min_angle,
            r_min: self.r_min,
        });
        let sh = Arc::new(Shared {
            meshes,
            min_angle: self.min_angle,
            r_min: self.r_min,
            batch: self.batch,
        });
        let buckets = sh.meshes.len();
        (0..buckets)
            .map(|b| {
                let home = PlaceId((b * cfg.places as usize / buckets) as u32);
                refine_task(Arc::clone(&sh), b, home)
            })
            .collect()
    }

    fn validate(&self) -> Result<(), String> {
        let guard = self.state.lock().unwrap();
        let st = guard.as_ref().ok_or("dmr: no run state")?;
        for (b, mesh) in st.meshes.iter().enumerate() {
            let m = mesh.lock().unwrap();
            let remaining = m.bad_triangles(st.min_angle, st.r_min).len();
            if remaining > 0 {
                return Err(format!(
                    "bucket {b}: {remaining} bad triangles above the floor remain"
                ));
            }
            m.check_structure()
                .map_err(|e| format!("bucket {b}: {e}"))?;
            if m.delaunay_violations(1_000) > 0 {
                return Err(format!("bucket {b}: Delaunay property violated"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_refinement_terminates_and_fixes_angles() {
        let r = DelaunayRefine::quick();
        let mut meshes = r.build_seed();
        for m in &mut meshes {
            let mut rounds = 0;
            loop {
                let bad = m.bad_triangles(r.min_angle, r.r_min);
                if bad.is_empty() {
                    break;
                }
                rounds += 1;
                assert!(rounds < 10_000, "refinement did not terminate");
                let inserted = insert_round(m, &bad, 16, r.r_min);
                assert!(
                    inserted > 0,
                    "round made no progress with {} bad triangles",
                    bad.len()
                );
            }
            assert!(m.bad_triangles(r.min_angle, r.r_min).is_empty());
            m.check_structure().unwrap();
        }
    }

    #[test]
    fn refinement_adds_points() {
        let r = DelaunayRefine::quick();
        let meshes = r.build_seed();
        let has_bad = meshes
            .iter()
            .any(|m| !m.bad_triangles(r.min_angle, r.r_min).is_empty());
        assert!(has_bad, "seed mesh has nothing to refine — bad test input");
    }

    #[test]
    fn r_min_scales_with_density() {
        let a = DelaunayRefine::new(1_000, 8, 30.0, 1);
        let b = DelaunayRefine::new(100_000, 8, 30.0, 1);
        assert!(a.r_min > b.r_min, "denser meshes need a finer floor");
    }
}
