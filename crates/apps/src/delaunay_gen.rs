//! **Delaunay mesh generation (DMG)** (Lonestar): triangulate a point
//! set (the paper generates a mesh from 80,000 points).
//!
//! The point cloud is deliberately *clustered* (Gaussian blobs), split
//! into spatial buckets distributed round-robin over places. Each
//! bucket is triangulated by a **chain of locality-flexible tasks**,
//! each inserting one batch of points — the paper's §IV.A example: a
//! triangulation task "encapsulates all the data necessary for its
//! computation" (the growing mesh and the remaining points travel as
//! its footprint), "copying of the triangle and its points from the
//! victim to the thief is necessary only once", and all triangles
//! created by the thief are local to the thief. Because the blobs make
//! bucket workloads differ by orders of magnitude while buckets per
//! place are equal, X10WS starves most places and DistWS shines — the
//! paper's best case (31 % at 64 workers).
//!
//! Validation: per bucket — triangle count obeys the Euler relation
//! (1 + 2·inserted with a super-triangle), neighbour links are
//! symmetric, the Delaunay empty-circumcircle property holds on a
//! sample; globally — every generated point was inserted.

use crate::delaunay::Triangulation;
use crate::geometry::Point2;
use distws_core::rng::SplitMix64;
use distws_core::{
    Access, ClusterConfig, Footprint, Locality, ObjectId, PlaceId, TaskScope, TaskSpec, Workload,
};
use std::sync::{Arc, Mutex};

/// Virtual cost per located triangle during the walk (ns).
const NS_PER_WALK: u64 = 800;
/// Virtual cost per cavity triangle (circumcircle test + rewire; ns).
const NS_PER_CAVITY: u64 = 30_000;
/// Fixed per-task cost (ns).
const TASK_BASE_NS: u64 = 5_000;
/// Accounted bytes per mesh triangle.
const TRI_BYTES: u64 = 40;
/// Accounted bytes per point.
const PT_BYTES: u64 = 16;

/// The DMG workload.
pub struct DelaunayGen {
    /// Total points.
    pub n_points: usize,
    /// Spatial buckets (each triangulated independently).
    pub buckets: usize,
    /// Points inserted per task in the bucket chain.
    pub batch: usize,
    /// Input seed.
    pub seed: u64,
    state: Mutex<Option<RunState>>,
}

struct RunState {
    meshes: Vec<Arc<Mutex<Triangulation>>>,
    bucket_sizes: Vec<usize>,
}

impl Default for DelaunayGen {
    fn default() -> Self {
        DelaunayGen::new(20_000, 256, 16, 31)
    }
}

impl DelaunayGen {
    /// Generate a mesh from `n_points` clustered points.
    pub fn new(n_points: usize, buckets: usize, batch: usize, seed: u64) -> Self {
        assert!(buckets >= 1 && batch >= 1);
        DelaunayGen {
            n_points,
            buckets,
            batch,
            seed,
            state: Mutex::new(None),
        }
    }

    /// Tiny instance for tests and doctests.
    pub fn quick() -> Self {
        DelaunayGen::new(1_500, 48, 8, 31)
    }

    /// Paper scale: 80,000 points.
    pub fn paper() -> Self {
        DelaunayGen::new(80_000, 512, 32, 31)
    }

    /// Clustered points in the unit square and their bucket indices
    /// (buckets = vertical strips; the blobs make strip loads wildly
    /// unequal).
    pub fn gen_points(&self) -> Vec<Vec<Point2>> {
        let mut rng = SplitMix64::new(self.seed);
        let blobs = 6;
        let centers: Vec<Point2> = (0..blobs)
            .map(|_| Point2::new(rng.range_f64(0.1, 0.9), rng.range_f64(0.1, 0.9)))
            .collect();
        let mut buckets = vec![Vec::new(); self.buckets];
        for i in 0..self.n_points {
            // Three quarters of the mass in the first two blobs.
            let b = match i % 8 {
                0..=2 => 0,
                3..=5 => 1,
                _ => 2 + (i / 8) % (blobs - 2),
            };
            let spread = if b < 2 { 0.04 } else { 0.15 };
            let mut x = centers[b].x + (rng.next_f64() - 0.5) * spread;
            let mut y = centers[b].y + (rng.next_f64() - 0.5) * spread;
            x = x.clamp(0.0, 0.999_999);
            y = y.clamp(0.0, 0.999_999);
            let bucket = ((x * self.buckets as f64) as usize).min(self.buckets - 1);
            buckets[bucket].push(Point2::new(x, y));
        }
        buckets
    }
}

struct Shared {
    meshes: Vec<Arc<Mutex<Triangulation>>>,
    points: Vec<Vec<Point2>>,
    batch: usize,
    places: u32,
}

/// One link of a bucket's insertion chain: insert `batch` points
/// starting at `offset`, then spawn the next link at the executing
/// place (triangles created by a thief are local to the thief).
fn chain_task(sh: Arc<Shared>, bucket: usize, offset: usize, home: PlaceId) -> TaskSpec {
    let total = sh.points[bucket].len();
    let n_now = sh.batch.min(total - offset);
    // Footprint: current mesh + remaining points (what a thief copies).
    let mesh_bytes = (1 + 2 * offset) as u64 * TRI_BYTES;
    let rest_bytes = (total - offset) as u64 * PT_BYTES;
    let obj = ObjectId(1 + bucket as u64);
    let fp = Footprint {
        regions: vec![Access::read(obj, 0, mesh_bytes + rest_bytes, home)],
    };
    let est = TASK_BASE_NS;
    let sh2 = Arc::clone(&sh);
    let body = move |s: &mut dyn TaskScope| {
        let here = s.here();
        let mut mesh = sh2.meshes[bucket].lock().unwrap();
        let mut walk = 0u64;
        let mut cavity = 0u64;
        for p in &sh2.points[bucket][offset..offset + n_now] {
            let st = mesh.insert(*p);
            walk += st.walk_steps as u64;
            cavity += st.cavity as u64;
        }
        s.charge(NS_PER_WALK * walk + NS_PER_CAVITY * cavity);
        // The mesh data is local wherever this link ran.
        let grown = (1 + 2 * (offset + n_now)) as u64 * TRI_BYTES;
        s.access(Access::read(obj, 0, grown.min(1 << 20), here));
        s.access(Access::write(obj, 0, (n_now as u64 * 3) * TRI_BYTES, here));
        drop(mesh);
        if offset + n_now < total {
            s.spawn(chain_task(Arc::clone(&sh2), bucket, offset + n_now, here));
        }
    };
    TaskSpec::new(home, Locality::Flexible, est, "dmg-chain", body).with_footprint(fp)
}

impl Workload for DelaunayGen {
    fn name(&self) -> String {
        "DMG".into()
    }

    fn roots(&self, cfg: &ClusterConfig) -> Vec<TaskSpec> {
        let points = self.gen_points();
        let meshes: Vec<Arc<Mutex<Triangulation>>> = (0..self.buckets)
            .map(|_| {
                Arc::new(Mutex::new(Triangulation::new(
                    Point2::new(0.0, 0.0),
                    Point2::new(1.0, 1.0),
                )))
            })
            .collect();
        *self.state.lock().unwrap() = Some(RunState {
            meshes: meshes.clone(),
            bucket_sizes: points.iter().map(|b| b.len()).collect(),
        });
        let sh = Arc::new(Shared {
            meshes,
            points,
            batch: self.batch,
            places: cfg.places,
        });
        // Contiguous block assignment: buckets are x-strips, so the
        // clustered blobs land on a few places — exactly the static
        // distribution a programmer would write and exactly the
        // imbalance the paper's DMG exhibits.
        let buckets = self.buckets;
        (0..buckets)
            .filter(|&b| !sh.points[b].is_empty())
            .map(|b| {
                let home = PlaceId((b * sh.places as usize / buckets) as u32);
                chain_task(Arc::clone(&sh), b, 0, home)
            })
            .collect()
    }

    fn validate(&self) -> Result<(), String> {
        let guard = self.state.lock().unwrap();
        let st = guard.as_ref().ok_or("dmg: no run state")?;
        let mut total = 0usize;
        for (b, mesh) in st.meshes.iter().enumerate() {
            let m = mesh.lock().unwrap();
            if m.inserted() != st.bucket_sizes[b] {
                return Err(format!(
                    "bucket {b}: inserted {} of {}",
                    m.inserted(),
                    st.bucket_sizes[b]
                ));
            }
            if m.live_triangles() != 1 + 2 * m.inserted() {
                return Err(format!("bucket {b}: Euler relation violated"));
            }
            m.check_structure()
                .map_err(|e| format!("bucket {b}: {e}"))?;
            if m.delaunay_violations(2_000) > 0 {
                return Err(format!("bucket {b}: Delaunay property violated"));
            }
            total += m.inserted();
        }
        if total != st.bucket_sizes.iter().sum::<usize>() {
            return Err("points lost".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_imbalanced() {
        let g = DelaunayGen::default();
        let pts = g.gen_points();
        let sizes: Vec<usize> = pts.iter().map(|b| b.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let nonzero_min = *sizes.iter().filter(|&&s| s > 0).min().unwrap();
        assert!(
            max >= nonzero_min * 10,
            "bucket sizes too even for the imbalance study: {sizes:?}"
        );
        assert_eq!(sizes.iter().sum::<usize>(), g.n_points);
    }

    #[test]
    fn points_stay_in_unit_square() {
        let g = DelaunayGen::quick();
        for bucket in g.gen_points() {
            for p in bucket {
                assert!((0.0..1.0).contains(&p.x) && (0.0..1.0).contains(&p.y));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DelaunayGen::quick().gen_points();
        let b = DelaunayGen::quick().gen_points();
        assert_eq!(
            a.iter().map(|v| v.len()).collect::<Vec<_>>(),
            b.iter().map(|v| v.len()).collect::<Vec<_>>()
        );
    }
}
