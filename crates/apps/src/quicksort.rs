//! **Quicksort** (Cowichan): global sort of a large integer array.
//!
//! Structure follows a distributed sample sort, which is how a global
//! sort is realistically expressed over X10 places:
//!
//! 1. a root task at place 0 samples splitters and partitions the
//!    array into one bucket per place (deliberately coarse sampling —
//!    real sample sorts have unequal buckets, and those unequal buckets
//!    are precisely the cross-place imbalance DistWS exploits);
//! 2. one *locality-sensitive* region task per place (`async at (p)`)
//!    quicksorts its bucket, recursively spawning sub-segment tasks;
//! 3. sub-segments small enough to ship cheaply are annotated
//!    *locality-flexible* (`@AnyPlaceTask`) with their segment bytes as
//!    the migration footprint — a quicksort sub-tree encapsulates all
//!    data it needs (paper §II condition (d)).
//!
//! Validation: the final array is globally sorted and is a permutation
//! of the input (length + wrapping sum + xor preserved).

use crate::util::SharedSlice;
use distws_core::rng::SplitMix64;
use distws_core::{
    Access, ClusterConfig, Footprint, Locality, ObjectId, PlaceId, TaskScope, TaskSpec, Workload,
};
use std::sync::{Arc, Mutex};

/// Virtual cost of partitioning, per element (ns).
const PARTITION_NS_PER_ELEM: u64 = 20;
/// Virtual cost of a leaf sort, per element per log-level (ns).
const LEAF_NS_PER_ELEM_LEVEL: u64 = 20;

/// The quicksort workload.
pub struct Quicksort {
    /// Array length.
    pub n: usize,
    /// Input seed.
    pub seed: u64,
    /// Segments at or below this length sort sequentially in one task.
    pub grain: usize,
    /// Segments at or below this length are locality-flexible.
    pub flex_max: usize,
    state: Mutex<Option<RunState>>,
}

struct RunState {
    data: Arc<SharedSlice<u64>>,
    expect_sum: u64,
    expect_xor: u64,
    n: usize,
}

impl Default for Quicksort {
    fn default() -> Self {
        Quicksort::new(1 << 20, 42)
    }
}

impl Quicksort {
    /// Quicksort of `n` random u64s.
    pub fn new(n: usize, seed: u64) -> Self {
        Quicksort {
            n,
            seed,
            grain: (n / 256).clamp(1 << 10, 1 << 17),
            flex_max: (n / 8).clamp(1 << 12, 1 << 21),
            state: Mutex::new(None),
        }
    }

    /// Tiny instance for tests.
    pub fn quick() -> Self {
        Quicksort::new(20_000, 7)
    }

    /// The paper's full-scale instance: 100 M elements.
    pub fn paper() -> Self {
        Quicksort::new(100_000_000, 42)
    }
}

/// Per-bucket segment map used for data-access accounting: bucket `i`
/// is object `base + i`, homed at place `i`.
#[derive(Clone, Copy)]
struct SegMap {
    base: u64,
}

impl SegMap {
    fn access_rw(
        &self,
        bucket: usize,
        bucket_start: usize,
        lo: usize,
        hi: usize,
        home: PlaceId,
    ) -> [Access; 2] {
        let obj = ObjectId(self.base + bucket as u64);
        let off = (lo - bucket_start) as u64 * 8;
        let bytes = (hi - lo) as u64 * 8;
        [
            Access::read(obj, off, bytes, home),
            Access::write(obj, off, bytes, home),
        ]
    }

    fn footprint(
        &self,
        bucket: usize,
        bucket_start: usize,
        lo: usize,
        hi: usize,
        home: PlaceId,
    ) -> Footprint {
        let obj = ObjectId(self.base + bucket as u64);
        Footprint {
            regions: vec![Access::read(
                obj,
                (lo - bucket_start) as u64 * 8,
                (hi - lo) as u64 * 8,
                home,
            )],
        }
    }
}

struct Shared {
    data: Arc<SharedSlice<u64>>,
    seg: SegMap,
    grain: usize,
    flex_max: usize,
}

/// Recursive quicksort task over `[lo, hi)` inside `bucket` (whose
/// range starts at `bucket_start`).
fn sort_task(
    sh: Arc<Shared>,
    bucket: usize,
    bucket_start: usize,
    lo: usize,
    hi: usize,
) -> TaskSpec {
    let len = hi - lo;
    let leaf = len <= sh.grain;
    let est = if leaf {
        let levels = usize::BITS - len.max(2).leading_zeros();
        LEAF_NS_PER_ELEM_LEVEL * len as u64 * levels as u64
    } else {
        PARTITION_NS_PER_ELEM * len as u64
    };
    let locality = if len <= sh.flex_max {
        Locality::Flexible
    } else {
        Locality::Sensitive
    };
    let sh2 = Arc::clone(&sh);
    let body = move |s: &mut dyn TaskScope| {
        let here = s.here();
        // The data this task touches is local at the executing place:
        // either genuinely (home run) or as the carried copy of a
        // migrated sub-tree (paper §II(d)).
        for a in sh2.seg.access_rw(bucket, bucket_start, lo, hi, here) {
            s.access(a);
        }
        // SAFETY: quicksort tasks own disjoint [lo, hi) ranges carved
        // out by their parents.
        let seg = unsafe { sh2.data.slice_mut(lo, hi) };
        if seg.len() <= sh2.grain {
            seg.sort_unstable();
            return;
        }
        // Hoare-style partition around a median-of-3 pivot.
        let mid = seg.len() / 2;
        let last = seg.len() - 1;
        let pivot = median3(seg[0], seg[mid], seg[last]);
        let split = partition(seg, pivot);
        // Guard against degenerate splits (many duplicates).
        let split = split.clamp(1, seg.len() - 1);
        let here = s.here();
        for (clo, chi) in [(lo, lo + split), (lo + split, hi)] {
            if chi > clo {
                let mut child = sort_task(Arc::clone(&sh2), bucket, bucket_start, clo, chi);
                child.home = here;
                // Data homes follow the executing place (thief copies
                // are local to children created at the thief).
                child.footprint = sh2.seg.footprint(bucket, bucket_start, clo, chi, here);
                s.spawn(child);
            }
        }
    };
    let fp = sh.seg.footprint(bucket, bucket_start, lo, hi, PlaceId(0));
    TaskSpec::new(
        PlaceId(0),
        locality,
        est,
        if leaf { "qsort-leaf" } else { "qsort-part" },
        body,
    )
    .with_footprint(fp)
}

fn median3(a: u64, b: u64, c: u64) -> u64 {
    a.max(b).min(a.min(b).max(c))
}

/// Partition `seg` so that elements `< pivot` precede the returned
/// index and elements `>= pivot` follow it.
fn partition(seg: &mut [u64], pivot: u64) -> usize {
    let mut i = 0usize;
    for j in 0..seg.len() {
        if seg[j] < pivot {
            seg.swap(i, j);
            i += 1;
        }
    }
    i
}

impl Workload for Quicksort {
    fn name(&self) -> String {
        "Quicksort".into()
    }

    fn roots(&self, cfg: &ClusterConfig) -> Vec<TaskSpec> {
        let mut rng = SplitMix64::new(self.seed);
        let data: Vec<u64> = (0..self.n).map(|_| rng.next_u64()).collect();
        let expect_sum = data.iter().fold(0u64, |a, &x| a.wrapping_add(x));
        let expect_xor = data.iter().fold(0u64, |a, &x| a ^ x);
        let shared = SharedSlice::new(data);
        *self.state.lock().unwrap() = Some(RunState {
            data: Arc::clone(&shared),
            expect_sum,
            expect_xor,
            n: self.n,
        });

        let places = cfg.places as usize;
        let n = self.n;
        let sh = Arc::new(Shared {
            data: shared,
            seg: SegMap { base: 1 },
            grain: self.grain,
            flex_max: self.flex_max,
        });
        let seed = self.seed;

        // --- Parallel sample-sort pipeline ---------------------------------
        // 1. the root samples coarse splitters (deliberately few
        //    samples, so bucket sizes genuinely vary — the imbalance);
        // 2. one *exchange* task per place partitions its input block
        //    into per-destination pieces (the all-to-all);
        // 3. after a finish barrier, one *assemble* task per place
        //    concatenates the pieces destined for it and kicks off the
        //    recursive bucket sort.
        let pieces: Arc<Vec<Mutex<Vec<Vec<u64>>>>> =
            Arc::new((0..places).map(|_| Mutex::new(Vec::new())).collect());

        let root_body = move |s: &mut dyn TaskScope| {
            let mut rng = SplitMix64::new(seed ^ 0xABCD);
            // SAFETY: the root samples alone before any children run.
            let all = unsafe { sh.data.slice(0, n) };
            let mut sample: Vec<u64> = (0..4 * places).map(|_| all[rng.below_usize(n)]).collect();
            sample.sort_unstable();
            let splitters: Arc<Vec<u64>> = Arc::new(
                (1..places)
                    .map(|i| sample[i * sample.len() / places])
                    .collect(),
            );
            s.charge(1_000 * (4 * places) as u64); // remote sampling probes

            // Assemble phase runs after every exchange completed.
            let sh_a = Arc::clone(&sh);
            let pieces_a = Arc::clone(&pieces);
            let assemble_coord = TaskSpec::new(
                PlaceId(0),
                Locality::Sensitive,
                10_000,
                "qsort-assemble-coord",
                move |s: &mut dyn TaskScope| {
                    // Bucket offsets from the piece sizes (prefix sums).
                    let sizes: Vec<usize> = (0..places)
                        .map(|b| pieces_a[b].lock().unwrap().iter().map(|v| v.len()).sum())
                        .collect();
                    let mut off = 0usize;
                    for (b, &size) in sizes.iter().enumerate() {
                        let lo = off;
                        off += size;
                        if size == 0 {
                            continue;
                        }
                        let sh_b = Arc::clone(&sh_a);
                        let pieces_b = Arc::clone(&pieces_a);
                        let t = TaskSpec::new(
                            PlaceId(b as u32),
                            Locality::Sensitive,
                            6 * size as u64, // concatenation is memcpy-bound
                            "qsort-assemble",
                            move |s: &mut dyn TaskScope| {
                                // SAFETY: assemble tasks own disjoint
                                // bucket ranges.
                                let dst = unsafe { sh_b.data.slice_mut(lo, lo + size) };
                                let mut w = 0usize;
                                for piece in pieces_b[b].lock().unwrap().drain(..) {
                                    dst[w..w + piece.len()].copy_from_slice(&piece);
                                    w += piece.len();
                                }
                                let here = s.here();
                                for a in sh_b.seg.access_rw(b, lo, lo, lo + size, here) {
                                    s.access(a);
                                }
                                // Recursive in-place sort of the bucket.
                                let mut t = sort_task(Arc::clone(&sh_b), b, lo, lo, lo + size);
                                t.home = here;
                                t.locality = Locality::Sensitive;
                                t.footprint = sh_b.seg.footprint(b, lo, lo, lo + size, here);
                                s.spawn(t);
                            },
                        );
                        s.spawn(t);
                    }
                },
            );
            let latch = distws_core::FinishLatch::new(places, assemble_coord);

            // One exchange task per place (`async at (p)`).
            for p in 0..places {
                let lo = p * n / places;
                let hi = (p + 1) * n / places;
                let sh_e = Arc::clone(&sh);
                let pieces_e = Arc::clone(&pieces);
                let splitters = Arc::clone(&splitters);
                let t = TaskSpec::new(
                    PlaceId(p as u32),
                    Locality::Sensitive,
                    8 * (hi - lo) as u64, // scan + bucket, memcpy-bound
                    "qsort-exchange",
                    move |s: &mut dyn TaskScope| {
                        // SAFETY: exchange tasks read disjoint blocks.
                        let block = unsafe { sh_e.data.slice(lo, hi) };
                        let mut out: Vec<Vec<u64>> = vec![Vec::new(); places];
                        for &x in block {
                            let b = splitters.partition_point(|&sp| sp <= x);
                            out[b].push(x);
                        }
                        let here = s.here();
                        s.access(Access::read(
                            ObjectId(1 + p as u64),
                            0,
                            (hi - lo) as u64 * 8,
                            here,
                        ));
                        // The all-to-all: send each piece to its owner.
                        for (b, piece) in out.iter().enumerate() {
                            if !piece.is_empty() && b != p {
                                s.write(
                                    ObjectId(1 + b as u64),
                                    0,
                                    piece.len() as u64 * 8,
                                    PlaceId(b as u32),
                                );
                            }
                        }
                        for (b, piece) in out.into_iter().enumerate() {
                            pieces_e[b].lock().unwrap().push(piece);
                        }
                    },
                )
                .with_latch(std::sync::Arc::clone(&latch));
                s.spawn(t);
            }
        };
        vec![TaskSpec::new(
            PlaceId(0),
            Locality::Sensitive,
            50_000,
            "qsort-root",
            root_body,
        )]
    }

    fn validate(&self) -> Result<(), String> {
        let guard = self.state.lock().unwrap();
        let st = guard.as_ref().ok_or("quicksort: no run state")?;
        // SAFETY: the run has completed; no tasks are live.
        let data = unsafe { st.data.snapshot() };
        if data.len() != st.n {
            return Err(format!("length changed: {} != {}", data.len(), st.n));
        }
        if !data.windows(2).all(|w| w[0] <= w[1]) {
            return Err("array not sorted".into());
        }
        let sum = data.iter().fold(0u64, |a, &x| a.wrapping_add(x));
        let xor = data.iter().fold(0u64, |a, &x| a ^ x);
        if sum != st.expect_sum || xor != st.expect_xor {
            return Err("not a permutation of the input".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_splits_correctly() {
        let mut v = vec![5u64, 1, 9, 3, 7, 2, 8];
        let s = partition(&mut v, 5);
        assert_eq!(s, 3);
        assert!(v[..s].iter().all(|&x| x < 5));
        assert!(v[s..].iter().all(|&x| x >= 5));
    }

    #[test]
    fn median3_is_middle() {
        assert_eq!(median3(1, 2, 3), 2);
        assert_eq!(median3(3, 1, 2), 2);
        assert_eq!(median3(2, 3, 1), 2);
        assert_eq!(median3(5, 5, 1), 5);
    }

    #[test]
    fn roots_shape() {
        let q = Quicksort::quick();
        let roots = q.roots(&ClusterConfig::new(4, 2));
        assert_eq!(roots.len(), 1, "single partition root");
        assert_eq!(roots[0].home, PlaceId(0));
    }
}
