//! Incremental 2-D Delaunay triangulation (Bowyer–Watson) with full
//! neighbour wiring — the substrate of the DMG and DMR applications.
//!
//! Representation: triangle soup with per-edge neighbour links.
//! Triangle vertices are counter-clockwise; edge `i` of a triangle is
//! the directed segment `v[i] → v[(i+1)%3]`, and `n[i]` is the
//! neighbour across that edge (`NONE` on the super-triangle boundary).
//!
//! Insertion: walk-locate from a hint, grow the circumcircle-violating
//! cavity by BFS, retriangulate the star of the new point, and rewire
//! neighbours through the cavity boundary cycle.

use crate::geometry::{circumcenter, in_circumcircle, min_angle_deg, orient2d, Point2};
use std::collections::HashMap;

/// Sentinel for "no neighbour".
pub const NONE: u32 = u32::MAX;

/// One triangle.
#[derive(Debug, Clone, Copy)]
pub struct Tri {
    /// Vertex indices, counter-clockwise.
    pub v: [u32; 3],
    /// Neighbour across edge `i` = `(v[i], v[(i+1)%3])`.
    pub n: [u32; 3],
    /// Dead triangles stay in the arena (freed lazily).
    pub alive: bool,
}

/// Statistics of one insertion, used for virtual-cost charging.
#[derive(Debug, Clone, Copy, Default)]
pub struct InsertStats {
    /// Triangles visited during point location.
    pub walk_steps: u32,
    /// Cavity size (triangles removed).
    pub cavity: u32,
    /// Triangles created.
    pub created: u32,
}

/// An incremental Delaunay triangulation.
#[derive(Debug, Clone)]
pub struct Triangulation {
    /// Vertex coordinates; indices 0–2 are the super-triangle.
    pub pts: Vec<Point2>,
    tris: Vec<Tri>,
    free: Vec<u32>,
    last: u32,
    inserted: usize,
    /// Input domain (expanded); refinement only inserts circumcenters
    /// inside it (the standard simplification of boundary handling).
    domain: (Point2, Point2),
}

impl Triangulation {
    /// Start from a super-triangle comfortably containing
    /// `[min, max]²`.
    pub fn new(min: Point2, max: Point2) -> Self {
        let w = (max.x - min.x).max(max.y - min.y).max(1e-9);
        let cx = (min.x + max.x) * 0.5;
        let cy = (min.y + max.y) * 0.5;
        let a = Point2::new(cx - 20.0 * w, cy - 10.0 * w);
        let b = Point2::new(cx + 20.0 * w, cy - 10.0 * w);
        let c = Point2::new(cx, cy + 20.0 * w);
        let margin = 0.25 * w;
        Triangulation {
            pts: vec![a, b, c],
            tris: vec![Tri {
                v: [0, 1, 2],
                n: [NONE; 3],
                alive: true,
            }],
            free: Vec::new(),
            last: 0,
            inserted: 0,
            domain: (
                Point2::new(min.x - margin, min.y - margin),
                Point2::new(max.x + margin, max.y + margin),
            ),
        }
    }

    /// Whether `p` lies in the (slightly expanded) input domain.
    pub fn in_domain(&self, p: &Point2) -> bool {
        p.x >= self.domain.0.x
            && p.x <= self.domain.1.x
            && p.y >= self.domain.0.y
            && p.y <= self.domain.1.y
    }

    /// Number of points inserted (excluding the super-triangle).
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// All live triangles not touching the super-triangle vertices.
    pub fn interior_triangles(&self) -> impl Iterator<Item = &Tri> {
        self.tris
            .iter()
            .filter(|t| t.alive && t.v.iter().all(|&v| v >= 3))
    }

    /// Number of live triangles (including super-adjacent ones).
    pub fn live_triangles(&self) -> usize {
        self.tris.iter().filter(|t| t.alive).count()
    }

    /// Corner coordinates of a triangle.
    pub fn corners(&self, t: &Tri) -> [Point2; 3] {
        [
            self.pts[t.v[0] as usize],
            self.pts[t.v[1] as usize],
            self.pts[t.v[2] as usize],
        ]
    }

    fn alive_hint(&self) -> u32 {
        if self.tris[self.last as usize].alive {
            return self.last;
        }
        self.tris
            .iter()
            .position(|t| t.alive)
            .map(|i| i as u32)
            .expect("triangulation has no live triangle")
    }

    /// Walk from the hint to the triangle containing `p`. Returns
    /// `(triangle, steps)`.
    fn locate(&self, p: &Point2) -> (u32, u32) {
        let mut t = self.alive_hint();
        let mut steps = 0u32;
        'walk: loop {
            steps += 1;
            if steps > self.tris.len() as u32 * 2 + 16 {
                // Numerical trouble: fall back to a linear scan.
                for (i, tri) in self.tris.iter().enumerate() {
                    if tri.alive && self.contains(tri, p) {
                        return (i as u32, steps);
                    }
                }
                panic!("locate: point {p:?} not inside any triangle");
            }
            let tri = &self.tris[t as usize];
            for i in 0..3 {
                let a = &self.pts[tri.v[i] as usize];
                let b = &self.pts[tri.v[(i + 1) % 3] as usize];
                if orient2d(a, b, p) < 0.0 {
                    let nb = tri.n[i];
                    assert!(nb != NONE, "walked out of the super-triangle at {p:?}");
                    t = nb;
                    continue 'walk;
                }
            }
            return (t, steps);
        }
    }

    fn contains(&self, tri: &Tri, p: &Point2) -> bool {
        (0..3).all(|i| {
            orient2d(
                &self.pts[tri.v[i] as usize],
                &self.pts[tri.v[(i + 1) % 3] as usize],
                p,
            ) >= 0.0
        })
    }

    fn circum_contains(&self, t: u32, p: &Point2) -> bool {
        let tri = &self.tris[t as usize];
        in_circumcircle(
            &self.pts[tri.v[0] as usize],
            &self.pts[tri.v[1] as usize],
            &self.pts[tri.v[2] as usize],
            p,
        )
    }

    /// Insert a point; panics if it coincides (exactly) with the walk
    /// degenerating — callers generate points in general position.
    pub fn insert(&mut self, p: Point2) -> InsertStats {
        let (t0, walk_steps) = self.locate(&p);
        let vi = self.pts.len() as u32;
        self.pts.push(p);

        // Grow the cavity: BFS over circumcircle violations.
        let mut cavity = vec![t0];
        let mut in_cavity = HashMap::new();
        in_cavity.insert(t0, true);
        let mut qi = 0;
        while qi < cavity.len() {
            let t = cavity[qi];
            qi += 1;
            for i in 0..3 {
                let nb = self.tris[t as usize].n[i];
                if nb == NONE || in_cavity.contains_key(&nb) {
                    continue;
                }
                if self.circum_contains(nb, &p) {
                    in_cavity.insert(nb, true);
                    cavity.push(nb);
                } else {
                    in_cavity.entry(nb).or_insert(false);
                }
            }
        }

        // Boundary edges (a, b, outer), directed as in their dead
        // triangle (so the new point is to the left).
        let mut boundary = Vec::new();
        for &t in &cavity {
            let tri = self.tris[t as usize];
            for i in 0..3 {
                let nb = tri.n[i];
                let outside = nb == NONE || !in_cavity.get(&nb).copied().unwrap_or(false);
                if outside {
                    boundary.push((tri.v[i], tri.v[(i + 1) % 3], nb));
                }
            }
        }

        // Kill the cavity.
        for &t in &cavity {
            self.tris[t as usize].alive = false;
            self.free.push(t);
        }

        // Retriangulate: one new triangle per boundary edge.
        let mut start_of: HashMap<u32, u32> = HashMap::with_capacity(boundary.len());
        let mut end_of: HashMap<u32, u32> = HashMap::with_capacity(boundary.len());
        let mut new_ids = Vec::with_capacity(boundary.len());
        for &(a, b, outer) in &boundary {
            let id = self.alloc(Tri {
                v: [a, b, vi],
                n: [outer, NONE, NONE],
                alive: true,
            });
            start_of.insert(a, id);
            end_of.insert(b, id);
            new_ids.push(id);
            // Fix the outer triangle's back-pointer.
            if outer != NONE {
                let ot = &mut self.tris[outer as usize];
                for j in 0..3 {
                    if ot.v[j] == b && ot.v[(j + 1) % 3] == a {
                        ot.n[j] = id;
                    }
                }
            }
        }
        // Wire the fan around the new vertex: triangle (a,b,v) meets
        // the triangle starting at b across edge (b,v), and the
        // triangle ending at a across edge (v,a).
        for &id in &new_ids {
            let (a, b) = {
                let t = &self.tris[id as usize];
                (t.v[0], t.v[1])
            };
            let right = *start_of.get(&b).expect("boundary cycle broken (start)");
            let left = *end_of.get(&a).expect("boundary cycle broken (end)");
            let t = &mut self.tris[id as usize];
            t.n[1] = right;
            t.n[2] = left;
        }

        self.last = new_ids[0];
        self.inserted += 1;
        InsertStats {
            walk_steps,
            cavity: cavity.len() as u32,
            created: new_ids.len() as u32,
        }
    }

    fn alloc(&mut self, t: Tri) -> u32 {
        if let Some(id) = self.free.pop() {
            self.tris[id as usize] = t;
            id
        } else {
            self.tris.push(t);
            (self.tris.len() - 1) as u32
        }
    }

    /// Check the Delaunay property on up to `sample` (triangle, point)
    /// combinations; returns the number of violations.
    pub fn delaunay_violations(&self, sample: usize) -> usize {
        let live: Vec<&Tri> = self.tris.iter().filter(|t| t.alive).collect();
        let mut violations = 0;
        let mut checked = 0;
        'outer: for t in &live {
            for (pi, p) in self.pts.iter().enumerate().skip(3) {
                if t.v.contains(&(pi as u32)) {
                    continue;
                }
                checked += 1;
                if checked > sample {
                    break 'outer;
                }
                if in_circumcircle(
                    &self.pts[t.v[0] as usize],
                    &self.pts[t.v[1] as usize],
                    &self.pts[t.v[2] as usize],
                    p,
                ) {
                    violations += 1;
                }
            }
        }
        violations
    }

    /// Structural invariant check: neighbour links are symmetric and
    /// every live triangle is CCW. Returns an error description.
    pub fn check_structure(&self) -> Result<(), String> {
        for (i, t) in self.tris.iter().enumerate() {
            if !t.alive {
                continue;
            }
            let [a, b, c] = self.corners(t);
            if orient2d(&a, &b, &c) <= 0.0 {
                return Err(format!("triangle {i} not CCW"));
            }
            for e in 0..3 {
                let nb = t.n[e];
                if nb == NONE {
                    continue;
                }
                let nt = &self.tris[nb as usize];
                if !nt.alive {
                    return Err(format!("triangle {i} points at dead neighbour {nb}"));
                }
                let (va, vb) = (t.v[e], t.v[(e + 1) % 3]);
                let has_back =
                    (0..3).any(|j| nt.v[j] == vb && nt.v[(j + 1) % 3] == va && nt.n[j] == i as u32);
                if !has_back {
                    return Err(format!("asymmetric link {i} -> {nb}"));
                }
            }
        }
        Ok(())
    }

    /// Live interior triangles with minimum angle below `deg` whose
    /// circumradius exceeds `r_min` and whose circumcenter lies inside
    /// the input domain (the refinement work-list).
    pub fn bad_triangles(&self, deg: f64, r_min: f64) -> Vec<[Point2; 3]> {
        self.interior_triangles()
            .filter_map(|t| {
                let [a, b, c] = self.corners(t);
                if min_angle_deg(&a, &b, &c) < deg {
                    if let Some(cc) = circumcenter(&a, &b, &c) {
                        if cc.dist(&a) > r_min && self.in_domain(&cc) {
                            return Some([a, b, c]);
                        }
                    }
                }
                None
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distws_core::rng::SplitMix64;

    fn random_triangulation(n: usize, seed: u64) -> Triangulation {
        let mut rng = SplitMix64::new(seed);
        let mut t = Triangulation::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
        for _ in 0..n {
            t.insert(Point2::new(rng.next_f64(), rng.next_f64()));
        }
        t
    }

    #[test]
    fn triangle_count_follows_euler() {
        // With a super-triangle, every insertion adds net 2 triangles.
        for n in [1usize, 5, 50, 300] {
            let t = random_triangulation(n, 42);
            assert_eq!(t.live_triangles(), 1 + 2 * n, "n={n}");
            assert_eq!(t.inserted(), n);
        }
    }

    #[test]
    fn structure_is_consistent() {
        let t = random_triangulation(200, 7);
        t.check_structure().unwrap();
    }

    #[test]
    fn delaunay_property_holds() {
        let t = random_triangulation(150, 99);
        assert_eq!(t.delaunay_violations(50_000), 0);
    }

    #[test]
    fn single_point_star_is_three_triangles() {
        let mut t = Triangulation::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
        let stats = t.insert(Point2::new(0.5, 0.5));
        assert_eq!(stats.cavity, 1);
        assert_eq!(stats.created, 3);
        assert_eq!(t.live_triangles(), 3);
        t.check_structure().unwrap();
    }

    #[test]
    fn interior_triangles_exclude_super() {
        let t = random_triangulation(40, 3);
        for tri in t.interior_triangles() {
            assert!(tri.v.iter().all(|&v| v >= 3));
        }
        // There are some interior triangles for 40 points.
        assert!(t.interior_triangles().count() > 10);
    }

    #[test]
    fn refinement_worklist_detects_skinny_triangles() {
        // A flat triangle (min angle ≈ 27°) whose circumcenter stays
        // inside the domain.
        let mut t = Triangulation::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
        t.insert(Point2::new(0.40, 0.40));
        t.insert(Point2::new(0.60, 0.40));
        t.insert(Point2::new(0.50, 0.45));
        assert!(!t.bad_triangles(30.0, 1e-6).is_empty());
        // A well-shaped configuration yields an empty work-list.
        let mut good = Triangulation::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
        good.insert(Point2::new(0.40, 0.40));
        good.insert(Point2::new(0.60, 0.40));
        good.insert(Point2::new(0.50, 0.55));
        assert!(good.bad_triangles(30.0, 1e-6).is_empty());
    }

    #[test]
    fn insertion_is_deterministic() {
        let a = random_triangulation(100, 5);
        let b = random_triangulation(100, 5);
        assert_eq!(a.live_triangles(), b.live_triangles());
        assert_eq!(a.pts.len(), b.pts.len());
    }
}
