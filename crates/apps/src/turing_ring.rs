//! **Turing ring** (Cowichan): predator/prey dynamics on a distributed
//! ring of cells — the paper's §IV.B running example.
//!
//! Each iteration updates every cell's predator and prey populations
//! and migrates bodies to neighbouring cells; migration "can change the
//! workload in cells by as much as two orders of magnitude in a single
//! iteration", which is exactly the imbalance source here: bodies start
//! concentrated in a few cells and travel around the ring as a wave, so
//! places take turns being overloaded.
//!
//! Task structure mirrors the paper's pseudo-code (Fig. 1):
//!
//! * the **outer per-cell task** performs the predator update and the
//!   migration bookkeeping; it is *locality-flexible* — once the cell
//!   is copied to a thief, every remaining operation is local and no
//!   results need copying back (§IV.B);
//! * the **inner `async (thisPlace)` task** (`updatePreyPop`) is
//!   *locality-sensitive*: stealing it remotely would require copying
//!   population data to the thief *and the result back* — the paper's
//!   example of a task that should not migrate.
//!
//! Iterations are separated by `finish` barriers ([`distws_core::FinishLatch`]):
//! compute tasks → per-place apply tasks → next iteration.
//!
//! Validation: the final per-cell populations must equal a sequential
//! golden reference — the dynamics are deterministic and
//! order-independent within an iteration, so any scheduler must produce
//! the identical answer.

use crate::util::SharedSlice;
use distws_core::{
    Access, BlockDist, ClusterConfig, FinishLatch, Footprint, Locality, ObjectId, PlaceId,
    TaskScope, TaskSpec, Workload,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Population cap per species per cell (keeps integer dynamics bounded
/// and deterministic).
const CAP: u64 = 100_000;
/// Virtual compute cost per body processed (ns).
const NS_PER_BODY: u64 = 400;
/// Fixed per-task cost (ns).
const TASK_BASE_NS: u64 = 20_000;
/// Accounted size of one cell in bytes.
const CELL_BYTES: u64 = 48;

/// One ring cell. `pred`/`prey` are the current populations (read-only
/// during a compute phase); `next_*` are written only by the cell's own
/// tasks; `in_*` receive atomic migration deposits from neighbours.
#[derive(Debug, Default)]
pub struct Cell {
    /// Current predator population.
    pub pred: u64,
    /// Current prey population.
    pub prey: u64,
    next_pred: AtomicU64,
    next_prey: AtomicU64,
    in_pred: AtomicU64,
    in_prey: AtomicU64,
}

/// Pure single-cell step: returns (resident predators, resident prey,
/// predators migrating left, predators migrating right, prey migrating
/// right). Shared by the parallel tasks and the golden reference.
fn step_cell(pred: u64, prey: u64) -> (u64, u64, u64, u64, u64) {
    let interactions = pred.saturating_mul(prey) / 1_000;
    let prey_births = prey / 5;
    let prey_deaths = interactions.min(prey);
    let pred_births = interactions / 4;
    let pred_deaths = pred / 10;
    let next_prey = (prey + prey_births - prey_deaths).min(CAP);
    let next_pred = (pred + pred_births - pred_deaths).min(CAP);
    // Migration: the travelling-wave imbalance source.
    let prey_right = next_prey / 4;
    let pred_right = next_pred / 10;
    let pred_left = next_pred / 20;
    (
        next_pred - pred_right - pred_left,
        next_prey - prey_right,
        pred_left,
        pred_right,
        prey_right,
    )
}

/// Sequential golden reference for `iters` iterations.
fn golden(mut pred: Vec<u64>, mut prey: Vec<u64>, iters: usize) -> (Vec<u64>, Vec<u64>) {
    let n = pred.len();
    for _ in 0..iters {
        let mut np = vec![0u64; n];
        let mut ny = vec![0u64; n];
        for i in 0..n {
            let (rp, ry, pl, pr, yr) = step_cell(pred[i], prey[i]);
            np[i] += rp;
            ny[i] += ry;
            np[(i + n - 1) % n] += pl;
            np[(i + 1) % n] += pr;
            ny[(i + 1) % n] += yr;
        }
        pred = np;
        prey = ny;
    }
    (pred, prey)
}

/// The Turing-ring workload.
pub struct TuringRing {
    /// Number of ring cells.
    pub cells: usize,
    /// Initial bodies (split across the first cells as a wave seed).
    pub bodies: u64,
    /// Iterations to simulate.
    pub iterations: usize,
    state: Mutex<Option<RunState>>,
}

struct RunState {
    ring: Arc<SharedSlice<Cell>>,
    expect_pred: Vec<u64>,
    expect_prey: Vec<u64>,
}

impl Default for TuringRing {
    fn default() -> Self {
        TuringRing::new(1024, 1 << 16, 24)
    }
}

impl TuringRing {
    /// A ring of `cells` cells seeded with `bodies` bodies, run for
    /// `iterations` iterations.
    pub fn new(cells: usize, bodies: u64, iterations: usize) -> Self {
        assert!(cells >= 2);
        TuringRing {
            cells,
            bodies,
            iterations,
            state: Mutex::new(None),
        }
    }

    /// Tiny instance for tests.
    pub fn quick() -> Self {
        TuringRing::new(32, 4_000, 8)
    }

    /// The paper's scale: 1 M bodies.
    pub fn paper() -> Self {
        TuringRing::new(1024, 1_000_000, 100)
    }

    fn initial(&self) -> (Vec<u64>, Vec<u64>) {
        let n = self.cells;
        let seed_cells = (n / 16).max(1);
        let mut pred = vec![0u64; n];
        let mut prey = vec![0u64; n];
        for i in 0..seed_cells {
            prey[i] = self.bodies * 3 / 4 / seed_cells as u64;
            pred[i] = self.bodies / 4 / seed_cells as u64;
        }
        (pred, prey)
    }
}

struct Shared {
    ring: Arc<SharedSlice<Cell>>,
    dist: BlockDist,
    cells: usize,
    iterations: usize,
}

impl Shared {
    /// Access descriptor for cell `i` (object = its place's block).
    fn cell_access(&self, i: usize, write: bool) -> Access {
        let home = self.dist.place_of(i);
        self.cell_access_at(i, write, home)
    }

    /// Access descriptor for cell `i` with an overridden data home —
    /// used by the inner prey task, whose cell data is local wherever
    /// its (possibly migrated) parent ran (paper §IV.B: once the cell
    /// is copied to the thief, all further operations on it are local).
    fn cell_access_at(&self, i: usize, write: bool, home: PlaceId) -> Access {
        let block = self.dist.place_of(i);
        let start = self.dist.range_of(block).start;
        let obj = ObjectId(1 + block.0 as u64);
        let off = (i - start) as u64 * CELL_BYTES;
        if write {
            Access::write(obj, off, CELL_BYTES, home)
        } else {
            Access::read(obj, off, CELL_BYTES, home)
        }
    }
}

/// The inner `async (thisPlace)` prey-update task (locality-sensitive).
fn prey_task(sh: Arc<Shared>, i: usize, latch: Arc<FinishLatch>, here: PlaceId) -> TaskSpec {
    let sh2 = Arc::clone(&sh);
    let body = move |s: &mut dyn TaskScope| {
        // SAFETY: reads current populations (stable during the phase),
        // writes only this cell's `next_prey` / neighbour inboxes
        // (atomics).
        let ring = unsafe { sh2.ring.slice(0, sh2.cells) };
        let c = &ring[i];
        let (_, ry, _, _, yr) = step_cell(c.pred, c.prey);
        c.next_prey.store(ry, Ordering::Relaxed);
        let right = (i + 1) % sh2.cells;
        ring[right].in_prey.fetch_add(yr, Ordering::Relaxed);
        // Own cell: local where the parent ran; neighbour inbox: at the
        // neighbour's true home (the result must reach the real cell).
        let here = s.here();
        s.access(sh2.cell_access_at(i, false, here));
        s.access(sh2.cell_access(right, true));
        s.charge(NS_PER_BODY * (c.prey + 1));
    };
    TaskSpec::new(here, Locality::Sensitive, TASK_BASE_NS, "turing-prey", body).with_latch(latch)
}

/// The outer per-cell task (locality-flexible, `@AnyPlaceTask`).
fn cell_task(sh: Arc<Shared>, i: usize, latch: Arc<FinishLatch>) -> TaskSpec {
    let home = sh.dist.place_of(i);
    let fp = Footprint {
        regions: vec![sh.cell_access(i, false)],
    };
    let sh2 = Arc::clone(&sh);
    let latch2 = Arc::clone(&latch);
    let body = move |s: &mut dyn TaskScope| {
        // SAFETY: step tasks only read `pred`/`prey` (stable during
        // the phase) and publish into the atomic `next_*` fields.
        let ring = unsafe { sh2.ring.slice(0, sh2.cells) };
        let c = &ring[i];
        let (rp, _, pl, pr, _) = step_cell(c.pred, c.prey);
        c.next_pred.store(rp, Ordering::Relaxed);
        let left = (i + sh2.cells - 1) % sh2.cells;
        let right = (i + 1) % sh2.cells;
        ring[left].in_pred.fetch_add(pl, Ordering::Relaxed);
        ring[right].in_pred.fetch_add(pr, Ordering::Relaxed);
        s.access(sh2.cell_access(i, false));
        s.access(sh2.cell_access(left, true));
        s.access(sh2.cell_access(right, true));
        s.charge(NS_PER_BODY * (c.pred + 1));
        // The paper's line 6: async (thisPlace) c.updatePreyPop().
        s.spawn(prey_task(
            Arc::clone(&sh2),
            i,
            Arc::clone(&latch2),
            s.here(),
        ));
    };
    TaskSpec::new(home, Locality::Flexible, TASK_BASE_NS, "turing-cell", body)
        .with_footprint(fp)
        .with_latch(latch)
}

/// Per-place apply task: fold `next + inbox` into the current
/// populations for this place's cells.
fn apply_task(sh: Arc<Shared>, p: PlaceId, latch: Arc<FinishLatch>) -> TaskSpec {
    let range = sh.dist.range_of(p);
    let est = TASK_BASE_NS + 200 * range.len() as u64;
    let sh2 = Arc::clone(&sh);
    let body = move |s: &mut dyn TaskScope| {
        let range = sh2.dist.range_of(p);
        // SAFETY: apply tasks own disjoint per-place ranges and run in
        // a phase where no compute task is live.
        let cells = unsafe { sh2.ring.slice_mut(range.start, range.end) };
        for c in cells.iter_mut() {
            c.pred = c.next_pred.load(Ordering::Relaxed) + c.in_pred.swap(0, Ordering::Relaxed);
            c.prey = c.next_prey.load(Ordering::Relaxed) + c.in_prey.swap(0, Ordering::Relaxed);
            c.pred = c.pred.min(CAP * 2);
            c.prey = c.prey.min(CAP * 2);
        }
        s.access(Access::write(
            ObjectId(1 + p.0 as u64),
            0,
            range.len() as u64 * CELL_BYTES,
            p,
        ));
    };
    TaskSpec::new(p, Locality::Sensitive, est, "turing-apply", body).with_latch(latch)
}

/// Coordinator spawning one iteration: compute phase → apply phase →
/// recurse.
fn iteration_task(sh: Arc<Shared>, iter: usize) -> TaskSpec {
    let sh0 = Arc::clone(&sh);
    let body = move |s: &mut dyn TaskScope| {
        if iter == sh0.iterations {
            return; // done
        }
        let places = sh0.dist.places();
        // apply latch → next iteration
        let next = iteration_task(Arc::clone(&sh0), iter + 1);
        let apply_latch = FinishLatch::new(places as usize, next);
        // compute latch → apply coordinator
        let sh1 = Arc::clone(&sh0);
        let al = Arc::clone(&apply_latch);
        let apply_coord = TaskSpec::new(
            PlaceId(0),
            Locality::Sensitive,
            TASK_BASE_NS,
            "turing-apply-coord",
            move |s: &mut dyn TaskScope| {
                for p in 0..sh1.dist.places() {
                    s.spawn(apply_task(Arc::clone(&sh1), PlaceId(p), Arc::clone(&al)));
                }
            },
        );
        // outer + inner task per cell
        let compute_latch = FinishLatch::new(2 * sh0.cells, apply_coord);
        for i in 0..sh0.cells {
            s.spawn(cell_task(Arc::clone(&sh0), i, Arc::clone(&compute_latch)));
        }
    };
    TaskSpec::new(
        PlaceId(0),
        Locality::Sensitive,
        TASK_BASE_NS,
        "turing-iter",
        body,
    )
}

impl Workload for TuringRing {
    fn name(&self) -> String {
        "TuringRing".into()
    }

    fn roots(&self, cfg: &ClusterConfig) -> Vec<TaskSpec> {
        let (pred0, prey0) = self.initial();
        let cells: Vec<Cell> = pred0
            .iter()
            .zip(&prey0)
            .map(|(&p, &y)| Cell {
                pred: p,
                prey: y,
                ..Default::default()
            })
            .collect();
        let ring = SharedSlice::new(cells);
        let (expect_pred, expect_prey) = golden(pred0, prey0, self.iterations);
        *self.state.lock().unwrap() = Some(RunState {
            ring: Arc::clone(&ring),
            expect_pred,
            expect_prey,
        });
        let sh = Arc::new(Shared {
            ring,
            dist: BlockDist::new(self.cells, cfg.places),
            cells: self.cells,
            iterations: self.iterations,
        });
        vec![iteration_task(sh, 0)]
    }

    fn validate(&self) -> Result<(), String> {
        let guard = self.state.lock().unwrap();
        let st = guard.as_ref().ok_or("turing ring: no run state")?;
        // SAFETY: validation runs after the simulation drained, so no
        // task aliases the ring.
        let ring = unsafe { st.ring.slice(0, st.expect_pred.len()) };
        for (i, c) in ring.iter().enumerate() {
            if c.pred != st.expect_pred[i] || c.prey != st.expect_prey[i] {
                return Err(format!(
                    "cell {i}: got ({}, {}), golden ({}, {})",
                    c.pred, c.prey, st.expect_pred[i], st.expect_prey[i]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_conserves_migrants() {
        let (rp, ry, pl, pr, yr) = step_cell(500, 2_000);
        // Residents + emigrants equal the post-dynamics populations.
        let interactions = 500u64 * 2_000 / 1_000;
        let next_prey = (2_000 + 2_000 / 5 - interactions.min(2_000)).min(CAP);
        let next_pred = (500 + interactions / 4 - 50).min(CAP);
        assert_eq!(rp + pl + pr, next_pred);
        assert_eq!(ry + yr, next_prey);
    }

    #[test]
    fn golden_wave_travels() {
        let n = 16;
        let mut prey = vec![0u64; n];
        prey[0] = 10_000;
        let pred = vec![0u64; n];
        let (_, prey_after) = golden(pred, prey, 8);
        // After 8 iterations the prey front has moved right.
        assert!(prey_after[4] > 0, "wave did not propagate: {prey_after:?}");
    }

    #[test]
    fn empty_cells_stay_empty_without_neighbours() {
        let (rp, ry, pl, pr, yr) = step_cell(0, 0);
        assert_eq!((rp, ry, pl, pr, yr), (0, 0, 0, 0, 0));
    }

    #[test]
    fn golden_is_deterministic() {
        let t = TuringRing::quick();
        let (p0, y0) = t.initial();
        let a = golden(p0.clone(), y0.clone(), t.iterations);
        let b = golden(p0, y0, t.iterations);
        assert_eq!(a, b);
    }
}
