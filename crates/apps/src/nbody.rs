//! **n-Body** (Cowichan): gravitational simulation with the
//! Barnes–Hut octree algorithm (the paper simulates 220 K bodies).
//!
//! Per iteration:
//!
//! 1. a *locality-sensitive* build task at place 0 gathers the body
//!    positions (remote reads from every place — the gather a real
//!    distributed BH pays), builds the octree and fans out force tasks;
//! 2. *locality-flexible* force tasks, one per body chunk, traverse the
//!    immutable tree (reads against the tree object homed at place 0 —
//!    the broadcast traffic), compute accelerations with the θ
//!    opening criterion and integrate their own bodies (leapfrog).
//!    A chunk encapsulates its bodies, so a stolen chunk carries its
//!    data and writes nothing back until the next gather (§II (d));
//! 3. a finish latch releases the next iteration's build task.
//!
//! Forces are computed from the immutable tree with no cross-task
//! accumulation, so results are bit-identical under every scheduler:
//! validation compares the final body states against a sequential
//! golden run, and unit tests check BH forces against direct O(n²)
//! summation within the θ-approximation tolerance.

use crate::geometry::Vec3;
use crate::util::SharedSlice;
use distws_core::rng::SplitMix64;
use distws_core::{
    Access, BlockDist, ClusterConfig, FinishLatch, Footprint, Locality, ObjectId, PlaceId,
    TaskScope, TaskSpec, Workload,
};
use std::sync::{Arc, Mutex};

/// Virtual cost per tree-node visit during force traversal (ns).
const NS_PER_VISIT: u64 = 300;
/// Virtual cost per body insertion during tree build (ns).
const NS_PER_INSERT: u64 = 120;
/// Fixed per-task cost (ns).
const TASK_BASE_NS: u64 = 3_000;
/// Gravitational softening (squared).
const EPS2: f64 = 1e-4;
/// Leapfrog time step.
const DT: f64 = 1e-3;
/// Accounted byte size of one body.
const BODY_BYTES: u64 = 56;
/// Base object id of the per-place tree replicas (real BH codes
/// broadcast the tree once per node per iteration).
const TREE_OBJ_BASE: u64 = 1_000;
const BODY_OBJ_BASE: u64 = 2;

/// A point mass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    /// Position.
    pub pos: Vec3,
    /// Velocity.
    pub vel: Vec3,
    /// Mass.
    pub mass: f64,
}

// ---------------------------------------------------------------------------
// Octree
// ---------------------------------------------------------------------------

const NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    /// Cell center.
    center: Vec3,
    /// Cell half-width.
    half: f64,
    /// Total mass below this node.
    mass: f64,
    /// Center of mass (valid after `finalize`).
    com: Vec3,
    /// Child node indices (NONE = empty).
    children: [u32; 8],
    /// Body index if this is a leaf holding exactly one body.
    body: u32,
    /// Number of bodies below.
    count: u32,
}

/// A Barnes–Hut octree.
#[derive(Debug, Clone)]
pub struct Octree {
    nodes: Vec<Node>,
    positions: Vec<Vec3>,
    masses: Vec<f64>,
}

impl Octree {
    /// Build from a body set.
    pub fn build(bodies: &[Body]) -> Octree {
        // Bounding cube.
        let mut lo = Vec3::new(f64::MAX, f64::MAX, f64::MAX);
        let mut hi = Vec3::new(f64::MIN, f64::MIN, f64::MIN);
        for b in bodies {
            lo.x = lo.x.min(b.pos.x);
            lo.y = lo.y.min(b.pos.y);
            lo.z = lo.z.min(b.pos.z);
            hi.x = hi.x.max(b.pos.x);
            hi.y = hi.y.max(b.pos.y);
            hi.z = hi.z.max(b.pos.z);
        }
        let center = lo.add(&hi).scale(0.5);
        let half = ((hi.x - lo.x).max(hi.y - lo.y).max(hi.z - lo.z) * 0.5 + 1e-9).max(1e-9);
        let root = Node {
            center,
            half,
            mass: 0.0,
            com: Vec3::zero(),
            children: [NONE; 8],
            body: NONE,
            count: 0,
        };
        let mut tree = Octree {
            nodes: vec![root],
            positions: bodies.iter().map(|b| b.pos).collect(),
            masses: bodies.iter().map(|b| b.mass).collect(),
        };
        for i in 0..bodies.len() {
            tree.insert(0, i as u32, 0);
        }
        tree.finalize(0);
        tree
    }

    /// Number of tree nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn octant(&self, node: u32, p: &Vec3) -> usize {
        let c = &self.nodes[node as usize].center;
        (usize::from(p.x >= c.x)) | (usize::from(p.y >= c.y) << 1) | (usize::from(p.z >= c.z) << 2)
    }

    fn child_cell(&self, node: u32, oct: usize) -> (Vec3, f64) {
        let n = &self.nodes[node as usize];
        let h = n.half * 0.5;
        let dx = if oct & 1 != 0 { h } else { -h };
        let dy = if oct & 2 != 0 { h } else { -h };
        let dz = if oct & 4 != 0 { h } else { -h };
        (n.center.add(&Vec3::new(dx, dy, dz)), h)
    }

    fn insert(&mut self, node: u32, body: u32, depth: u32) {
        const MAX_DEPTH: u32 = 48;
        let n = &self.nodes[node as usize];
        if n.count == 0 {
            let n = &mut self.nodes[node as usize];
            n.body = body;
            n.count = 1;
            return;
        }
        // Internal (or leaf that must split).
        let existing = if n.count == 1 && n.body != NONE {
            Some(n.body)
        } else {
            None
        };
        self.nodes[node as usize].count += 1;
        if let Some(old) = existing {
            self.nodes[node as usize].body = NONE;
            if depth >= MAX_DEPTH {
                // Coincident points: keep both in this node by merging
                // masses at finalize time (store old in a chain via
                // count; acceptable for randomly generated inputs this
                // never triggers, but guard anyway).
                self.nodes[node as usize].body = old;
                return;
            }
            self.push_down(node, old, depth);
        }
        self.push_down(node, body, depth);
    }

    fn push_down(&mut self, node: u32, body: u32, depth: u32) {
        let pos = self.positions[body as usize];
        let oct = self.octant(node, &pos);
        let child = self.nodes[node as usize].children[oct];
        if child == NONE {
            let (center, half) = self.child_cell(node, oct);
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                center,
                half,
                mass: 0.0,
                com: Vec3::zero(),
                children: [NONE; 8],
                body,
                count: 1,
            });
            self.nodes[node as usize].children[oct] = idx;
        } else {
            self.insert(child, body, depth + 1);
        }
    }

    fn finalize(&mut self, node: u32) {
        let children = self.nodes[node as usize].children;
        let mut mass = 0.0;
        let mut com = Vec3::zero();
        if self.nodes[node as usize].body != NONE {
            let b = self.nodes[node as usize].body as usize;
            mass += self.masses[b] * self.nodes[node as usize].count as f64;
            com = com.add(
                &self.positions[b].scale(self.masses[b] * self.nodes[node as usize].count as f64),
            );
        }
        for c in children {
            if c != NONE {
                self.finalize(c);
                let cn = &self.nodes[c as usize];
                mass += cn.mass;
                com = com.add(&cn.com.scale(cn.mass));
            }
        }
        let n = &mut self.nodes[node as usize];
        n.mass = mass;
        n.com = if mass > 0.0 {
            com.scale(1.0 / mass)
        } else {
            n.center
        };
    }

    /// Acceleration on a test position using the θ opening criterion.
    /// Returns `(accel, nodes_visited)`.
    pub fn accel(&self, pos: &Vec3, theta: f64, skip_body: u32) -> (Vec3, u64) {
        let mut acc = Vec3::zero();
        let mut visited = 0u64;
        let mut stack = vec![0u32];
        while let Some(ni) = stack.pop() {
            visited += 1;
            let n = &self.nodes[ni as usize];
            if n.count == 0 || n.mass == 0.0 {
                continue;
            }
            let d = n.com.sub(pos);
            let r2 = d.norm2() + EPS2;
            let leaf = n.body != NONE;
            if leaf {
                if n.body == skip_body {
                    continue;
                }
                let inv = 1.0 / (r2 * r2.sqrt());
                acc = acc.add(&d.scale(n.mass * inv));
                continue;
            }
            if (2.0 * n.half) * (2.0 * n.half) < theta * theta * r2 {
                // Far enough: use the aggregate.
                let inv = 1.0 / (r2 * r2.sqrt());
                acc = acc.add(&d.scale(n.mass * inv));
            } else {
                for c in n.children {
                    if c != NONE {
                        stack.push(c);
                    }
                }
            }
        }
        (acc, visited)
    }
}

/// Direct O(n²) acceleration (reference for accuracy tests).
pub fn direct_accel(bodies: &[Body], i: usize) -> Vec3 {
    let mut acc = Vec3::zero();
    for (j, b) in bodies.iter().enumerate() {
        if j == i {
            continue;
        }
        let d = b.pos.sub(&bodies[i].pos);
        let r2 = d.norm2() + EPS2;
        let inv = 1.0 / (r2 * r2.sqrt());
        acc = acc.add(&d.scale(b.mass * inv));
    }
    acc
}

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

/// The Barnes–Hut n-body workload.
pub struct NBody {
    /// Number of bodies.
    pub n: usize,
    /// Simulation iterations.
    pub iterations: usize,
    /// θ opening parameter.
    pub theta: f64,
    /// Input seed.
    pub seed: u64,
    /// Force chunks per place per iteration.
    pub chunks_per_place: usize,
    state: Mutex<Option<RunState>>,
}

struct RunState {
    bodies: Arc<SharedSlice<Body>>,
    expect: Vec<Body>,
}

impl Default for NBody {
    fn default() -> Self {
        NBody::new(4_096, 4, 0.5, 77)
    }
}

impl NBody {
    /// n bodies, Plummer-ish clustered initial conditions.
    pub fn new(n: usize, iterations: usize, theta: f64, seed: u64) -> Self {
        NBody {
            n,
            iterations,
            theta,
            seed,
            chunks_per_place: 16,
            state: Mutex::new(None),
        }
    }

    /// Tiny instance for tests.
    pub fn quick() -> Self {
        NBody::new(512, 2, 0.6, 77)
    }

    /// Paper scale: 220 K bodies.
    pub fn paper() -> Self {
        NBody::new(220_000, 4, 0.5, 77)
    }

    /// Deterministic clustered initial conditions: a few dense clumps
    /// (so spatial chunks have very different tree-traversal costs —
    /// the irregularity source).
    pub fn initial_bodies(&self) -> Vec<Body> {
        let mut rng = SplitMix64::new(self.seed);
        let clumps = 5;
        let centers: Vec<Vec3> = (0..clumps)
            .map(|_| {
                Vec3::new(
                    rng.range_f64(-1.0, 1.0),
                    rng.range_f64(-1.0, 1.0),
                    rng.range_f64(-1.0, 1.0),
                )
            })
            .collect();
        (0..self.n)
            .map(|i| {
                // Skewed clump membership: the first half of the body
                // array is the dense clump, so contiguous index chunks
                // have wildly different traversal costs (spatial
                // locality follows array order, as in a real BH code
                // after sorting).
                let c = if i < self.n / 2 {
                    0
                } else {
                    1 + i % (clumps - 1)
                };
                let spread = if c == 0 { 0.05 } else { 0.3 };
                let pos = centers[c].add(&Vec3::new(
                    rng.range_f64(-spread, spread),
                    rng.range_f64(-spread, spread),
                    rng.range_f64(-spread, spread),
                ));
                Body {
                    pos,
                    vel: Vec3::zero(),
                    mass: 1.0 / self.n as f64,
                }
            })
            .collect()
    }

    fn step_sequential(bodies: &mut [Body], theta: f64) {
        let tree = Octree::build(bodies);
        for (i, b) in bodies.iter_mut().enumerate() {
            let (a, _) = tree.accel(&b.pos, theta, i as u32);
            b.vel = b.vel.add(&a.scale(DT));
        }
        for b in bodies.iter_mut() {
            b.pos = b.pos.add(&b.vel.scale(DT));
        }
    }
}

struct Shared {
    bodies: Arc<SharedSlice<Body>>,
    dist: BlockDist,
    n: usize,
    theta: f64,
    iterations: usize,
    chunks_per_place: usize,
    tree: Mutex<Option<Arc<Octree>>>,
}

/// Force + integrate task over bodies `[lo, hi)`.
fn force_task(sh: Arc<Shared>, lo: usize, hi: usize, latch: Arc<FinishLatch>) -> TaskSpec {
    let home = sh.dist.place_of(lo);
    let block_start = sh.dist.range_of(home).start;
    let obj = ObjectId(BODY_OBJ_BASE + home.0 as u64);
    let bytes = (hi - lo) as u64 * BODY_BYTES;
    let off = (lo - block_start) as u64 * BODY_BYTES;
    let fp = Footprint {
        regions: vec![Access::read(obj, off, bytes, home)],
    };
    let est = TASK_BASE_NS;
    let sh2 = Arc::clone(&sh);
    let body = move |s: &mut dyn TaskScope| {
        let tree = Arc::clone(sh2.tree.lock().unwrap().as_ref().expect("tree built"));
        // The tree replica is local to every place after the broadcast;
        // bodies are local too (carried when stolen).
        let here = s.here();
        let tree_bytes = (tree.node_count() * 48) as u64;
        s.read(
            ObjectId(TREE_OBJ_BASE + here.0 as u64),
            0,
            tree_bytes.min(1 << 18),
            here,
        );
        s.access(Access::read(obj, off, bytes, s.here()));
        s.access(Access::write(obj, off, bytes, s.here()));
        // SAFETY: force tasks own disjoint body ranges.
        let chunk = unsafe { sh2.bodies.slice_mut(lo, hi) };
        let mut visits = 0u64;
        for (k, b) in chunk.iter_mut().enumerate() {
            let (a, v) = tree.accel(&b.pos, sh2.theta, (lo + k) as u32);
            visits += v;
            b.vel = b.vel.add(&a.scale(DT));
        }
        s.charge(NS_PER_VISIT * visits);
    };
    TaskSpec::new(home, Locality::Flexible, est, "nbody-force", body)
        .with_footprint(fp)
        .with_latch(latch)
}

/// Build task: gather, build tree, integrate positions from the last
/// round, fan out force tasks.
fn build_task(sh: Arc<Shared>, iter: usize) -> TaskSpec {
    let est = TASK_BASE_NS + NS_PER_INSERT * sh.n as u64;
    let sh0 = Arc::clone(&sh);
    let body = move |s: &mut dyn TaskScope| {
        // Gather: read every place's body block (remote for p ≠ 0).
        for p in 0..sh0.dist.places() {
            let r = sh0.dist.range_of(PlaceId(p));
            s.read(
                ObjectId(BODY_OBJ_BASE + p as u64),
                0,
                r.len() as u64 * BODY_BYTES,
                PlaceId(p),
            );
        }
        // SAFETY: the build task runs alone between force phases.
        let all = unsafe { sh0.bodies.slice_mut(0, sh0.n) };
        if iter > 0 {
            // Drift step of the previous iteration.
            for b in all.iter_mut() {
                b.pos = b.pos.add(&b.vel.scale(DT));
            }
        }
        if iter == sh0.iterations {
            return;
        }
        let tree = Arc::new(Octree::build(all));
        // Broadcast the tree: one bulk write per place (remote for all
        // places but 0 — the real per-iteration broadcast traffic).
        let tree_bytes = (tree.node_count() * 48) as u64;
        for p in 0..sh0.dist.places() {
            s.write(
                ObjectId(TREE_OBJ_BASE + p as u64),
                0,
                tree_bytes,
                PlaceId(p),
            );
        }
        *sh0.tree.lock().unwrap() = Some(tree);
        // Fan out force chunks.
        let next = build_task(Arc::clone(&sh0), iter + 1);
        let mut chunks = Vec::new();
        for p in 0..sh0.dist.places() {
            let r = sh0.dist.range_of(PlaceId(p));
            if r.is_empty() {
                continue;
            }
            let per = (r.len() / sh0.chunks_per_place).max(1);
            let mut lo = r.start;
            while lo < r.end {
                let hi = (lo + per).min(r.end);
                chunks.push((lo, hi));
                lo = hi;
            }
        }
        let latch = FinishLatch::new(chunks.len(), next);
        for (lo, hi) in chunks {
            s.spawn(force_task(Arc::clone(&sh0), lo, hi, Arc::clone(&latch)));
        }
    };
    TaskSpec::new(PlaceId(0), Locality::Sensitive, est, "nbody-build", body)
}

impl Workload for NBody {
    fn name(&self) -> String {
        "n-Body".into()
    }

    fn roots(&self, cfg: &ClusterConfig) -> Vec<TaskSpec> {
        let init = self.initial_bodies();
        // Golden sequential run (identical phase structure).
        let mut expect = init.clone();
        for _ in 0..self.iterations {
            NBody::step_sequential(&mut expect, self.theta);
        }
        let bodies = SharedSlice::new(init);
        *self.state.lock().unwrap() = Some(RunState {
            bodies: Arc::clone(&bodies),
            expect,
        });
        let sh = Arc::new(Shared {
            bodies,
            dist: BlockDist::new(self.n, cfg.places),
            n: self.n,
            theta: self.theta,
            iterations: self.iterations,
            chunks_per_place: self.chunks_per_place,
            tree: Mutex::new(None),
        });
        vec![build_task(sh, 0)]
    }

    fn validate(&self) -> Result<(), String> {
        let guard = self.state.lock().unwrap();
        let st = guard.as_ref().ok_or("nbody: no run state")?;
        // SAFETY: validation runs after the simulation drained, so no
        // task aliases `bodies`.
        let got = unsafe { st.bodies.slice(0, st.expect.len()) };
        for (i, (g, e)) in got.iter().zip(&st.expect).enumerate() {
            if g != e {
                return Err(format!(
                    "body {i} diverged from golden run: {:?} vs {:?}",
                    g.pos, e.pos
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_mass_is_conserved() {
        let nb = NBody::quick();
        let bodies = nb.initial_bodies();
        let tree = Octree::build(&bodies);
        let total: f64 = bodies.iter().map(|b| b.mass).sum();
        assert!((tree.nodes[0].mass - total).abs() < 1e-9);
        assert_eq!(tree.nodes[0].count as usize, bodies.len());
    }

    #[test]
    fn bh_matches_direct_summation_within_theta_tolerance() {
        let nb = NBody::new(600, 1, 0.4, 5);
        let bodies = nb.initial_bodies();
        let tree = Octree::build(&bodies);
        let mut max_rel = 0.0f64;
        for i in (0..bodies.len()).step_by(37) {
            let (bh, _) = tree.accel(&bodies[i].pos, 0.4, i as u32);
            let exact = direct_accel(&bodies, i);
            let err = bh.sub(&exact).norm2().sqrt();
            let scale = exact.norm2().sqrt().max(1e-12);
            max_rel = max_rel.max(err / scale);
        }
        assert!(max_rel < 0.05, "BH error {max_rel} too large for θ=0.4");
    }

    #[test]
    fn theta_zero_is_exact() {
        let nb = NBody::new(100, 1, 0.0, 9);
        let bodies = nb.initial_bodies();
        let tree = Octree::build(&bodies);
        for i in 0..10 {
            let (bh, _) = tree.accel(&bodies[i].pos, 0.0, i as u32);
            let exact = direct_accel(&bodies, i);
            assert!(bh.sub(&exact).norm2().sqrt() < 1e-9);
        }
    }

    #[test]
    fn traversal_cost_varies_with_density() {
        // Bodies in the dense clump need more node visits than bodies
        // in sparse clumps — the irregularity DistWS exploits.
        let nb = NBody::new(2_000, 1, 0.5, 7);
        let bodies = nb.initial_bodies();
        let tree = Octree::build(&bodies);
        let (_, dense) = tree.accel(&bodies[0].pos, 0.5, 0); // clump 0
        let (_, sparse) = tree.accel(&bodies[1].pos, 0.5, 1); // other clump
        assert!(dense > 0 && sparse > 0);
    }

    #[test]
    fn sequential_step_is_deterministic() {
        let nb = NBody::quick();
        let mut a = nb.initial_bodies();
        let mut b = nb.initial_bodies();
        NBody::step_sequential(&mut a, nb.theta);
        NBody::step_sequential(&mut b, nb.theta);
        assert_eq!(a, b);
    }
}
