//! **k-Means** (Cowichan): Lloyd's algorithm, 4 clusters, fixed
//! iteration count (the paper runs 1000 iterations).
//!
//! Points are block-distributed across places. Each iteration runs one
//! *locality-flexible* assignment task per point chunk (the chunk's
//! points are its footprint — a stolen chunk carries everything it
//! needs and its partial sums are tiny), followed by a sensitive
//! reduction task at place 0 that recomputes the centroids and launches
//! the next iteration. Assignment tasks read the centroid block, which
//! is homed at place 0 — the per-iteration broadcast traffic a real
//! distributed k-means pays.
//!
//! All accumulation is **fixed-point** (20 fractional bits), so partial
//! sums are exactly associative: every scheduler and engine must
//! produce bit-identical centroids, validated against a sequential
//! golden reference. Inertia is additionally checked to be
//! non-increasing across iterations (the Lloyd invariant).

use distws_core::rng::SplitMix64;
use distws_core::{
    Access, ClusterConfig, FinishLatch, Footprint, Locality, ObjectId, PlaceId, TaskScope,
    TaskSpec, Workload,
};
use std::sync::{Arc, Mutex};

/// Fixed-point fractional bits.
const FP: u32 = 20;
/// Virtual cost per point-centroid distance evaluation (ns).
const NS_PER_DIST: u64 = 300;
/// Fixed per-task cost (ns).
const TASK_BASE_NS: u64 = 3_000;

/// Object id of the centroid block (homed at place 0).
const CENTROID_OBJ: ObjectId = ObjectId(1);
/// First object id of the per-place point blocks.
const POINTS_OBJ_BASE: u64 = 2;

/// The k-means workload.
pub struct KMeans {
    /// Number of points.
    pub n: usize,
    /// Number of clusters (paper: 4).
    pub k: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Lloyd iterations (paper: 1000).
    pub iterations: usize,
    /// Input seed.
    pub seed: u64,
    /// Assignment chunks per place per iteration.
    pub chunks_per_place: usize,
    state: Mutex<Option<RunState>>,
}

struct RunState {
    result: Arc<Mutex<ResultState>>,
    expect_centroids: Vec<i64>,
}

/// Fixed-point coordinates: points[i*dim..][..dim].
struct ResultState {
    centroids: Vec<i64>,
    inertia_history: Vec<u128>,
}

impl Default for KMeans {
    fn default() -> Self {
        KMeans::new(32_768, 4, 4, 25, 11)
    }
}

impl KMeans {
    /// k-means over `n` points in `dim` dimensions.
    pub fn new(n: usize, k: usize, dim: usize, iterations: usize, seed: u64) -> Self {
        assert!(k >= 1 && dim >= 1 && n >= k);
        KMeans {
            n,
            k,
            dim,
            iterations,
            seed,
            chunks_per_place: 16,
            state: Mutex::new(None),
        }
    }

    /// Tiny instance for tests.
    pub fn quick() -> Self {
        KMeans::new(2_000, 4, 2, 8, 3)
    }

    /// Paper scale: 4 clusters, 1000 iterations.
    pub fn paper() -> Self {
        KMeans::new(250_000, 4, 4, 1_000, 11)
    }

    /// Deterministic clustered input in fixed point.
    fn gen_points(&self) -> Vec<i64> {
        let mut rng = SplitMix64::new(self.seed);
        let one = 1i64 << FP;
        // k true centers, points scattered around them.
        let centers: Vec<i64> = (0..self.k * self.dim)
            .map(|_| (rng.next_f64() * one as f64) as i64)
            .collect();
        let mut pts = Vec::with_capacity(self.n * self.dim);
        for i in 0..self.n {
            let c = i % self.k;
            for d in 0..self.dim {
                let noise = ((rng.next_f64() - 0.5) * 0.2 * one as f64) as i64;
                pts.push(centers[c * self.dim + d] + noise);
            }
        }
        pts
    }

    fn initial_centroids(points: &[i64], k: usize, dim: usize) -> Vec<i64> {
        points[..k * dim].to_vec()
    }
}

fn dist2(a: &[i64], b: &[i64]) -> u128 {
    let mut s = 0u128;
    for (x, y) in a.iter().zip(b) {
        let d = (x - y) as i128;
        s += (d * d) as u128;
    }
    s
}

/// One Lloyd iteration computed sequentially (golden reference and the
/// reduction step share this math).
fn assign_chunk(
    points: &[i64],
    dim: usize,
    centroids: &[i64],
    k: usize,
) -> (Vec<i64>, Vec<u64>, u128) {
    let mut sums = vec![0i64; k * dim];
    let mut counts = vec![0u64; k];
    let mut inertia = 0u128;
    for p in points.chunks_exact(dim) {
        let mut best = 0usize;
        let mut bd = u128::MAX;
        for c in 0..k {
            let d = dist2(p, &centroids[c * dim..(c + 1) * dim]);
            if d < bd {
                bd = d;
                best = c;
            }
        }
        inertia += bd;
        counts[best] += 1;
        for (s, &x) in sums[best * dim..(best + 1) * dim].iter_mut().zip(p) {
            *s += x >> 8; // pre-scale to avoid i64 overflow on big n
        }
    }
    (sums, counts, inertia)
}

fn new_centroids(sums: &[i64], counts: &[u64], old: &[i64], k: usize, dim: usize) -> Vec<i64> {
    let mut out = old.to_vec();
    for c in 0..k {
        if counts[c] > 0 {
            for d in 0..dim {
                out[c * dim + d] = (sums[c * dim + d] / counts[c] as i64) << 8;
            }
        }
    }
    out
}

fn golden(points: &[i64], k: usize, dim: usize, iters: usize) -> Vec<i64> {
    let mut centroids = KMeans::initial_centroids(points, k, dim);
    for _ in 0..iters {
        let (s, c, _) = assign_chunk(points, dim, &centroids, k);
        centroids = new_centroids(&s, &c, &centroids, k, dim);
    }
    centroids
}

struct Shared {
    points: Arc<Vec<i64>>,
    /// Point chunks `(lo, hi, home)`: deliberately size-skewed (data
    /// volume per ingestion source varies), so per-place load is
    /// unequal — the imbalance X10WS cannot repair.
    chunks: Vec<(usize, usize, PlaceId)>,
    k: usize,
    dim: usize,
    iterations: usize,
    result: Arc<Mutex<ResultState>>,
    /// Partial sums of the in-flight iteration.
    acc: Mutex<(Vec<i64>, Vec<u64>, u128)>,
}

/// Build size-skewed chunk ranges: chunk `i` gets a share ∝ `i + 1`,
/// chunks assigned to places in contiguous blocks.
fn skewed_chunks(n: usize, nchunks: usize, places: u32) -> Vec<(usize, usize, PlaceId)> {
    let nchunks = nchunks.min(n).max(1);
    let total_weight: usize = nchunks * (nchunks + 1) / 2;
    let mut out = Vec::with_capacity(nchunks);
    let mut lo = 0usize;
    for i in 0..nchunks {
        let hi = if i == nchunks - 1 {
            n
        } else {
            (lo + ((i + 1) * n).div_ceil(total_weight)).min(n)
        };
        let home = PlaceId((i * places as usize / nchunks) as u32);
        out.push((lo, hi, home));
        lo = hi;
    }
    out
}

/// One flexible assignment task over chunk `idx`.
fn chunk_task(sh: Arc<Shared>, idx: usize, latch: Arc<FinishLatch>) -> TaskSpec {
    let (lo, hi, home) = sh.chunks[idx];
    let npts = hi - lo;
    let est = TASK_BASE_NS + NS_PER_DIST * (npts * sh.k * sh.dim) as u64;
    let bytes = (npts * sh.dim * 8) as u64;
    let obj = ObjectId(POINTS_OBJ_BASE + idx as u64);
    let fp = Footprint {
        regions: vec![Access::read(obj, 0, bytes, home)],
    };
    let sh2 = Arc::clone(&sh);
    let body = move |s: &mut dyn TaskScope| {
        let centroids = sh2.result.lock().unwrap().centroids.clone();
        // Centroid broadcast: homed at place 0.
        s.read(CENTROID_OBJ, 0, (sh2.k * sh2.dim * 8) as u64, PlaceId(0));
        // Point chunk: local at the executing place (carried if stolen).
        s.access(Access::read(obj, 0, bytes, s.here()));
        let pts = &sh2.points[lo * sh2.dim..hi * sh2.dim];
        let (sums, counts, inertia) = assign_chunk(pts, sh2.dim, &centroids, sh2.k);
        let mut acc = sh2.acc.lock().unwrap();
        for (a, b) in acc.0.iter_mut().zip(&sums) {
            *a += b;
        }
        for (a, b) in acc.1.iter_mut().zip(&counts) {
            *a += b;
        }
        acc.2 += inertia;
    };
    TaskSpec::new(home, Locality::Flexible, est, "kmeans-chunk", body)
        .with_footprint(fp)
        .with_latch(latch)
}

/// Per-iteration coordinator: reduce the previous iteration (if any),
/// then fan out the next round of chunk tasks.
fn iteration_task(sh: Arc<Shared>, iter: usize) -> TaskSpec {
    let sh0 = Arc::clone(&sh);
    let est = TASK_BASE_NS + (sh.k * sh.dim * 200) as u64;
    let body = move |s: &mut dyn TaskScope| {
        if iter > 0 {
            // Reduction: fold partial sums into new centroids.
            let (sums, counts, inertia) = {
                let mut acc = sh0.acc.lock().unwrap();
                let k = sh0.k * sh0.dim;
                let taken = (
                    std::mem::replace(&mut acc.0, vec![0i64; k]),
                    std::mem::replace(&mut acc.1, vec![0u64; sh0.k]),
                    acc.2,
                );
                acc.2 = 0;
                taken
            };
            let mut res = sh0.result.lock().unwrap();
            let next = new_centroids(&sums, &counts, &res.centroids, sh0.k, sh0.dim);
            res.centroids = next;
            res.inertia_history.push(inertia);
            s.write(CENTROID_OBJ, 0, (sh0.k * sh0.dim * 8) as u64, PlaceId(0));
        }
        if iter == sh0.iterations {
            return;
        }
        let next = iteration_task(Arc::clone(&sh0), iter + 1);
        let latch = FinishLatch::new(sh0.chunks.len(), next);
        for idx in 0..sh0.chunks.len() {
            s.spawn(chunk_task(Arc::clone(&sh0), idx, Arc::clone(&latch)));
        }
    };
    TaskSpec::new(PlaceId(0), Locality::Sensitive, est, "kmeans-iter", body)
}

impl Workload for KMeans {
    fn name(&self) -> String {
        "k-Means".into()
    }

    fn roots(&self, cfg: &ClusterConfig) -> Vec<TaskSpec> {
        let points = Arc::new(self.gen_points());
        let centroids = KMeans::initial_centroids(&points, self.k, self.dim);
        let expect = golden(&points, self.k, self.dim, self.iterations);
        let result = Arc::new(Mutex::new(ResultState {
            centroids,
            inertia_history: Vec::new(),
        }));
        *self.state.lock().unwrap() = Some(RunState {
            result: Arc::clone(&result),
            expect_centroids: expect,
        });
        let nchunks = self.chunks_per_place * cfg.places as usize;
        let sh = Arc::new(Shared {
            points,
            chunks: skewed_chunks(self.n, nchunks, cfg.places),
            k: self.k,
            dim: self.dim,
            iterations: self.iterations,
            result,
            acc: Mutex::new((vec![0i64; self.k * self.dim], vec![0u64; self.k], 0)),
        });
        vec![iteration_task(sh, 0)]
    }

    fn validate(&self) -> Result<(), String> {
        let guard = self.state.lock().unwrap();
        let st = guard.as_ref().ok_or("kmeans: no run state")?;
        let res = st.result.lock().unwrap();
        if res.centroids != st.expect_centroids {
            return Err("centroids differ from sequential golden run".into());
        }
        // Lloyd's invariant: inertia is non-increasing (up to the
        // 8-bit centroid rounding of the fixed-point representation,
        // which can wiggle the plateau at convergence by a hair).
        for w in res.inertia_history.windows(2) {
            if w[1] > w[0] + w[0] / 100_000 {
                return Err(format!("inertia increased: {} -> {}", w[0], w[1]));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_chunks_partition_exactly_and_skew() {
        for (n, c, places) in [(1_000usize, 16usize, 4u32), (32_768, 64, 16), (10, 64, 4)] {
            let chunks = skewed_chunks(n, c, places);
            // Exact partition of [0, n).
            assert_eq!(chunks[0].0, 0);
            assert_eq!(chunks.last().unwrap().1, n);
            for w in chunks.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
            // Place loads are skewed: last place's points far exceed
            // the first's (when there are enough points to skew).
            if n >= 1_000 {
                let load = |p: u32| -> usize {
                    chunks
                        .iter()
                        .filter(|(_, _, h)| h.0 == p)
                        .map(|(lo, hi, _)| hi - lo)
                        .sum()
                };
                assert!(load(places - 1) >= 4 * load(0).max(1), "not skewed enough");
            }
        }
    }

    #[test]
    fn fixed_point_assignment_is_exact() {
        let km = KMeans::quick();
        let pts = km.gen_points();
        let cent = KMeans::initial_centroids(&pts, km.k, km.dim);
        let a = assign_chunk(&pts, km.dim, &cent, km.k);
        let b = assign_chunk(&pts, km.dim, &cent, km.k);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn chunked_sums_equal_whole() {
        let km = KMeans::quick();
        let pts = km.gen_points();
        let cent = KMeans::initial_centroids(&pts, km.k, km.dim);
        let (s_all, c_all, i_all) = assign_chunk(&pts, km.dim, &cent, km.k);
        let half = (km.n / 2) * km.dim;
        let (s1, c1, i1) = assign_chunk(&pts[..half], km.dim, &cent, km.k);
        let (s2, c2, i2) = assign_chunk(&pts[half..], km.dim, &cent, km.k);
        let s: Vec<i64> = s1.iter().zip(&s2).map(|(a, b)| a + b).collect();
        let c: Vec<u64> = c1.iter().zip(&c2).map(|(a, b)| a + b).collect();
        assert_eq!(s, s_all);
        assert_eq!(c, c_all);
        assert_eq!(i1 + i2, i_all);
    }

    #[test]
    fn golden_inertia_decreases() {
        let km = KMeans::quick();
        let pts = km.gen_points();
        let mut cent = KMeans::initial_centroids(&pts, km.k, km.dim);
        let mut last = u128::MAX;
        for _ in 0..5 {
            let (s, c, inertia) = assign_chunk(&pts, km.dim, &cent, km.k);
            assert!(inertia <= last);
            last = inertia;
            cent = new_centroids(&s, &c, &cent, km.k, km.dim);
        }
    }

    #[test]
    fn empty_cluster_keeps_old_centroid() {
        let old = vec![1, 2, 3, 4];
        let sums = vec![100, 100, 0, 0];
        let counts = vec![2, 0];
        let out = new_centroids(&sums, &counts, &old, 2, 2);
        assert_eq!(&out[2..], &[3, 4], "empty cluster must keep its centroid");
        assert_eq!(&out[..2], &[(100 / 2) << 8, (100 / 2) << 8]);
    }
}
