//! # distws-cachesim
//!
//! A set-associative LRU data-cache model.
//!
//! Table II of the paper reports L1d miss rates measured with hardware
//! counters; the scheduler-dependent differences come from tasks losing
//! cache warmth when they (or random neighbours) migrate between nodes.
//! We reproduce that mechanism by giving each simulated worker its own
//! L1 model and replaying every task's data accesses against the cache
//! of the worker that actually executed it: a task stolen to a remote
//! place naturally starts cold there, and a victim whose tasks are
//! stolen at random (DistWS-NS) loses reuse it would otherwise have had.
//!
//! Addresses are formed from `(ObjectId, byte offset)`; distinct
//! objects never alias.

#![forbid(unsafe_code)]

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Cache line size in bytes (power of two).
    pub line_bytes: u64,
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
}

impl CacheConfig {
    /// 32 KiB, 8-way, 64-byte lines — the Opteron-era L1d of the
    /// paper's testbed (and most x86 cores since).
    pub fn l1d() -> Self {
        CacheConfig {
            line_bytes: 64,
            sets: 64,
            ways: 8,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.line_bytes * self.sets as u64 * self.ways as u64
    }
}

/// Outcome counters of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Line-granular accesses.
    pub accesses: u64,
    /// Misses among them.
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in percent (0 if no accesses).
    pub fn miss_rate_pct(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            100.0 * self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    /// Monotone LRU stamp: larger = more recently used.
    stamp: u64,
}

/// One set-associative LRU cache instance (one per simulated worker).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Build a cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two());
        assert!(cfg.sets.is_power_of_two());
        assert!(cfg.ways > 0);
        Cache {
            cfg,
            lines: vec![Line::default(); (cfg.sets * cfg.ways) as usize],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Touch one line containing `addr`; returns `true` on hit.
    pub fn touch_line(&mut self, addr: u64) -> bool {
        let line_addr = addr / self.cfg.line_bytes;
        let set = (line_addr & (self.cfg.sets as u64 - 1)) as usize;
        let tag = line_addr >> self.cfg.sets.trailing_zeros();
        self.clock += 1;
        self.stats.accesses += 1;

        let base = set * self.cfg.ways as usize;
        let ways = &mut self.lines[base..base + self.cfg.ways as usize];
        // Hit?
        for l in ways.iter_mut() {
            if l.valid && l.tag == tag {
                l.stamp = self.clock;
                return true;
            }
        }
        // Miss: fill LRU victim.
        self.stats.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.stamp } else { 0 })
            .expect("ways > 0");
        victim.valid = true;
        victim.tag = tag;
        victim.stamp = self.clock;
        false
    }

    /// Replay a contiguous access of `bytes` at `(obj, offset)`,
    /// touching every covered line. Returns the number of misses.
    ///
    /// Long sweeps take a closed-form path that is bit-exact with the
    /// line-by-line replay (same stats, same final line/stamp state —
    /// property-tested below) but costs O(sets × ways) instead of
    /// O(lines): the engine replays every task's footprint, so
    /// megabyte accesses dominated the simulator's dispatch phase.
    pub fn access(&mut self, obj: u64, offset: u64, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        // Object id forms the high address bits; objects never alias.
        let base = (obj << 40).wrapping_add(offset);
        let first = base / self.cfg.line_bytes;
        let last = (base + bytes - 1) / self.cfg.line_bytes;
        let lines = last - first + 1;
        if lines >= 4 * self.cfg.sets as u64 * self.cfg.ways as u64 {
            return self.sweep_fast(first, lines);
        }
        let mut misses = 0;
        for line in first..=last {
            if !self.touch_line(line * self.cfg.line_bytes) {
                misses += 1;
            }
        }
        misses
    }

    /// Closed-form contiguous sweep over line addresses
    /// `first .. first + lines`, exactly equivalent to calling
    /// [`Self::touch_line`] once per line in ascending order.
    ///
    /// Within one sweep every touched line is distinct, so a hit can
    /// only match a line resident *before* the sweep, and pre-sweep
    /// stamps are all smaller than any stamp the sweep assigns. Per
    /// set that means the first `ways` touches each consume exactly
    /// one pre-sweep way (a hit refreshes it, a miss evicts the LRU /
    /// first-invalid one) — simulated verbatim — after which the set
    /// holds only sweep lines and the remaining touches are guaranteed
    /// misses cycling through the ways in their fill order, which is
    /// computed arithmetically.
    fn sweep_fast(&mut self, first: u64, lines: u64) -> u64 {
        let sets = self.cfg.sets as u64;
        let ways = self.cfg.ways as usize;
        let set_shift = self.cfg.sets.trailing_zeros();
        let clock0 = self.clock;
        let mut misses = 0u64;
        // Per-set scratch: the slot filled/refreshed by phase-1 touch q.
        let mut slot_order = [0usize; 64];
        let mut order_buf: Vec<usize> = Vec::new();
        let order: &mut [usize] = if ways <= slot_order.len() {
            &mut slot_order[..ways]
        } else {
            order_buf.resize(ways, 0);
            &mut order_buf[..]
        };

        for s in 0..sets {
            // Sweep offset of this set's first touch.
            let j0 = (s + sets - (first % sets)) % sets;
            if j0 >= lines {
                continue;
            }
            let k = (lines - j0).div_ceil(sets); // touches to this set
            let base = (s as usize) * ways;
            let set_lines = &mut self.lines[base..base + ways];

            // Phase 1: the first min(k, ways) touches, replayed exactly.
            let p = (k as usize).min(ways);
            for (q, slot) in order.iter_mut().enumerate().take(p) {
                let line_addr = first + j0 + q as u64 * sets;
                let tag = line_addr >> set_shift;
                let clock = clock0 + j0 + q as u64 * sets + 1;
                let hit = set_lines.iter().position(|l| l.valid && l.tag == tag);
                if let Some(i) = hit {
                    set_lines[i].stamp = clock;
                }
                *slot = match hit {
                    Some(i) => i,
                    None => {
                        misses += 1;
                        let (i, _) = set_lines
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, l)| if l.valid { l.stamp } else { 0 })
                            .expect("ways > 0");
                        set_lines[i] = Line {
                            tag,
                            valid: true,
                            stamp: clock,
                        };
                        i
                    }
                };
            }

            // Phase 2: guaranteed misses cycling through the ways in
            // phase-1 fill order; only each slot's last touch survives.
            if k as usize > ways {
                let m = k - ways as u64;
                misses += m;
                for (x, &slot) in order.iter().enumerate() {
                    let x = x as u64;
                    if x >= m {
                        break;
                    }
                    let r = x + (m - 1 - x) / ways as u64 * ways as u64;
                    let q = ways as u64 + r;
                    let line_addr = first + j0 + q * sets;
                    set_lines[slot] = Line {
                        tag: line_addr >> set_shift,
                        valid: true,
                        stamp: clock0 + j0 + q * sets + 1,
                    };
                }
            }
        }
        self.clock = clock0 + lines;
        self.stats.accesses += lines;
        self.stats.misses += misses;
        misses
    }

    /// Invalidate everything (e.g. to model a context wipe).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset the counters, keeping cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_access_hits() {
        let mut c = Cache::new(CacheConfig::l1d());
        assert_eq!(c.access(1, 0, 64), 1); // cold miss
        assert_eq!(c.access(1, 0, 64), 0); // warm hit
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn spanning_access_touches_every_line() {
        let mut c = Cache::new(CacheConfig::l1d());
        // 300 bytes starting at offset 10 crosses ceil((10+300)/64)=5 lines.
        assert_eq!(c.access(2, 10, 300), 5);
        assert_eq!(c.stats().accesses, 5);
    }

    #[test]
    fn distinct_objects_do_not_alias() {
        let mut c = Cache::new(CacheConfig::l1d());
        c.access(1, 0, 64);
        assert_eq!(c.access(2, 0, 64), 1, "object 2 must miss cold");
        assert_eq!(c.access(1, 0, 64), 0, "object 1 must still be warm");
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let cfg = CacheConfig::l1d();
        let mut c = Cache::new(cfg);
        let big = cfg.capacity() * 4;
        // Two sequential sweeps over 4× capacity: second sweep must
        // still miss everywhere (LRU evicted the head long ago).
        let m1 = c.access(7, 0, big);
        let m2 = c.access(7, 0, big);
        assert_eq!(m1, big / cfg.line_bytes);
        assert_eq!(m2, big / cfg.line_bytes);
    }

    #[test]
    fn small_working_set_fits() {
        let cfg = CacheConfig::l1d();
        let mut c = Cache::new(cfg);
        let small = cfg.capacity() / 4;
        c.access(3, 0, small);
        assert_eq!(
            c.access(3, 0, small),
            0,
            "quarter-capacity set must be fully resident"
        );
    }

    #[test]
    fn flush_forces_cold_misses() {
        let mut c = Cache::new(CacheConfig::l1d());
        c.access(1, 0, 512);
        c.flush();
        assert_eq!(c.access(1, 0, 512), 8);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Tiny direct-mapped-ish cache: 1 set, 2 ways, 64B lines.
        let mut c = Cache::new(CacheConfig {
            line_bytes: 64,
            sets: 1,
            ways: 2,
        });
        c.access(1, 0, 1); // A miss
        c.access(2, 0, 1); // B miss
        c.access(1, 0, 1); // A hit (B is now LRU)
        assert_eq!(c.access(3, 0, 1), 1); // C evicts B
        assert_eq!(c.access(1, 0, 1), 0); // A survives
        assert_eq!(c.access(2, 0, 1), 1); // B gone
    }

    #[test]
    fn zero_byte_access_is_noop() {
        let mut c = Cache::new(CacheConfig::l1d());
        assert_eq!(c.access(1, 0, 0), 0);
        assert_eq!(c.stats().accesses, 0);
    }

    /// Line-by-line reference replay of `access`, bypassing the
    /// closed-form sweep path.
    fn access_ref(c: &mut Cache, obj: u64, offset: u64, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let base = (obj << 40).wrapping_add(offset);
        let first = base / c.cfg.line_bytes;
        let last = (base + bytes - 1) / c.cfg.line_bytes;
        let mut misses = 0;
        for line in first..=last {
            if !c.touch_line(line * c.cfg.line_bytes) {
                misses += 1;
            }
        }
        misses
    }

    /// The closed-form sweep must be bit-exact with the line-by-line
    /// replay: same miss counts, same counters, same final line/stamp
    /// state — over random mixes of short and long accesses on several
    /// geometries.
    #[test]
    fn fast_sweep_is_bit_exact_with_reference() {
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for cfg in [
            CacheConfig::l1d(),
            CacheConfig {
                line_bytes: 64,
                sets: 8,
                ways: 2,
            },
            CacheConfig {
                line_bytes: 32,
                sets: 16,
                ways: 4,
            },
        ] {
            let mut fast = Cache::new(cfg);
            let mut refc = Cache::new(cfg);
            for i in 0..200 {
                let obj = next() % 3;
                let offset = next() % (cfg.capacity() * 2);
                // Mix tiny touches with sweeps far beyond capacity so
                // both the slow and the closed-form path are exercised,
                // interleaved, against warm and cold state.
                let bytes = match i % 4 {
                    0 => next() % 256,
                    1 => cfg.capacity() / 2 + next() % cfg.capacity(),
                    _ => 4 * cfg.capacity() + next() % (8 * cfg.capacity()),
                };
                let mf = fast.access(obj, offset, bytes);
                let mr = access_ref(&mut refc, obj, offset, bytes);
                assert_eq!(mf, mr, "miss count diverged (cfg {cfg:?}, step {i})");
                assert_eq!(fast.stats, refc.stats, "stats diverged at step {i}");
                assert_eq!(fast.clock, refc.clock, "clock diverged at step {i}");
                assert_eq!(fast.lines, refc.lines, "line state diverged at step {i}");
            }
        }
    }
}
