//! Randomized property tests for the cache model, driven by seeded
//! SplitMix64 generation (each seed is one deterministic case).

use distws_cachesim::{Cache, CacheConfig};
use distws_core::rng::SplitMix64;

fn random_ops(
    rng: &mut SplitMix64,
    max_len: usize,
    objs: u64,
    offs: u64,
    bytes: u64,
) -> Vec<(u64, u64, u64)> {
    let n = 1 + rng.below_usize(max_len);
    (0..n)
        .map(|_| (rng.below(objs), rng.below(offs), 1 + rng.below(bytes - 1)))
        .collect()
}

#[test]
fn misses_never_exceed_accesses() {
    for seed in 0..100u64 {
        let mut rng = SplitMix64::new(0xCAC4E + seed);
        let ops = random_ops(&mut rng, 200, 8, 100_000, 512);
        let mut c = Cache::new(CacheConfig::l1d());
        for (obj, off, bytes) in ops {
            c.access(obj, off, bytes);
        }
        let s = c.stats();
        assert!(s.misses <= s.accesses, "seed {seed}");
        assert!(s.miss_rate_pct() <= 100.0, "seed {seed}");
    }
}

#[test]
fn replay_is_deterministic() {
    for seed in 0..100u64 {
        let mut rng = SplitMix64::new(0xDE7 + seed);
        let ops = random_ops(&mut rng, 100, 4, 10_000, 256);
        let run = || {
            let mut c = Cache::new(CacheConfig::l1d());
            for (obj, off, bytes) in &ops {
                c.access(*obj, *off, *bytes);
            }
            c.stats()
        };
        assert_eq!(run(), run(), "seed {seed}");
    }
}

#[test]
fn immediate_reaccess_hits_when_it_fits() {
    for seed in 0..200u64 {
        let mut rng = SplitMix64::new(0x41A + seed);
        let obj = rng.below(8);
        let off = rng.below(100_000);
        let bytes = 1 + rng.below(999);
        let mut c = Cache::new(CacheConfig::l1d());
        c.access(obj, off, bytes);
        // The lines were just brought in; re-touching a range well
        // under capacity must be all hits.
        if bytes < CacheConfig::l1d().capacity() / 2 {
            assert_eq!(c.access(obj, off, bytes), 0, "seed {seed}");
        }
    }
}
