//! Property tests for the cache model.

use distws_cachesim::{Cache, CacheConfig};
use proptest::prelude::*;

proptest! {
    #[test]
    fn misses_never_exceed_accesses(ops in proptest::collection::vec((0u64..8, 0u64..100_000, 1u64..512), 1..200)) {
        let mut c = Cache::new(CacheConfig::l1d());
        for (obj, off, bytes) in ops {
            c.access(obj, off, bytes);
        }
        let s = c.stats();
        prop_assert!(s.misses <= s.accesses);
        prop_assert!(s.miss_rate_pct() <= 100.0);
    }

    #[test]
    fn replay_is_deterministic(ops in proptest::collection::vec((0u64..4, 0u64..10_000, 1u64..256), 1..100)) {
        let run = || {
            let mut c = Cache::new(CacheConfig::l1d());
            for (obj, off, bytes) in &ops {
                c.access(*obj, *off, *bytes);
            }
            c.stats()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn immediate_reaccess_hits_when_it_fits(obj in 0u64..8, off in 0u64..100_000, bytes in 1u64..1_000) {
        let mut c = Cache::new(CacheConfig::l1d());
        c.access(obj, off, bytes);
        // The lines were just brought in; re-touching a range well
        // under capacity must be all hits.
        if bytes < CacheConfig::l1d().capacity() / 2 {
            prop_assert_eq!(c.access(obj, off, bytes), 0);
        }
    }
}
