//! Trace sinks: where events go.
//!
//! Instrumentation sites are written as
//!
//! ```ignore
//! if sink.enabled() {
//!     sink.record(TraceEvent { .. });
//! }
//! ```
//!
//! so a [`NullSink`] costs one predictable branch per site and no
//! event construction — the pay-for-what-you-use contract the
//! acceptance criteria check (< 1 % makespan delta with tracing off).

use crate::event::TraceEvent;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Receiver of trace events.
pub trait TraceSink {
    /// Whether callers should construct and submit events at all.
    /// Sites must check this before building a [`TraceEvent`].
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event. Events arrive in nondecreasing `t_ns` order
    /// per worker, but only the simulator guarantees a global order.
    fn record(&mut self, ev: TraceEvent);

    /// Flush any buffered output (streaming sinks).
    fn flush(&mut self) {}
}

/// Discards everything; `enabled()` is `false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _ev: TraceEvent) {}
}

/// Bounded in-memory ring buffer: keeps the **last** `capacity` events.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// A ring keeping at most `capacity` events (the most recent win).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consume the sink, yielding the retained events oldest-first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.buf.into()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
}

/// Streams one deterministic JSON object per event to a writer.
pub struct JsonlSink<W: Write> {
    out: W,
    written: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Stream events to `out`, one JSONL line each.
    pub fn new(out: W) -> Self {
        JsonlSink { out, written: 0 }
    }

    /// Lines written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flush and return the writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, ev: TraceEvent) {
        // Panicking on a broken pipe mid-simulation would poison a
        // deterministic run; drop the line instead and keep counting.
        let mut line = ev.to_jsonl();
        line.push('\n');
        if self.out.write_all(line.as_bytes()).is_ok() {
            self.written += 1;
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// [`JsonlSink`] behind a [`std::io::BufWriter`]: the write-heavy
/// choice for file-backed traces, turning one syscall per event into
/// one per ~64 KiB. Byte-identical output to the unbuffered sink
/// (tested below) — only the write batching differs. Call
/// [`TraceSink::flush`] (or drop via [`Self::into_inner`]) before
/// reading the file; crash-durability call sites (the cluster place
/// log) should keep using the unbuffered sink.
pub struct BufferedJsonlSink<W: Write> {
    inner: JsonlSink<std::io::BufWriter<W>>,
}

impl<W: Write> BufferedJsonlSink<W> {
    /// Buffer writes to `out` with the default `BufWriter` capacity.
    pub fn new(out: W) -> Self {
        BufferedJsonlSink {
            inner: JsonlSink::new(std::io::BufWriter::new(out)),
        }
    }

    /// Buffer writes to `out` with an explicit buffer capacity.
    pub fn with_capacity(capacity: usize, out: W) -> Self {
        BufferedJsonlSink {
            inner: JsonlSink::new(std::io::BufWriter::with_capacity(capacity, out)),
        }
    }

    /// Lines written so far (buffered lines count as written).
    pub fn written(&self) -> u64 {
        self.inner.written()
    }

    /// Flush everything and return the underlying writer.
    pub fn into_inner(self) -> std::io::Result<W> {
        self.inner
            .into_inner()
            .into_inner()
            .map_err(std::io::IntoInnerError::into_error)
    }
}

impl<W: Write> TraceSink for BufferedJsonlSink<W> {
    fn record(&mut self, ev: TraceEvent) {
        self.inner.record(ev);
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

/// Clonable, thread-safe handle around any sink — the multithreaded
/// runtime's workers each hold one and serialize through the mutex.
#[derive(Clone)]
pub struct SharedSink {
    inner: Arc<Mutex<dyn TraceSink + Send>>,
    enabled: bool,
}

impl SharedSink {
    /// Wrap `sink` for concurrent use. `enabled` is captured once so
    /// the hot-path check stays lock-free.
    pub fn new<S: TraceSink + Send + 'static>(sink: S) -> Self {
        let enabled = sink.enabled();
        SharedSink {
            inner: Arc::new(Mutex::new(sink)),
            enabled,
        }
    }

    /// A disabled shared sink.
    pub fn null() -> Self {
        SharedSink::new(NullSink)
    }

    /// Run `f` against the wrapped sink.
    pub fn with<R>(&self, f: impl FnOnce(&mut dyn TraceSink) -> R) -> R {
        f(&mut *self.inner.lock().unwrap())
    }
}

impl TraceSink for SharedSink {
    fn enabled(&self) -> bool {
        self.enabled
    }

    fn record(&mut self, ev: TraceEvent) {
        self.inner.lock().unwrap().record(ev);
    }

    fn flush(&mut self) {
        self.inner.lock().unwrap().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEventKind;
    use distws_core::{GlobalWorkerId, PlaceId};

    fn ev(t: u64) -> TraceEvent {
        TraceEvent {
            t_ns: t,
            worker: GlobalWorkerId(0),
            place: PlaceId(0),
            kind: TraceEventKind::Dormant,
        }
    }

    #[test]
    fn null_sink_reports_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut r = RingSink::new(3);
        for t in 0..5 {
            r.record(ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let ts: Vec<u64> = r.into_events().iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_streams_lines() {
        let mut s = JsonlSink::new(Vec::new());
        s.record(ev(1));
        s.record(ev(2));
        assert_eq!(s.written(), 2);
        let out = String::from_utf8(s.into_inner()).unwrap();
        assert_eq!(out.lines().count(), 2);
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn buffered_jsonl_is_byte_identical_to_unbuffered() {
        // Same event stream through both sinks: identical bytes out.
        let mut plain = JsonlSink::new(Vec::new());
        let mut buffered = BufferedJsonlSink::with_capacity(64, Vec::new());
        let mut rng = distws_core::rng::SplitMix64::new(3);
        for _ in 0..1_000 {
            let e = ev(rng.below(1 << 40));
            plain.record(e);
            buffered.record(e);
        }
        assert_eq!(plain.written(), buffered.written());
        assert_eq!(plain.into_inner(), buffered.into_inner().unwrap());
    }

    #[test]
    fn buffered_jsonl_flush_makes_lines_visible() {
        // A tiny buffer forces mid-stream flushes; an explicit flush
        // then drains the remainder without consuming the sink.
        let mut s = BufferedJsonlSink::with_capacity(16, Vec::new());
        s.record(ev(1));
        s.record(ev(2));
        s.flush();
        assert_eq!(s.written(), 2);
        let out = String::from_utf8(s.into_inner().unwrap()).unwrap();
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    fn shared_sink_serializes_access() {
        let shared = SharedSink::new(JsonlSink::new(Vec::new()));
        assert!(shared.enabled());
        let mut a = shared.clone();
        let mut b = shared.clone();
        a.record(ev(1));
        b.record(ev(2));
        shared.with(|s| s.flush());
    }

    #[test]
    fn shared_null_is_disabled() {
        assert!(!SharedSink::null().enabled());
    }
}
