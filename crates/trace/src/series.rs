//! Engine-driven time-series sampler.
//!
//! The execution engine knows the per-place queue depths and worker
//! states; this module only decides *when* a sample is due (a fixed
//! virtual-time grid) and stores what the engine hands it. Sampling on
//! a grid instead of per-event keeps memory proportional to
//! makespan/interval regardless of event rate, and keeps the sampled
//! curves comparable across schedulers.

use distws_json::Value;

/// One place's state at a sample instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlaceSample {
    /// Tasks waiting in the place's deques (private + shared).
    pub queue_depth: u64,
    /// Workers currently executing a task body.
    pub busy_workers: u32,
    /// Workers in the dormant set.
    pub dormant_workers: u32,
}

/// All places at one sample instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Virtual time of the sample.
    pub t_ns: u64,
    /// One entry per place, index = place id.
    pub places: Vec<PlaceSample>,
}

/// A per-place utilization / queue-depth curve on a fixed time grid.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    places: u32,
    workers_per_place: u32,
    interval_ns: u64,
    next_due_ns: u64,
    samples: Vec<Sample>,
}

impl TimeSeries {
    /// A sampler for `places` places of `workers_per_place` workers,
    /// sampling every `interval_ns` of virtual time.
    pub fn new(places: u32, workers_per_place: u32, interval_ns: u64) -> Self {
        assert!(interval_ns > 0, "sample interval must be positive");
        TimeSeries {
            places,
            workers_per_place,
            interval_ns,
            next_due_ns: 0,
            samples: Vec::new(),
        }
    }

    /// The sampling interval.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Whether the grid owes a sample at or before virtual time `now`.
    /// The engine checks this at each event and calls [`Self::push`]
    /// while it returns `true`.
    pub fn due(&self, now_ns: u64) -> bool {
        now_ns >= self.next_due_ns
    }

    /// Record the state for the next grid instant (≤ `now`). The
    /// sample is stamped with the *grid* time, not the event time, so
    /// curves from different runs line up exactly.
    pub fn push(&mut self, places: Vec<PlaceSample>) {
        assert_eq!(
            places.len(),
            self.places as usize,
            "one PlaceSample per place"
        );
        self.samples.push(Sample {
            t_ns: self.next_due_ns,
            places,
        });
        self.next_due_ns += self.interval_ns;
    }

    /// The collected samples, oldest first.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of places being sampled.
    pub fn places(&self) -> u32 {
        self.places
    }

    /// Workers per place (the utilization denominator).
    pub fn workers_per_place(&self) -> u32 {
        self.workers_per_place
    }

    /// Busy-worker fraction of place `p` at sample `i`, in [0, 1].
    pub fn utilization(&self, i: usize, p: usize) -> f64 {
        let s = &self.samples[i].places[p];
        f64::from(s.busy_workers) / f64::from(self.workers_per_place.max(1))
    }

    /// Deterministic JSON: `{"interval_ns":..,"samples":[{"t":..,
    /// "queue_depth":[..],"busy":[..],"dormant":[..]},..]}` —
    /// column-per-metric so plotting tools ingest it directly.
    pub fn to_json(&self) -> Value {
        let mut o = Value::object();
        o.set("places", self.places);
        o.set("workers_per_place", self.workers_per_place);
        o.set("interval_ns", self.interval_ns);
        let mut rows = Vec::with_capacity(self.samples.len());
        for s in &self.samples {
            let mut row = Value::object();
            row.set("t", s.t_ns);
            row.set(
                "queue_depth",
                s.places.iter().map(|p| p.queue_depth).collect::<Vec<_>>(),
            );
            row.set(
                "busy",
                s.places.iter().map(|p| p.busy_workers).collect::<Vec<_>>(),
            );
            row.set(
                "dormant",
                s.places
                    .iter()
                    .map(|p| p.dormant_workers)
                    .collect::<Vec<_>>(),
            );
            rows.push(row);
        }
        o.set("samples", Value::Array(rows));
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_regular_regardless_of_event_times() {
        let mut ts = TimeSeries::new(2, 4, 100);
        // Events at irregular times; the engine samples while due.
        for now in [0u64, 7, 350, 360, 1000] {
            while ts.due(now) {
                ts.push(vec![PlaceSample::default(); 2]);
            }
        }
        let times: Vec<u64> = ts.samples().iter().map(|s| s.t_ns).collect();
        assert_eq!(
            times,
            vec![0, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]
        );
    }

    #[test]
    fn utilization_is_fraction_of_workers() {
        let mut ts = TimeSeries::new(1, 8, 10);
        ts.push(vec![PlaceSample {
            queue_depth: 3,
            busy_workers: 6,
            dormant_workers: 2,
        }]);
        assert!((ts.utilization(0, 0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn json_is_deterministic() {
        let build = || {
            let mut ts = TimeSeries::new(2, 2, 50);
            ts.push(vec![
                PlaceSample {
                    queue_depth: 1,
                    busy_workers: 2,
                    dormant_workers: 0,
                },
                PlaceSample {
                    queue_depth: 0,
                    busy_workers: 1,
                    dormant_workers: 1,
                },
            ]);
            ts.to_json().render()
        };
        assert_eq!(build(), build());
        assert!(build().contains("\"queue_depth\":[1,0]"));
    }
}
