//! # distws-trace
//!
//! Structured event tracing and time-series telemetry for the DistWS
//! simulator and runtime.
//!
//! The execution engines emit typed [`TraceEvent`]s — spawns, task
//! start/end, steal attempts and successes per tier of Algorithm 1,
//! migrations, remote data references, dormancy transitions and network
//! messages — into a [`TraceSink`]. Three sinks ship:
//!
//! * [`NullSink`] — `enabled() == false`; instrumentation sites skip
//!   event construction entirely, so a run without tracing pays only a
//!   branch per site.
//! * [`RingSink`] — bounded in-memory ring buffer, for exporters and
//!   tests.
//! * [`JsonlSink`] — streams one deterministic JSON object per event to
//!   any `Write`; the same seed yields a byte-identical stream.
//!
//! On top of the raw stream sit the derived views:
//!
//! * [`Histogram`] — log-linear (HDR-style) histogram with exact max
//!   and deterministic p50/p95/p99, folded into
//!   `distws_core::RunPercentiles` via [`Histogram::summary`].
//! * [`TimeSeries`] — engine-driven sampler of per-place queue depth
//!   and busy workers at a fixed virtual-time interval.
//! * [`chrome_trace`] — Chrome `trace_event` JSON (one lane per
//!   worker), loadable in Perfetto / `chrome://tracing`;
//!   [`chrome_trace_with_counters`] overlays engine metrics counter
//!   tracks (`"ph":"C"`) sampled on the same virtual-time grid, and
//!   [`metrics_jsonl`] emits that series as JSONL (see `bridge`).
//! * [`render_timeline`] — terminal renderer of the per-place
//!   utilization curves.

#![forbid(unsafe_code)]

pub mod bridge;
pub mod chrome;
pub mod event;
pub mod hist;
pub mod series;
pub mod sink;
pub mod timeline;

pub use bridge::{counter_track_events, metrics_jsonl};
pub use chrome::{chrome_trace, chrome_trace_with_counters};
pub use event::{MessageKind, StealTier, TraceEvent, TraceEventKind};
pub use hist::Histogram;
pub use series::{PlaceSample, Sample, TimeSeries};
pub use sink::{BufferedJsonlSink, JsonlSink, NullSink, RingSink, SharedSink, TraceSink};
pub use timeline::render_timeline;
