//! Log-linear histogram with deterministic percentiles.
//!
//! HDR-style bucketing: values below 16 get exact buckets; above that,
//! each power-of-two range is split into 16 linear sub-buckets, so the
//! relative quantization error is bounded by 1/16 ≈ 6 % at any
//! magnitude while memory stays O(log(max value)). Percentile queries
//! return the bucket's upper bound (conservative), clamped to the
//! exact observed maximum — all integer arithmetic, so two identical
//! runs summarize identically.

use distws_core::PercentileSummary;

/// Number of linear sub-buckets per power-of-two group (and the size
/// of the exact low range).
const SUB: u64 = 16;
const SUB_BITS: u32 = 4;

/// A histogram of `u64` samples (nanoseconds, bytes, counts...).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

fn bucket_of(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let group = (msb - SUB_BITS + 1) as usize;
        let sub = ((v >> (msb - SUB_BITS)) - SUB) as usize;
        (group << SUB_BITS) + sub
    }
}

/// Largest value mapping to bucket `i` (the reported representative).
fn bucket_upper(i: usize) -> u64 {
    if i < SUB as usize {
        i as u64
    } else {
        let group = (i >> SUB_BITS) as u32; // >= 1
        let sub = (i & (SUB as usize - 1)) as u64;
        // `+ ((1 << g) - 1)`, not `+ (1 << g) - 1`: for the top bucket
        // (values near `u64::MAX`) the intermediate sum is exactly
        // 2^64 and would overflow before the subtraction.
        ((SUB + sub) << (group - 1)) + ((1u64 << (group - 1)) - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let b = bucket_of(v);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Integer mean of the samples (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.sum / u128::from(self.total)) as u64
        }
    }

    /// Value at percentile `p` ∈ [0, 100]: the upper bound of the
    /// bucket containing the `ceil(p/100 · count)`-th smallest sample,
    /// clamped to the exact maximum. 0 when empty.
    pub fn percentile(&self, p: u32) -> u64 {
        assert!(p <= 100, "percentile out of range: {p}");
        if self.total == 0 {
            return 0;
        }
        // rank = ceil(p * total / 100), at least 1.
        let rank = ((u128::from(p) * u128::from(self.total)).div_ceil(100)).max(1);
        let mut seen: u128 = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += u128::from(c);
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Fold into the fixed-quantile summary carried by `RunReport`.
    pub fn summary(&self) -> PercentileSummary {
        PercentileSummary {
            count: self.total,
            p50: self.percentile(50),
            p95: self.percentile(95),
            p99: self.percentile(99),
            max: self.max,
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(100), 15);
        assert_eq!(h.percentile(50), 7);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev = bucket_of(0);
        assert_eq!(prev, 0);
        for v in 1..100_000u64 {
            let b = bucket_of(v);
            assert!(b == prev || b == prev + 1, "gap at {v}: {prev} -> {b}");
            assert!(bucket_upper(b) >= v, "upper({b}) < {v}");
            prev = b;
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [17, 100, 1_000, 123_456, 10_000_000, u64::from(u32::MAX)] {
            let upper = bucket_upper(bucket_of(v));
            assert!(upper >= v);
            assert!(
                (upper - v) as f64 <= v as f64 / 16.0 + 1.0,
                "value {v} reported as {upper}"
            );
        }
    }

    #[test]
    fn percentiles_track_known_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1k .. 1000k
        }
        let p50 = h.percentile(50);
        let p99 = h.percentile(99);
        assert!((500_000..=540_000).contains(&p50), "p50 {p50}");
        assert!((990_000..=1_060_000).contains(&p99), "p99 {p99}");
        assert_eq!(h.percentile(100), 1_000_000);
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        assert_eq!(Histogram::new().summary(), PercentileSummary::default());
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [3u64, 900, 17, 65_536, 12] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64 << 40, 5, 1_000_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.summary(), both.summary());
        assert_eq!(a.mean(), both.mean());
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let h = Histogram::new();
        for p in [0, 1, 50, 95, 99, 100] {
            assert_eq!(h.percentile(p), 0, "p{p} of empty");
        }
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = Histogram::new();
        h.record(123_456);
        for p in [1, 50, 95, 99, 100] {
            assert_eq!(h.percentile(p), 123_456, "p{p} of single sample");
        }
        assert_eq!(h.mean(), 123_456);
        assert_eq!(h.summary().p50, h.summary().max);
    }

    #[test]
    fn max_bucket_holds_u64_max() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(0);
        // The overflow-magnitude samples stay clamped to the exact
        // observed maximum instead of a bucket bound past u64::MAX.
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(100), u64::MAX);
        assert_eq!(h.percentile(99), u64::MAX);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn merge_preserves_percentile_bounds() {
        // Mixture-quantile property: each quantile of the merged
        // histogram lies within [min, max] of the two components'
        // same quantile (holds for any mixture of distributions, and
        // bucketing preserves it because both sides share the bucket
        // layout).
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..1000u64 {
            a.record(1_000 + i * 7); // low band
            b.record(1_000_000 + i * 131); // high band
        }
        let (sa, sb) = (a.summary(), b.summary());
        a.merge(&b);
        let m = a.summary();
        for (label, lo, hi, got) in [
            ("p50", sa.p50.min(sb.p50), sa.p50.max(sb.p50), m.p50),
            ("p95", sa.p95.min(sb.p95), sa.p95.max(sb.p95), m.p95),
            ("p99", sa.p99.min(sb.p99), sa.p99.max(sb.p99), m.p99),
        ] {
            assert!(
                (lo..=hi).contains(&got),
                "{label} {got} outside [{lo}, {hi}]"
            );
        }
        assert_eq!(m.count, sa.count + sb.count);
        assert_eq!(m.max, sa.max.max(sb.max));
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut h = Histogram::new();
            for v in (0..5000u64).map(|i| i.wrapping_mul(2654435761) % 1_000_000) {
                h.record(v);
            }
            h.summary()
        };
        assert_eq!(run(), run());
    }
}
