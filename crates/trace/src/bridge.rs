//! Metrics → trace bridge.
//!
//! Turns the engine's [`CounterSample`] series (one all-counter
//! snapshot per telemetry grid instant) into the two formats the rest
//! of the tooling consumes:
//!
//! * Chrome `trace_event` **counter tracks** (`"ph":"C"`), so a trace
//!   exported with [`crate::chrome::chrome_trace_with_counters`] shows
//!   the counter curves stacked above the per-worker lanes;
//! * a JSONL dump (one object per sample) for ad-hoc plotting.
//!
//! Both outputs are pure functions of the samples — deterministic for
//! deterministic input.

use crate::chrome::us;
use distws_json::Value;
use distws_metrics::{Counter, CounterSample};

/// The counter groups rendered as separate Chrome tracks (one track of
/// 14 series is unreadable; three thematic tracks are not).
const TRACKS: &[(&str, &[Counter])] = &[
    (
        "ctr:events",
        &[
            Counter::EventsProcessed,
            Counter::EventQueuePushes,
            Counter::EventQueuePops,
        ],
    ),
    (
        "ctr:steals",
        &[
            Counter::StealAttemptsLocalPrivate,
            Counter::StealAttemptsLocalShared,
            Counter::StealAttemptsRemote,
            Counter::StealSuccessesLocalPrivate,
            Counter::StealSuccessesLocalShared,
            Counter::StealSuccessesRemote,
        ],
    ),
    (
        "ctr:tasks+msgs",
        &[
            Counter::TasksAllocated,
            Counter::DequeGrows,
            Counter::MsgsSent,
            Counter::MsgsDropped,
            Counter::MsgsRetried,
        ],
    ),
];

/// Chrome counter events (`"ph":"C"`) for a sampled counter series,
/// attributed to pid 0 (the counters are engine-global, not
/// per-place).
pub fn counter_track_events(samples: &[CounterSample]) -> Vec<Value> {
    let mut out = Vec::with_capacity(samples.len() * TRACKS.len());
    for s in samples {
        for (track, counters) in TRACKS {
            let mut o = Value::object();
            o.set("name", *track);
            o.set("ph", "C");
            o.set("ts", us(s.t_ns));
            o.set("pid", 0u32);
            let mut args = Value::object();
            for c in *counters {
                args.set(c.name(), s.counters[c.index()]);
            }
            o.set("args", args);
            out.push(o);
        }
    }
    out
}

/// One JSON object per sample, newline-terminated:
/// `{"t_ns":..,"counters":{..}}` with catalog-ordered keys.
pub fn metrics_jsonl(samples: &[CounterSample]) -> String {
    let mut out = String::new();
    for s in samples {
        let mut o = Value::object();
        o.set("t_ns", s.t_ns);
        let mut counters = Value::object();
        for c in Counter::ALL {
            counters.set(c.name(), s.counters[c.index()]);
        }
        o.set("counters", counters);
        out.push_str(&o.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: u64, events: u64) -> CounterSample {
        let mut counters = vec![0; Counter::COUNT];
        counters[Counter::EventsProcessed.index()] = events;
        CounterSample { t_ns: t, counters }
    }

    #[test]
    fn tracks_cover_every_counter_once() {
        let mut seen: Vec<&str> = TRACKS
            .iter()
            .flat_map(|(_, cs)| cs.iter().map(|c| c.name()))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), Counter::COUNT);
    }

    #[test]
    fn counter_events_are_chrome_counters() {
        let evs = counter_track_events(&[sample(1_000, 5), sample(2_000, 9)]);
        assert_eq!(evs.len(), 2 * TRACKS.len());
        let first = evs[0].render();
        assert!(first.contains(r#""ph":"C""#), "{first}");
        assert!(first.contains(r#""events_processed":5"#), "{first}");
        assert!(first.contains(r#""ts":1"#), "{first}");
    }

    #[test]
    fn jsonl_is_one_line_per_sample_and_deterministic() {
        let samples = [sample(0, 1), sample(500, 2)];
        let a = metrics_jsonl(&samples);
        assert_eq!(a, metrics_jsonl(&samples));
        assert_eq!(a.lines().count(), 2);
        assert!(a.starts_with(r#"{"t_ns":0,"counters":{"events_processed":1"#));
    }
}
