//! The typed event vocabulary.
//!
//! Every event carries the virtual time it happened at, the worker
//! that caused it and the place that worker belongs to; the payload
//! describes what happened. The wire encoding (JSONL) is produced by
//! [`TraceEvent::to_json`] and is deterministic: object keys are
//! emitted in declaration order and floats never appear.

use distws_core::{GlobalWorkerId, PlaceId, TaskId};
use distws_json::Value;

/// Which tier of Algorithm 1 a steal touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StealTier {
    /// A co-located worker's private (Chase–Lev) deque.
    LocalPrivate,
    /// The local place's shared FIFO deque.
    LocalShared,
    /// A remote place's shared FIFO deque (distributed steal).
    Remote,
}

impl StealTier {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            StealTier::LocalPrivate => "local_private",
            StealTier::LocalShared => "local_shared",
            StealTier::Remote => "remote",
        }
    }
}

/// Kind of a simulated network message (mirrors `distws_netsim::MsgKind`
/// without a crate dependency, so the trace vocabulary stays
/// engine-agnostic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// A thief probing a remote shared deque.
    StealRequest,
    /// The victim's reply (may carry zero tasks).
    StealReply,
    /// Migration payload: closure + encapsulated footprint.
    TaskMigrate,
    /// Request for data homed at a remote place.
    DataRequest,
    /// Reply carrying remote data.
    DataReply,
    /// Termination detection / place-status control traffic.
    Control,
}

impl MessageKind {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            MessageKind::StealRequest => "steal_request",
            MessageKind::StealReply => "steal_reply",
            MessageKind::TaskMigrate => "task_migrate",
            MessageKind::DataRequest => "data_request",
            MessageKind::DataReply => "data_reply",
            MessageKind::Control => "control",
        }
    }
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A task was created (inside `finish`/`async` or as a root).
    Spawn {
        /// The new task.
        task: TaskId,
    },
    /// A worker began executing a task body.
    TaskStart {
        /// The task.
        task: TaskId,
    },
    /// A worker finished executing a task body.
    TaskEnd {
        /// The task.
        task: TaskId,
    },
    /// A worker probed a deque tier for work (successful or not).
    StealAttempt {
        /// The tier probed.
        tier: StealTier,
    },
    /// A worker probed the network / its place inbox for arriving tasks
    /// (Algorithm 1 line 11, and the line 19 re-probe after a failed
    /// distributed steal). Emitted whether or not anything arrived, so
    /// the conformance checker can justify every remote steal attempt.
    NetProbe,
    /// A steal returned at least one task.
    StealSuccess {
        /// The tier stolen from.
        tier: StealTier,
        /// The (first) stolen task.
        task: TaskId,
        /// The victim place.
        victim: PlaceId,
        /// Virtual nanoseconds between first probing for work and this
        /// success (steal latency).
        latency_ns: u64,
    },
    /// A locality-flexible task moved to another place.
    Migration {
        /// The migrated task.
        task: TaskId,
        /// Origin place.
        from: PlaceId,
        /// Destination place.
        to: PlaceId,
    },
    /// A task touched data homed at a remote place.
    RemoteRef {
        /// The task doing the access.
        task: TaskId,
        /// Where the data lives.
        home: PlaceId,
        /// Bytes moved.
        bytes: u64,
    },
    /// A worker ran out of work and went dormant.
    Dormant,
    /// A dormant worker was woken by new local work.
    Wakeup,
    /// A network message left this worker's place.
    Message {
        /// Kind of message.
        kind: MessageKind,
        /// Destination place.
        to: PlaceId,
        /// Payload size.
        bytes: u64,
        /// Whether fault injection lost the message in flight. Emitted
        /// on the wire only when `true`, so fault-free traces are
        /// byte-identical to traces produced before fault injection
        /// existed.
        dropped: bool,
    },
    /// A remote steal probe went unanswered (request or reply lost, or
    /// the victim place is dead) and the thief's timeout expired.
    StealTimeout {
        /// The probed victim place.
        victim: PlaceId,
        /// 1-based attempt number against this victim (attempt 1 is
        /// the original probe, ≥2 are backoff retries).
        attempt: u32,
    },
    /// The event's place suffered a fail-stop: its queued tasks are
    /// recovered elsewhere and its workers halt at the next task
    /// boundary.
    PlaceFail,
    /// A previously failed place rejoined the cluster (empty-handed).
    PlaceRestart,
    /// A task stranded by a place failure was re-enqueued elsewhere.
    TaskRecover {
        /// The recovered task.
        task: TaskId,
        /// The failed place the task was queued at.
        from: PlaceId,
        /// Where it was re-enqueued.
        to: PlaceId,
    },
}

impl TraceEventKind {
    /// Stable wire name of the variant.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::Spawn { .. } => "spawn",
            TraceEventKind::TaskStart { .. } => "task_start",
            TraceEventKind::TaskEnd { .. } => "task_end",
            TraceEventKind::StealAttempt { .. } => "steal_attempt",
            TraceEventKind::NetProbe => "net_probe",
            TraceEventKind::StealSuccess { .. } => "steal_success",
            TraceEventKind::Migration { .. } => "migration",
            TraceEventKind::RemoteRef { .. } => "remote_ref",
            TraceEventKind::Dormant => "dormant",
            TraceEventKind::Wakeup => "wakeup",
            TraceEventKind::Message { .. } => "message",
            TraceEventKind::StealTimeout { .. } => "steal_timeout",
            TraceEventKind::PlaceFail => "place_fail",
            TraceEventKind::PlaceRestart => "place_restart",
            TraceEventKind::TaskRecover { .. } => "task_recover",
        }
    }
}

/// One timestamped, attributed event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time (simulator) or wall-clock offset (runtime), ns.
    pub t_ns: u64,
    /// The worker the event is attributed to.
    pub worker: GlobalWorkerId,
    /// The place that worker belongs to.
    pub place: PlaceId,
    /// Payload.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// Deterministic JSON encoding: `{"t":..,"w":..,"p":..,"ev":"..",...}`.
    /// Payload fields are flattened into the object, keys in fixed order.
    pub fn to_json(&self) -> Value {
        let mut o = Value::object();
        o.set("t", self.t_ns);
        o.set("w", self.worker.0);
        o.set("p", self.place.0);
        o.set("ev", self.kind.name());
        match self.kind {
            TraceEventKind::Spawn { task }
            | TraceEventKind::TaskStart { task }
            | TraceEventKind::TaskEnd { task } => {
                o.set("task", task.0);
            }
            TraceEventKind::StealAttempt { tier } => {
                o.set("tier", tier.name());
            }
            TraceEventKind::StealSuccess {
                tier,
                task,
                victim,
                latency_ns,
            } => {
                o.set("tier", tier.name());
                o.set("task", task.0);
                o.set("victim", victim.0);
                o.set("latency_ns", latency_ns);
            }
            TraceEventKind::Migration { task, from, to } => {
                o.set("task", task.0);
                o.set("from", from.0);
                o.set("to", to.0);
            }
            TraceEventKind::RemoteRef { task, home, bytes } => {
                o.set("task", task.0);
                o.set("home", home.0);
                o.set("bytes", bytes);
            }
            TraceEventKind::NetProbe
            | TraceEventKind::Dormant
            | TraceEventKind::Wakeup
            | TraceEventKind::PlaceFail
            | TraceEventKind::PlaceRestart => {}
            TraceEventKind::Message {
                kind,
                to,
                bytes,
                dropped,
            } => {
                o.set("kind", kind.name());
                o.set("to", to.0);
                o.set("bytes", bytes);
                if dropped {
                    o.set("dropped", true);
                }
            }
            TraceEventKind::StealTimeout { victim, attempt } => {
                o.set("victim", victim.0);
                o.set("attempt", attempt as u64);
            }
            TraceEventKind::TaskRecover { task, from, to } => {
                o.set("task", task.0);
                o.set("from", from.0);
                o.set("to", to.0);
            }
        }
        o
    }

    /// One JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_are_flat_and_stable() {
        let ev = TraceEvent {
            t_ns: 1234,
            worker: GlobalWorkerId(7),
            place: PlaceId(3),
            kind: TraceEventKind::StealSuccess {
                tier: StealTier::Remote,
                task: TaskId(42),
                victim: PlaceId(1),
                latency_ns: 900,
            },
        };
        assert_eq!(
            ev.to_jsonl(),
            r#"{"t":1234,"w":7,"p":3,"ev":"steal_success","tier":"remote","task":42,"victim":1,"latency_ns":900}"#
        );
    }

    #[test]
    fn bare_events_have_no_payload_keys() {
        let ev = TraceEvent {
            t_ns: 5,
            worker: GlobalWorkerId(0),
            place: PlaceId(0),
            kind: TraceEventKind::Dormant,
        };
        assert_eq!(ev.to_jsonl(), r#"{"t":5,"w":0,"p":0,"ev":"dormant"}"#);
        let probe = TraceEvent {
            kind: TraceEventKind::NetProbe,
            ..ev
        };
        assert_eq!(probe.to_jsonl(), r#"{"t":5,"w":0,"p":0,"ev":"net_probe"}"#);
    }

    #[test]
    fn delivered_messages_omit_the_dropped_key() {
        let ev = TraceEvent {
            t_ns: 10,
            worker: GlobalWorkerId(1),
            place: PlaceId(0),
            kind: TraceEventKind::Message {
                kind: MessageKind::StealRequest,
                to: PlaceId(2),
                bytes: 64,
                dropped: false,
            },
        };
        assert_eq!(
            ev.to_jsonl(),
            r#"{"t":10,"w":1,"p":0,"ev":"message","kind":"steal_request","to":2,"bytes":64}"#
        );
        let dropped = TraceEvent {
            kind: TraceEventKind::Message {
                kind: MessageKind::StealRequest,
                to: PlaceId(2),
                bytes: 64,
                dropped: true,
            },
            ..ev
        };
        assert_eq!(
            dropped.to_jsonl(),
            r#"{"t":10,"w":1,"p":0,"ev":"message","kind":"steal_request","to":2,"bytes":64,"dropped":true}"#
        );
    }

    #[test]
    fn fault_events_encode_stably() {
        let base = TraceEvent {
            t_ns: 99,
            worker: GlobalWorkerId(4),
            place: PlaceId(2),
            kind: TraceEventKind::PlaceFail,
        };
        assert_eq!(base.to_jsonl(), r#"{"t":99,"w":4,"p":2,"ev":"place_fail"}"#);
        let timeout = TraceEvent {
            kind: TraceEventKind::StealTimeout {
                victim: PlaceId(3),
                attempt: 2,
            },
            ..base
        };
        assert_eq!(
            timeout.to_jsonl(),
            r#"{"t":99,"w":4,"p":2,"ev":"steal_timeout","victim":3,"attempt":2}"#
        );
        let recover = TraceEvent {
            kind: TraceEventKind::TaskRecover {
                task: TaskId(8),
                from: PlaceId(2),
                to: PlaceId(0),
            },
            ..base
        };
        assert_eq!(
            recover.to_jsonl(),
            r#"{"t":99,"w":4,"p":2,"ev":"task_recover","task":8,"from":2,"to":0}"#
        );
    }

    #[test]
    fn wire_names_are_unique() {
        let names = [
            StealTier::LocalPrivate.name(),
            StealTier::LocalShared.name(),
            StealTier::Remote.name(),
        ];
        let mut dedup = names.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
