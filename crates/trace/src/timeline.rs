//! Terminal place-timeline renderer.
//!
//! Renders a [`TimeSeries`] as one row of unicode block glyphs per
//! place — glyph height = busy-worker fraction at that instant — plus
//! a per-place mean column. Long runs are downsampled by averaging
//! consecutive samples into at most `width` columns, so the picture
//! always fits a terminal.

use crate::series::TimeSeries;
use std::fmt::Write as _;

const BLOCKS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn glyph(frac: f64) -> char {
    let f = frac.clamp(0.0, 1.0);
    // Round to the nearest of 9 levels; any non-zero activity shows.
    let mut idx = (f * 8.0).round() as usize;
    if idx == 0 && f > 0.0 {
        idx = 1;
    }
    BLOCKS[idx.min(8)]
}

/// Render the utilization timeline, at most `width` columns wide.
pub fn render_timeline(ts: &TimeSeries, width: usize) -> String {
    let samples = ts.samples();
    let mut out = String::new();
    if samples.is_empty() {
        out.push_str("(no samples)\n");
        return out;
    }
    let width = width.max(8);
    let n = samples.len();
    // Downsample: column c covers samples [c*n/width, (c+1)*n/width).
    let cols = n.min(width);
    let span_ns = samples.last().unwrap().t_ns + ts.interval_ns();
    let _ = writeln!(
        out,
        "utilization timeline — {} places × {} workers, {} samples @ {} ns, span {:.3} ms",
        ts.places(),
        ts.workers_per_place(),
        n,
        ts.interval_ns(),
        span_ns as f64 / 1e6
    );
    for p in 0..ts.places() as usize {
        let mut row = String::new();
        let mut total = 0.0f64;
        for c in 0..cols {
            let lo = c * n / cols;
            let hi = ((c + 1) * n / cols).max(lo + 1);
            let mut acc = 0.0;
            for i in lo..hi {
                acc += ts.utilization(i, p);
            }
            let frac = acc / (hi - lo) as f64;
            row.push(glyph(frac));
        }
        for i in 0..n {
            total += ts.utilization(i, p);
        }
        let _ = writeln!(out, "p{p:<3} |{row}| {:>5.1}%", 100.0 * total / n as f64);
    }
    let _ = writeln!(
        out,
        "      0 ms{}{:.3} ms",
        " ".repeat(cols.saturating_sub(12)),
        span_ns as f64 / 1e6
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::PlaceSample;

    fn series(samples: usize) -> TimeSeries {
        let mut ts = TimeSeries::new(2, 4, 100);
        for i in 0..samples {
            ts.push(vec![
                PlaceSample {
                    queue_depth: 0,
                    busy_workers: 4,
                    dormant_workers: 0,
                },
                PlaceSample {
                    queue_depth: 1,
                    busy_workers: (i % 5) as u32,
                    dormant_workers: 0,
                },
            ]);
        }
        ts
    }

    #[test]
    fn full_places_render_full_blocks() {
        let r = render_timeline(&series(10), 80);
        let p0 = r.lines().find(|l| l.starts_with("p0")).unwrap();
        assert!(p0.contains("██████████"), "{r}");
        assert!(p0.contains("100.0%"), "{r}");
    }

    #[test]
    fn long_series_downsample_to_width() {
        let r = render_timeline(&series(1000), 40);
        let p1 = r.lines().find(|l| l.starts_with("p1")).unwrap();
        let bar = p1.split('|').nth(1).unwrap();
        assert_eq!(bar.chars().count(), 40, "{r}");
    }

    #[test]
    fn empty_series_do_not_panic() {
        let ts = TimeSeries::new(1, 1, 10);
        assert!(render_timeline(&ts, 80).contains("no samples"));
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(
            render_timeline(&series(333), 60),
            render_timeline(&series(333), 60)
        );
    }
}
