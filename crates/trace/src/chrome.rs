//! Chrome `trace_event` exporter.
//!
//! Produces the JSON object format (`{"traceEvents": [...]}`) that
//! Perfetto and `chrome://tracing` load directly. Mapping:
//!
//! * process (`pid`) = place, thread (`tid`) = worker — so the UI
//!   groups one lane per worker under one bar per place;
//! * `TaskStart`/`TaskEnd` pairs become complete (`"X"`) slices;
//! * steals, migrations, remote refs and dormancy transitions become
//!   instant (`"i"`) events on the worker's lane;
//! * metadata (`"M"`) events name every process and thread.
//!
//! Timestamps are microseconds; virtual nanoseconds are emitted as
//! integer-division µs plus a `.` fraction only when needed — all
//! integer arithmetic, so export is deterministic.

use crate::event::{TraceEvent, TraceEventKind};
use distws_core::ClusterConfig;
use distws_json::Value;
use std::collections::BTreeMap;

/// Microsecond timestamp with three deterministic fraction digits.
pub(crate) fn us(t_ns: u64) -> Value {
    // 1234567 ns -> 1234.567 µs, rendered from integers.
    let whole = t_ns / 1_000;
    let frac = t_ns % 1_000;
    if frac == 0 {
        Value::UInt(whole)
    } else {
        // The format string keeps leading zeros in the fraction.
        Value::Float(format!("{whole}.{frac:03}").parse().unwrap())
    }
}

fn base(ph: &str, name: &str, ev: &TraceEvent) -> Value {
    let mut o = Value::object();
    o.set("name", name);
    o.set("ph", ph);
    o.set("ts", us(ev.t_ns));
    o.set("pid", ev.place.0);
    o.set("tid", ev.worker.0);
    o
}

fn meta(name: &str, pid: u32, tid: Option<u32>, label: String) -> Value {
    let mut o = Value::object();
    o.set("name", name);
    o.set("ph", "M");
    o.set("pid", pid);
    if let Some(tid) = tid {
        o.set("tid", tid);
    }
    let mut args = Value::object();
    args.set("name", label);
    o.set("args", args);
    o
}

/// Convert an event stream into a Chrome trace JSON value.
///
/// Events must be the complete stream of one run (start/end pairing is
/// reconstructed per worker); unmatched `TaskStart`s at stream end are
/// emitted as zero-length slices so truncated ring buffers still load.
pub fn chrome_trace(events: &[TraceEvent], config: &ClusterConfig) -> Value {
    chrome_trace_with_counters(events, config, &[])
}

/// [`chrome_trace`] plus metrics counter tracks (`"ph":"C"`) overlaid
/// from a sampled [`distws_metrics::CounterSample`] series — see
/// [`crate::bridge`].
pub fn chrome_trace_with_counters(
    events: &[TraceEvent],
    config: &ClusterConfig,
    samples: &[distws_metrics::CounterSample],
) -> Value {
    let mut out: Vec<Value> = crate::bridge::counter_track_events(samples);

    // Name the lanes.
    for p in config.place_ids() {
        out.push(meta("process_name", p.0, None, format!("place {}", p.0)));
        out.push(meta("process_sort_index", p.0, None, format!("{}", p.0)));
    }
    for g in config.worker_ids() {
        let p = config.place_of(g);
        out.push(meta(
            "thread_name",
            p.0,
            Some(g.0),
            format!("worker {}", g.0),
        ));
    }

    // Open TaskStart per worker, to pair with the matching TaskEnd.
    // BTreeMap so the truncated-slice sweep below iterates workers in
    // a deterministic order (the hash-iter lint rule).
    let mut open: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new(); // worker -> (task, t0)
    let mut last_t = 0u64;

    for ev in events {
        last_t = last_t.max(ev.t_ns);
        match ev.kind {
            TraceEventKind::TaskStart { task } => {
                open.entry(ev.worker.0).or_default().push((task.0, ev.t_ns));
            }
            TraceEventKind::TaskEnd { task } => {
                let t0 = open
                    .get_mut(&ev.worker.0)
                    .and_then(|stack| {
                        stack
                            .iter()
                            .rposition(|(t, _)| *t == task.0)
                            .map(|i| stack.remove(i).1)
                    })
                    .unwrap_or(ev.t_ns);
                let mut o = Value::object();
                o.set("name", format!("task {}", task.0));
                o.set("ph", "X");
                o.set("ts", us(t0));
                o.set("dur", us(ev.t_ns - t0));
                o.set("pid", ev.place.0);
                o.set("tid", ev.worker.0);
                out.push(o);
            }
            TraceEventKind::Spawn { task } => {
                let mut o = base("i", "spawn", ev);
                o.set("s", "t");
                let mut args = Value::object();
                args.set("task", task.0);
                o.set("args", args);
                out.push(o);
            }
            TraceEventKind::StealAttempt { .. } | TraceEventKind::NetProbe => {
                // One instant per probe would swamp the UI; attempts are
                // summarized by the histogram layer instead.
            }
            TraceEventKind::StealSuccess {
                tier,
                task,
                victim,
                latency_ns,
            } => {
                let mut o = base("i", &format!("steal:{}", tier.name()), ev);
                o.set("s", "t");
                let mut args = Value::object();
                args.set("task", task.0);
                args.set("victim", victim.0);
                args.set("latency_ns", latency_ns);
                o.set("args", args);
                out.push(o);
            }
            TraceEventKind::Migration { task, from, to } => {
                let mut o = base("i", "migration", ev);
                o.set("s", "p");
                let mut args = Value::object();
                args.set("task", task.0);
                args.set("from", from.0);
                args.set("to", to.0);
                o.set("args", args);
                out.push(o);
            }
            TraceEventKind::RemoteRef { task, home, bytes } => {
                let mut o = base("i", "remote_ref", ev);
                o.set("s", "t");
                let mut args = Value::object();
                args.set("task", task.0);
                args.set("home", home.0);
                args.set("bytes", bytes);
                o.set("args", args);
                out.push(o);
            }
            TraceEventKind::Dormant => {
                let mut o = base("i", "dormant", ev);
                o.set("s", "t");
                out.push(o);
            }
            TraceEventKind::Wakeup => {
                let mut o = base("i", "wakeup", ev);
                o.set("s", "t");
                out.push(o);
            }
            TraceEventKind::Message {
                kind,
                to,
                bytes,
                dropped,
            } => {
                let name = if dropped {
                    format!("msg:{}:dropped", kind.name())
                } else {
                    format!("msg:{}", kind.name())
                };
                let mut o = base("i", &name, ev);
                o.set("s", "t");
                let mut args = Value::object();
                args.set("to", to.0);
                args.set("bytes", bytes);
                o.set("args", args);
                out.push(o);
            }
            TraceEventKind::StealTimeout { victim, attempt } => {
                let mut o = base("i", "steal_timeout", ev);
                o.set("s", "t");
                let mut args = Value::object();
                args.set("victim", victim.0);
                args.set("attempt", attempt as u64);
                o.set("args", args);
                out.push(o);
            }
            TraceEventKind::PlaceFail => {
                let mut o = base("i", "place_fail", ev);
                o.set("s", "g");
                out.push(o);
            }
            TraceEventKind::PlaceRestart => {
                let mut o = base("i", "place_restart", ev);
                o.set("s", "g");
                out.push(o);
            }
            TraceEventKind::TaskRecover { task, from, to } => {
                let mut o = base("i", "task_recover", ev);
                o.set("s", "p");
                let mut args = Value::object();
                args.set("task", task.0);
                args.set("from", from.0);
                args.set("to", to.0);
                o.set("args", args);
                out.push(o);
            }
        }
    }

    // Close any still-open slices (ring-buffer truncation). BTreeMap
    // iteration is worker-ordered; stacks keep start order, so sort by
    // task id within each worker for a stable, readable output.
    let mut stragglers: Vec<(u32, u64, u64)> = open
        .into_iter()
        .flat_map(|(w, stack)| stack.into_iter().map(move |(task, t0)| (w, task, t0)))
        .collect();
    stragglers.sort_unstable();
    for (w, task, t0) in stragglers {
        let mut o = Value::object();
        o.set("name", format!("task {task} (truncated)"));
        o.set("ph", "X");
        o.set("ts", us(t0));
        o.set("dur", us(last_t.saturating_sub(t0)));
        o.set("pid", config.place_of(distws_core::GlobalWorkerId(w)).0);
        o.set("tid", w);
        out.push(o);
    }

    let mut root = Value::object();
    root.set("displayTimeUnit", "ns");
    root.set("traceEvents", Value::Array(out));
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StealTier;
    use distws_core::{GlobalWorkerId, PlaceId, TaskId};

    fn ev(t: u64, w: u32, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            t_ns: t,
            worker: GlobalWorkerId(w),
            place: PlaceId(w / 2),
            kind,
        }
    }

    #[test]
    fn pairs_start_end_into_slices() {
        let cfg = ClusterConfig::new(2, 2);
        let events = vec![
            ev(1_000, 0, TraceEventKind::TaskStart { task: TaskId(1) }),
            ev(5_000, 0, TraceEventKind::TaskEnd { task: TaskId(1) }),
        ];
        let json = chrome_trace(&events, &cfg).render();
        assert!(json.contains(r#""ph":"X""#), "{json}");
        assert!(json.contains(r#""ts":1,"dur":4"#), "{json}");
        assert!(json.contains(r#""name":"task 1""#), "{json}");
    }

    #[test]
    fn sub_microsecond_times_keep_fractions() {
        let cfg = ClusterConfig::new(1, 1);
        let events = vec![
            ev(500, 0, TraceEventKind::TaskStart { task: TaskId(1) }),
            ev(1_750, 0, TraceEventKind::TaskEnd { task: TaskId(1) }),
        ];
        let json = chrome_trace(&events, &cfg).render();
        assert!(json.contains(r#""ts":0.5,"dur":1.25"#), "{json}");
    }

    #[test]
    fn unmatched_starts_become_truncated_slices() {
        let cfg = ClusterConfig::new(1, 1);
        let events = vec![ev(100, 0, TraceEventKind::TaskStart { task: TaskId(9) })];
        let json = chrome_trace(&events, &cfg).render();
        assert!(json.contains("truncated"), "{json}");
    }

    #[test]
    fn lanes_are_named_and_output_is_deterministic() {
        let cfg = ClusterConfig::new(2, 2);
        let events = vec![ev(
            10,
            3,
            TraceEventKind::StealSuccess {
                tier: StealTier::Remote,
                task: TaskId(4),
                victim: PlaceId(0),
                latency_ns: 7,
            },
        )];
        let a = chrome_trace(&events, &cfg).render();
        let b = chrome_trace(&events, &cfg).render();
        assert_eq!(a, b);
        assert!(a.contains(r#""name":"place 1""#), "{a}");
        assert!(a.contains(r#""name":"worker 3""#), "{a}");
        assert!(a.contains("steal:remote"), "{a}");
    }
}
