//! Property tests: the lock-free Chase–Lev deque, driven from a single
//! thread, must behave exactly like the sequential reference model for
//! any interleaving of push / pop / steal operations.

use distws_deque::{deque, SeqPrivateDeque, Steal};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    Pop,
    Steal,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u32>().prop_map(Op::Push),
        Just(Op::Pop),
        Just(Op::Steal),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn chase_lev_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 0..400)) {
        let (w, s) = deque::<u32>();
        let mut model = SeqPrivateDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    w.push(v);
                    model.push(v);
                }
                Op::Pop => {
                    prop_assert_eq!(w.pop(), model.pop());
                }
                Op::Steal => {
                    let got = match s.steal() {
                        Steal::Success(v) => Some(v),
                        Steal::Empty => None,
                        // Single-threaded: Retry is impossible.
                        Steal::Retry => return Err(TestCaseError::fail("retry without contention")),
                    };
                    prop_assert_eq!(got, model.steal());
                }
            }
            prop_assert_eq!(w.len(), model.len());
        }
        // Drain and compare the final contents.
        let mut rest = Vec::new();
        while let Some(v) = w.pop() {
            rest.push(v);
        }
        let mut model_rest = Vec::new();
        while let Some(v) = model.pop() {
            model_rest.push(v);
        }
        prop_assert_eq!(rest, model_rest);
    }

    #[test]
    fn shared_fifo_take_chunk_equals_repeated_take(
        items in proptest::collection::vec(any::<u32>(), 0..100),
        chunk in 1usize..8,
    ) {
        let a = distws_deque::SharedFifo::new();
        let mut b = distws_deque::SeqSharedFifo::new();
        for &i in &items {
            a.push(i);
            b.push(i);
        }
        loop {
            let xs = a.take_chunk(chunk);
            let mut ys = Vec::new();
            for _ in 0..chunk {
                if let Some(v) = b.take() {
                    ys.push(v);
                }
            }
            prop_assert_eq!(&xs, &ys);
            if xs.is_empty() {
                break;
            }
        }
    }
}
