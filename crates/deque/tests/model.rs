//! Randomized model tests: the lock-free Chase–Lev deque, driven from a
//! single thread, must behave exactly like the sequential reference
//! model for any interleaving of push / pop / steal operations.
//!
//! The container builds offline, so instead of `proptest` these use
//! seeded SplitMix64-driven generation: each seed is one "case", cases
//! are fully deterministic, and a failing seed reproduces exactly.

use distws_core::rng::SplitMix64;
use distws_deque::{deque, SeqPrivateDeque, Steal};

#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    Pop,
    Steal,
}

fn random_ops(rng: &mut SplitMix64, max_len: usize) -> Vec<Op> {
    let n = rng.below_usize(max_len + 1);
    (0..n)
        .map(|_| match rng.below(3) {
            0 => Op::Push(rng.next_u64() as u32),
            1 => Op::Pop,
            _ => Op::Steal,
        })
        .collect()
}

#[test]
fn chase_lev_matches_reference_model() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(0xC4A5E + seed);
        let ops = random_ops(&mut rng, 400);
        let (w, s) = deque::<u32>();
        let mut model = SeqPrivateDeque::new();
        for op in &ops {
            match op {
                Op::Push(v) => {
                    w.push(*v);
                    model.push(*v);
                }
                Op::Pop => {
                    assert_eq!(w.pop(), model.pop(), "seed {seed}: pop diverged");
                }
                Op::Steal => {
                    let got = match s.steal() {
                        Steal::Success(v) => Some(v),
                        Steal::Empty => None,
                        // Single-threaded: Retry is impossible.
                        Steal::Retry => panic!("seed {seed}: retry without contention"),
                    };
                    assert_eq!(got, model.steal(), "seed {seed}: steal diverged");
                }
            }
            assert_eq!(w.len(), model.len(), "seed {seed}: length diverged");
        }
        // Drain and compare the final contents.
        let mut rest = Vec::new();
        while let Some(v) = w.pop() {
            rest.push(v);
        }
        let mut model_rest = Vec::new();
        while let Some(v) = model.pop() {
            model_rest.push(v);
        }
        assert_eq!(rest, model_rest, "seed {seed}: final contents diverged");
    }
}

#[test]
fn shared_fifo_take_chunk_equals_repeated_take() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(0xF1F0 + seed);
        let items: Vec<u32> = (0..rng.below_usize(100))
            .map(|_| rng.next_u64() as u32)
            .collect();
        let chunk = 1 + rng.below_usize(7);
        let a = distws_deque::SharedFifo::new();
        let mut b = distws_deque::SeqSharedFifo::new();
        for &i in &items {
            a.push(i);
            b.push(i);
        }
        loop {
            let xs = a.take_chunk(chunk);
            let mut ys = Vec::new();
            for _ in 0..chunk {
                if let Some(v) = b.take() {
                    ys.push(v);
                }
            }
            assert_eq!(&xs, &ys, "seed {seed}: chunked take diverged");
            if xs.is_empty() {
                break;
            }
        }
    }
}
