//! The per-place **shared deque** for locality-flexible tasks.
//!
//! Paper §V.A: "The shared deque … is manipulated in a first-in-first-
//! out (FIFO) manner to ensure that any steal operation, whether local
//! or remote, receives the oldest task in the deque." Remote thieves
//! additionally steal in *chunks of two* (§V.B.3) so the second task
//! feeds the thief's co-located peers and suppresses their own remote
//! steals.
//!
//! Locking is confined to this structure by design: workers touch it
//! only after their private deque, the network probe, and co-located
//! private steals all came up empty (Algorithm 1 lines 9–21).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Thread-safe FIFO deque shared by all workers of a place and exposed
/// to remote thieves.
pub struct SharedFifo<T> {
    queue: Mutex<VecDeque<T>>,
    /// Cached length so idleness probes don't take the lock.
    len: AtomicUsize,
    /// Total push operations (metrics).
    pushes: AtomicU64,
    /// Total successful take/steal operations, in tasks (metrics).
    takes: AtomicU64,
}

impl<T> Default for SharedFifo<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SharedFifo<T> {
    /// New empty shared deque.
    pub fn new() -> Self {
        SharedFifo {
            queue: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
            pushes: AtomicU64::new(0),
            takes: AtomicU64::new(0),
        }
    }

    /// Enqueue a task at the tail.
    pub fn push(&self, value: T) {
        let mut q = self.queue.lock().unwrap();
        q.push_back(value);
        self.len.store(q.len(), Ordering::Release);
        self.pushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Dequeue the oldest task (local workers and remote thieves use
    /// the same end — strict FIFO).
    pub fn take(&self) -> Option<T> {
        let mut q = self.queue.lock().unwrap();
        let v = q.pop_front();
        self.len.store(q.len(), Ordering::Release);
        if v.is_some() {
            self.takes.fetch_add(1, Ordering::Relaxed);
        }
        v
    }

    /// Dequeue up to `chunk` oldest tasks at once (distributed steal,
    /// chunk = 2 in the paper). Returns an empty vector when the deque
    /// is empty.
    pub fn take_chunk(&self, chunk: usize) -> Vec<T> {
        let mut q = self.queue.lock().unwrap();
        let n = chunk.min(q.len());
        let out: Vec<T> = q.drain(..n).collect();
        self.len.store(q.len(), Ordering::Release);
        self.takes.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Lock-free length snapshot (may lag the true length by one op).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the deque looks empty (lock-free probe).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime push count.
    pub fn pushes(&self) -> u64 {
        self.pushes.load(Ordering::Relaxed)
    }

    /// Lifetime successful take count (in tasks).
    pub fn takes(&self) -> u64 {
        self.takes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = SharedFifo::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.take(), Some(1));
        assert_eq!(q.take(), Some(2));
        assert_eq!(q.take(), Some(3));
        assert_eq!(q.take(), None);
    }

    #[test]
    fn chunked_steal_takes_oldest_first() {
        let q = SharedFifo::new();
        for i in 0..5 {
            q.push(i);
        }
        assert_eq!(q.take_chunk(2), vec![0, 1]);
        assert_eq!(q.take_chunk(10), vec![2, 3, 4]);
        assert!(q.take_chunk(2).is_empty());
    }

    #[test]
    fn length_probe_tracks_ops() {
        let q = SharedFifo::new();
        assert!(q.is_empty());
        q.push(7);
        q.push(8);
        assert_eq!(q.len(), 2);
        q.take();
        assert_eq!(q.len(), 1);
        assert_eq!(q.pushes(), 2);
        assert_eq!(q.takes(), 1);
    }

    #[test]
    fn concurrent_producers_consumers_conserve_items() {
        let q = Arc::new(SharedFifo::new());
        const PER: usize = 5_000;
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        q.push(p * PER + i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut dry = 0;
                    while dry < 1_000 {
                        match q.take() {
                            Some(v) => {
                                got.push(v);
                                dry = 0;
                            }
                            None => {
                                dry += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        // Drain leftovers the consumers gave up on.
        while let Some(v) = q.take() {
            all.push(v);
        }
        all.sort_unstable();
        assert_eq!(all, (0..2 * PER).collect::<Vec<_>>());
    }
}
