//! Single-threaded deques with the exact semantics the schedulers rely
//! on, used by the deterministic discrete-event simulator (which models
//! 128 workers inside one OS thread).
//!
//! [`SeqPrivateDeque`] mirrors the Chase–Lev private deque: the owner
//! pops the **newest** task (LIFO → cache locality, paper §V.A), while
//! thieves steal the **oldest**. [`SeqSharedFifo`] mirrors the shared
//! deque: strict FIFO with chunked steals.

use std::collections::VecDeque;

/// Owner-LIFO / thief-FIFO private deque (single-threaded).
#[derive(Debug)]
pub struct SeqPrivateDeque<T> {
    inner: VecDeque<T>,
}

impl<T> Default for SeqPrivateDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SeqPrivateDeque<T> {
    /// New empty deque.
    pub fn new() -> Self {
        SeqPrivateDeque {
            inner: VecDeque::new(),
        }
    }

    /// Owner push (bottom).
    pub fn push(&mut self, value: T) {
        self.inner.push_back(value);
    }

    /// Owner pop: most recently pushed task (bottom, LIFO).
    pub fn pop(&mut self) -> Option<T> {
        self.inner.pop_back()
    }

    /// Thief steal: oldest task (top).
    pub fn steal(&mut self) -> Option<T> {
        self.inner.pop_front()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the deque is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Current buffer capacity (observing a capacity increase across a
    /// push is how the metrics layer counts deque grows).
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }
}

/// Strict-FIFO shared deque with chunked steal (single-threaded).
#[derive(Debug)]
pub struct SeqSharedFifo<T> {
    inner: VecDeque<T>,
}

impl<T> Default for SeqSharedFifo<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SeqSharedFifo<T> {
    /// New empty deque.
    pub fn new() -> Self {
        SeqSharedFifo {
            inner: VecDeque::new(),
        }
    }

    /// Enqueue at the tail.
    pub fn push(&mut self, value: T) {
        self.inner.push_back(value);
    }

    /// Dequeue the oldest task.
    pub fn take(&mut self) -> Option<T> {
        self.inner.pop_front()
    }

    /// Dequeue up to `chunk` oldest tasks.
    pub fn take_chunk(&mut self, chunk: usize) -> Vec<T> {
        let n = chunk.min(self.inner.len());
        self.inner.drain(..n).collect()
    }

    /// [`Self::take_chunk`] into a caller-owned buffer (cleared first),
    /// so a hot loop can reuse one allocation across steals.
    pub fn take_chunk_into(&mut self, chunk: usize, out: &mut Vec<T>) {
        out.clear();
        let n = chunk.min(self.inner.len());
        out.extend(self.inner.drain(..n));
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the deque is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Current buffer capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_owner_lifo_thief_fifo() {
        let mut d = SeqPrivateDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.steal(), Some(1));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
    }

    #[test]
    fn shared_fifo_chunks() {
        let mut q = SeqSharedFifo::new();
        for i in 0..5 {
            q.push(i);
        }
        assert_eq!(q.take(), Some(0));
        assert_eq!(q.take_chunk(2), vec![1, 2]);
        assert_eq!(q.take_chunk(9), vec![3, 4]);
        assert!(q.is_empty());
    }
}
