//! A lock-free Chase–Lev work-stealing deque.
//!
//! Single owner ([`Worker`]) pushes and pops at the *bottom*; any
//! number of thieves ([`Stealer`]) compete with a compare-and-swap on
//! the *top*. Memory orderings follow the C11 formulation of Lê,
//! Pop, Cohen & Zappa Nardelli, *"Correct and Efficient Work-Stealing
//! for Weak Memory Models"* (PPoPP 2013) — the same deque X10's XRX
//! runtime and Cilk use for per-worker task queues.
//!
//! ## Memory reclamation
//!
//! When the circular buffer grows, thieves may still be reading the
//! old buffer. Instead of hazard pointers or epochs we *retire* old
//! buffers into a list owned by the deque itself; they are freed only
//! when the last handle drops. Work-stealing deques grow a handful of
//! times per run (capacity doubles), so the retired list stays tiny —
//! this trades a few kilobytes for zero read-side synchronization.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// Result of a steal attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// A task was stolen.
    Success(T),
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; retrying may work.
    Retry,
}

impl<T> Steal<T> {
    /// Convert to `Option`, treating `Retry` as `None`.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// Whether this is `Steal::Empty`.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
}

struct Buffer<T> {
    cap: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

impl<T> Buffer<T> {
    fn new(cap: usize) -> Box<Self> {
        assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::new(Buffer { cap, slots })
    }

    #[inline]
    unsafe fn read(&self, index: isize) -> T {
        let slot = &self.slots[(index as usize) & (self.cap - 1)];
        (*slot.get()).assume_init_read()
    }

    #[inline]
    unsafe fn write(&self, index: isize, value: T) {
        let slot = &self.slots[(index as usize) & (self.cap - 1)];
        (*slot.get()).write(value);
    }
}

struct Inner<T> {
    top: AtomicIsize,
    bottom: AtomicIsize,
    buffer: AtomicPtr<Buffer<T>>,
    /// Retired buffers, freed when the deque drops.
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: `Inner` is shared by exactly one owner and many thieves.
// Every slot is published to thieves only via the release store of
// `bottom` (push) and claimed only via the CAS on `top` (steal/pop),
// so a `T` crosses threads at most once and is never aliased after a
// successful claim; `T: Send` is therefore sufficient for both
// auto-traits. Retired buffers are only freed in `Drop`, when no other
// handle exists.
unsafe impl<T: Send> Send for Inner<T> {}
// SAFETY: see the `Send` justification above — all shared mutation
// goes through atomics or the `retired` mutex.
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Sole owner now: drain remaining elements, then free buffers.
        let top = self.top.load(Ordering::Relaxed);
        let bottom = self.bottom.load(Ordering::Relaxed);
        let buf_ptr = self.buffer.load(Ordering::Relaxed);
        // SAFETY: `&mut self` in `Drop` proves no other handle exists,
        // so indices `top..bottom` hold initialized, unaliased values;
        // the current and retired buffer pointers all came from
        // `Box::into_raw` and are freed exactly once each.
        unsafe {
            let buf = &*buf_ptr;
            let mut i = top;
            while i < bottom {
                drop(buf.read(i));
                i += 1;
            }
            drop(Box::from_raw(buf_ptr));
            for p in self.retired.lock().unwrap().drain(..) {
                drop(Box::from_raw(p));
            }
        }
    }
}

/// Owner handle: push/pop at the bottom. Not `Clone` — exactly one
/// owner per deque.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
}

/// Thief handle: steal from the top. Cheap to clone.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Create a new deque, returning the unique owner handle and a
/// cloneable stealer handle.
pub fn deque<T: Send>() -> (Worker<T>, Stealer<T>) {
    let inner = Arc::new(Inner {
        top: AtomicIsize::new(0),
        bottom: AtomicIsize::new(0),
        buffer: AtomicPtr::new(Box::into_raw(Buffer::new(64))),
        retired: Mutex::new(Vec::new()),
    });
    (
        Worker {
            inner: Arc::clone(&inner),
        },
        Stealer { inner },
    )
}

impl<T: Send> Worker<T> {
    /// Push a task at the bottom (owner end). Never blocks; grows the
    /// buffer when full.
    pub fn push(&self, value: T) {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        let mut buf_ptr = inner.buffer.load(Ordering::Relaxed);
        // SAFETY: only the single owner writes the buffer pointer, so
        // our relaxed load sees the current buffer. Slot `b` is outside
        // every thief's reachable window (they stop at the `bottom`
        // they observed, which is ≤ b until the release store below
        // publishes the write), so the plain write cannot race a read.
        unsafe {
            if b - t >= (*buf_ptr).cap as isize {
                buf_ptr = self.grow(buf_ptr, t, b);
            }
            (*buf_ptr).write(b, value);
        }
        fence(Ordering::Release);
        inner.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Pop the most recently pushed task (LIFO). Only the owner calls
    /// this.
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let buf_ptr = inner.buffer.load(Ordering::Relaxed);
        inner.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        if t <= b {
            // Non-empty.
            // SAFETY: slot `b` was initialized by our own earlier push
            // and cannot be freed (buffers are only retired, never
            // freed, while handles live). If a thief claims the same
            // index, exactly one of us wins the CAS on `top` below and
            // the loser forgets its bitwise copy — no double drop.
            let value = unsafe { (*buf_ptr).read(b) };
            if t == b {
                // Last element: race with thieves for it.
                if inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_err()
                {
                    // Lost: a thief took it. Forget our bitwise copy.
                    std::mem::forget(value);
                    inner.bottom.store(b + 1, Ordering::Relaxed);
                    return None;
                }
                inner.bottom.store(b + 1, Ordering::Relaxed);
            }
            Some(value)
        } else {
            // Empty: restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Number of elements visible to the owner (approximate under
    /// concurrent steals).
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Whether the deque looks empty to the owner.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A stealer handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    #[cold]
    unsafe fn grow(&self, old_ptr: *mut Buffer<T>, t: isize, b: isize) -> *mut Buffer<T> {
        let old = &*old_ptr;
        let new = Buffer::new(old.cap * 2);
        let mut i = t;
        while i < b {
            // Bitwise move: ownership transfers to the new buffer; the
            // old slots are never read again by the owner (thieves that
            // raced will CAS-fail on `top`).
            let slot = &old.slots[(i as usize) & (old.cap - 1)];
            let v = (*slot.get()).assume_init_read();
            new.write(i, v);
            i += 1;
        }
        let new_ptr = Box::into_raw(new);
        self.inner.buffer.store(new_ptr, Ordering::Release);
        self.inner.retired.lock().unwrap().push(old_ptr);
        new_ptr
    }
}

impl<T: Send> Stealer<T> {
    /// Attempt to steal the oldest task (top end).
    pub fn steal(&self) -> Steal<T> {
        let inner = &*self.inner;
        let t = inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t < b {
            let buf_ptr = inner.buffer.load(Ordering::Acquire);
            // SAFETY: the acquire loads of `bottom` and `buffer` make
            // the owner's write of slot `t` visible (t < b). The
            // pointer stays valid because old buffers are retired, not
            // freed. The bitwise copy is only kept if the CAS below
            // claims index `t`; on failure it is forgotten, so the
            // value is never duplicated or dropped twice.
            let value = unsafe { (*buf_ptr).read(t) };
            if inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                // Lost the race; the bitwise copy must not be dropped.
                std::mem::forget(value);
                return Steal::Retry;
            }
            Steal::Success(value)
        } else {
            Steal::Empty
        }
    }

    /// Steal with bounded retries, turning `Retry` storms into a
    /// single `Option`.
    pub fn steal_with_retries(&self, max_retries: usize) -> Option<T> {
        for _ in 0..=max_retries {
            match self.steal() {
                Steal::Success(v) => return Some(v),
                Steal::Empty => return None,
                Steal::Retry => std::hint::spin_loop(),
            }
        }
        None
    }

    /// Approximate number of elements.
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Whether the deque looks empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn lifo_for_owner() {
        let (w, _s) = deque::<u32>();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn fifo_for_thief() {
        let (w, s) = deque::<u32>();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal().success(), Some(1));
        assert_eq!(s.steal().success(), Some(2));
        assert_eq!(w.pop(), Some(3));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn growth_preserves_elements() {
        let (w, s) = deque::<usize>();
        for i in 0..1_000 {
            w.push(i);
        }
        assert_eq!(w.len(), 1_000);
        // Steal the first half, pop the second half.
        for i in 0..500 {
            assert_eq!(s.steal().success(), Some(i));
        }
        for i in (500..1_000).rev() {
            assert_eq!(w.pop(), Some(i));
        }
        assert!(w.is_empty());
    }

    #[test]
    fn drop_releases_remaining_elements() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let (w, _s) = deque::<D>();
            for _ in 0..10 {
                w.push(D);
            }
            drop(w.pop()); // one dropped here
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn concurrent_thieves_see_each_item_once() {
        const ITEMS: usize = 20_000;
        const THIEVES: usize = 3;
        let (w, s) = deque::<usize>();
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let handles: Vec<_> = (0..THIEVES)
            .map(|_| {
                let s = s.clone();
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match s.steal() {
                            Steal::Success(v) => got.push(v),
                            Steal::Empty => {
                                if done.load(Ordering::Acquire) {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                            Steal::Retry => std::hint::spin_loop(),
                        }
                    }
                    got
                })
            })
            .collect();

        let mut popped = Vec::new();
        for i in 0..ITEMS {
            w.push(i);
            if i % 3 == 0 {
                if let Some(v) = w.pop() {
                    popped.push(v);
                }
            }
        }
        while let Some(v) = w.pop() {
            popped.push(v);
        }
        done.store(true, Ordering::Release);

        let mut seen: HashSet<usize> = popped.into_iter().collect();
        let mut total = seen.len();
        for h in handles {
            let got = h.join().unwrap();
            total += got.len();
            for v in got {
                assert!(seen.insert(v), "item {v} observed twice");
            }
        }
        assert_eq!(total, ITEMS, "items lost: saw {total} of {ITEMS}");
    }
}
