//! # distws-deque
//!
//! The deque substrate of DistWS (paper §V.A "Multiple Deques").
//!
//! Each worker owns a **private deque**: the owner pushes and pops at
//! the bottom (LIFO, maximizing cache reuse of the most recently
//! spawned task), co-located thieves steal from the top (FIFO end,
//! oldest task). Each *place* additionally owns one **shared deque**
//! holding locality-flexible tasks; it is manipulated strictly FIFO so
//! that any steal — local or remote — receives the *oldest* task, which
//! potentially roots the largest remaining subgraph and keeps a remote
//! thief busy longest.
//!
//! Three implementations:
//!
//! * [`chase_lev`] — a lock-free Chase–Lev deque (owner wait-free in
//!   the common case, thieves CAS on the top index), built directly on
//!   `std::sync::atomic` following Lê et al.'s C11 formulation. Used by
//!   the real threaded runtime for private deques.
//! * [`shared_fifo`] — a lock-based FIFO deque with chunked steal
//!   (paper: remote steals take chunks of 2), used per place.
//! * [`seq`] — single-threaded deques with identical semantics for the
//!   deterministic discrete-event simulator.

pub mod chase_lev;
pub mod seq;
pub mod shared_fifo;

pub use chase_lev::{deque, Steal, Stealer, Worker};
pub use seq::{SeqPrivateDeque, SeqSharedFifo};
pub use shared_fifo::SharedFifo;
