//! # distws-json
//!
//! A tiny, dependency-free JSON value model and serializer.
//!
//! The reproduction container builds fully offline, so this crate
//! replaces `serde`/`serde_json` for everything DistWS writes out:
//! the `repro --json` result files, the JSONL trace event stream and
//! the Chrome `trace_event` exports. Determinism is a feature here,
//! not an accident: objects preserve insertion order and numbers are
//! formatted by a single fixed routine, so the same data always
//! serializes to the same bytes (the trace layer relies on this to use
//! traces as regression oracles).
//!
//! Types implement [`ToJson`]; the [`impl_to_json!`] macro derives the
//! obvious struct implementation:
//!
//! ```
//! use distws_json::{impl_to_json, to_string, ToJson};
//!
//! struct Point { x: u64, y: f64 }
//! impl_to_json!(Point { x, y });
//!
//! assert_eq!(to_string(&Point { x: 1, y: 0.5 }), r#"{"x":1,"y":0.5}"#);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (serialized without decimal point).
    UInt(u64),
    /// Signed integer (serialized without decimal point).
    Int(i64),
    /// Floating-point number. Non-finite values serialize as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Insert a key into an object value (panics on non-objects).
    pub fn set(&mut self, key: &str, value: impl ToJson) -> &mut Self {
        match self {
            Value::Object(fields) => fields.push((key.to_string(), value.to_json())),
            other => panic!("Value::set on non-object {other:?}"),
        }
        self
    }

    /// Serialize compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(x) => write_f64(out, *x),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Value::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    write_escaped(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

/// Deterministic float formatting: shortest round-trip via `{}` (Rust's
/// float Display is shortest-representation and stable), integers keep
/// a trailing `.0` so they stay floats on re-parse.
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a JSON [`Value`].
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

/// Derive a field-by-field object [`ToJson`] impl for a struct.
///
/// ```
/// use distws_json::impl_to_json;
/// struct Row { app: String, speedup: f64 }
/// impl_to_json!(Row { app, speedup });
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                let mut obj = $crate::Value::object();
                $(obj.set(stringify!($field), &self.$field);)+
                obj
            }
        }
    };
}

/// Serialize any [`ToJson`] value compactly.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render()
}

/// Serialize any [`ToJson`] value with 2-space indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(to_string(&true), "true");
        assert_eq!(to_string(&42u64), "42");
        assert_eq!(to_string(&-7i64), "-7");
        assert_eq!(to_string(&1.5f64), "1.5");
        assert_eq!(to_string(&3.0f64), "3.0");
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string("a\"b\n"), "\"a\\\"b\\n\"");
        assert_eq!(to_string(&Option::<u64>::None), "null");
    }

    #[test]
    fn collections_render() {
        assert_eq!(to_string(&vec![1u64, 2, 3]), "[1,2,3]");
        let mut obj = Value::object();
        obj.set("b", 1u64).set("a", "x");
        assert_eq!(obj.render(), r#"{"b":1,"a":"x"}"#);
    }

    #[test]
    fn pretty_indents() {
        let mut obj = Value::object();
        obj.set("xs", vec![1u64]);
        assert_eq!(obj.render_pretty(), "{\n  \"xs\": [\n    1\n  ]\n}");
    }

    #[test]
    fn derive_macro_covers_structs() {
        struct P {
            x: u64,
            label: String,
            opt: Option<f64>,
        }
        impl_to_json!(P { x, label, opt });
        let p = P {
            x: 9,
            label: "hi".into(),
            opt: Some(0.25),
        };
        assert_eq!(to_string(&p), r#"{"x":9,"label":"hi","opt":0.25}"#);
    }

    #[test]
    fn rendering_is_deterministic() {
        let mut a = Value::object();
        a.set("k", vec![0.1f64, 2.0, 3.5]).set("s", "x");
        assert_eq!(a.render(), a.clone().render());
        assert_eq!(a.render(), r#"{"k":[0.1,2.0,3.5],"s":"x"}"#);
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(to_string("\u{1}"), "\"\\u0001\"");
    }
}
