//! # distws-json
//!
//! A tiny, dependency-free JSON value model and serializer.
//!
//! The reproduction container builds fully offline, so this crate
//! replaces `serde`/`serde_json` for everything DistWS writes out:
//! the `repro --json` result files, the JSONL trace event stream and
//! the Chrome `trace_event` exports. Determinism is a feature here,
//! not an accident: objects preserve insertion order and numbers are
//! formatted by a single fixed routine, so the same data always
//! serializes to the same bytes (the trace layer relies on this to use
//! traces as regression oracles).
//!
//! Types implement [`ToJson`]; the [`impl_to_json!`] macro derives the
//! obvious struct implementation:
//!
//! ```
//! use distws_json::{impl_to_json, to_string, ToJson};
//!
//! struct Point { x: u64, y: f64 }
//! impl_to_json!(Point { x, y });
//!
//! assert_eq!(to_string(&Point { x: 1, y: 0.5 }), r#"{"x":1,"y":0.5}"#);
//! ```

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (serialized without decimal point).
    UInt(u64),
    /// Signed integer (serialized without decimal point).
    Int(i64),
    /// Floating-point number. Non-finite values serialize as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Insert a key into an object value (panics on non-objects).
    pub fn set(&mut self, key: &str, value: impl ToJson) -> &mut Self {
        match self {
            Value::Object(fields) => fields.push((key.to_string(), value.to_json())),
            other => panic!("Value::set on non-object {other:?}"),
        }
        self
    }

    /// Serialize compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    /// Look up a key in an object value; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `u64` (`UInt`, non-negative `Int`, or an
    /// integral non-negative `Float`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            Value::Float(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// Boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64` (any of the three number variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Element slice, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parse JSON text into a [`Value`]. Integers without fraction or
    /// exponent parse as `UInt`/`Int` (so trace timestamps survive a
    /// render → parse round-trip exactly); everything else follows RFC
    /// 8259. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(x) => write_f64(out, *x),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Value::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    write_escaped(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

/// Deterministic float formatting: shortest round-trip via `{}` (Rust's
/// float Display is shortest-representation and stable), integers keep
/// a trailing `.0` so they stay floats on re-parse.
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError {
            offset: self.i,
            msg,
        }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.eat("null", Value::Null),
            b't' => self.eat("true", Value::Bool(true)),
            b'f' => self.eat("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.i += 1; // [
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.i += 1; // {
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let k = self.string()?;
            self.ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.i += 1;
            self.ws();
            let v = self.value()?;
            fields.push((k, v));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.i += 1; // opening quote
        let mut out = String::new();
        loop {
            let c = *self
                .b
                .get(self.i)
                .ok_or_else(|| self.err("unterminated string"))?;
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    let e = *self
                        .b
                        .get(self.i)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.b.get(self.i) == Some(&b'\\')
                                    && self.b.get(self.i + 1) == Some(&b'u')
                                {
                                    self.i += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0xC0) == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.b[start..self.i]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.i + 4 > self.b.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.b[self.i..self.i + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.i += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("bad number"))
        }
    }
}

/// Conversion into a JSON [`Value`].
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

/// Derive a field-by-field object [`ToJson`] impl for a struct.
///
/// ```
/// use distws_json::impl_to_json;
/// struct Row { app: String, speedup: f64 }
/// impl_to_json!(Row { app, speedup });
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                let mut obj = $crate::Value::object();
                $(obj.set(stringify!($field), &self.$field);)+
                obj
            }
        }
    };
}

/// Serialize any [`ToJson`] value compactly.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render()
}

/// Serialize any [`ToJson`] value with 2-space indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render_pretty()
}

/// Write a value to `path` pretty-printed with **exactly one trailing
/// newline** — the committed-artifact convention (`results/*.json`,
/// `BENCH_*.json`), so regenerating a file never produces a
/// whitespace-only diff.
pub fn write_json_file<T: ToJson + ?Sized>(
    path: &std::path::Path,
    value: &T,
) -> std::io::Result<()> {
    let mut text = value.to_json().render_pretty();
    while text.ends_with('\n') {
        text.pop();
    }
    text.push('\n');
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(to_string(&true), "true");
        assert_eq!(to_string(&42u64), "42");
        assert_eq!(to_string(&-7i64), "-7");
        assert_eq!(to_string(&1.5f64), "1.5");
        assert_eq!(to_string(&3.0f64), "3.0");
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string("a\"b\n"), "\"a\\\"b\\n\"");
        assert_eq!(to_string(&Option::<u64>::None), "null");
    }

    #[test]
    fn collections_render() {
        assert_eq!(to_string(&vec![1u64, 2, 3]), "[1,2,3]");
        let mut obj = Value::object();
        obj.set("b", 1u64).set("a", "x");
        assert_eq!(obj.render(), r#"{"b":1,"a":"x"}"#);
    }

    #[test]
    fn accessors_narrow_by_variant() {
        assert_eq!(Value::UInt(3).as_f64(), Some(3.0));
        assert_eq!(Value::Int(-2).as_f64(), Some(-2.0));
        assert_eq!(Value::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        let arr = Value::Array(vec![Value::UInt(1), Value::UInt(2)]);
        assert_eq!(arr.as_array().map(|a| a.len()), Some(2));
        assert_eq!(Value::UInt(1).as_array(), None);
    }

    #[test]
    fn write_json_file_guarantees_single_trailing_newline() {
        let mut obj = Value::object();
        obj.set("k", 1u64);
        let path = std::env::temp_dir().join("distws_json_write_test.json");
        write_json_file(&path, &obj).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        assert!(!text.ends_with("\n\n"));
        assert_eq!(text.trim_end(), obj.render_pretty().trim_end());
        // Idempotent: rewriting yields byte-identical content.
        write_json_file(&path, &obj).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pretty_indents() {
        let mut obj = Value::object();
        obj.set("xs", vec![1u64]);
        assert_eq!(obj.render_pretty(), "{\n  \"xs\": [\n    1\n  ]\n}");
    }

    #[test]
    fn derive_macro_covers_structs() {
        struct P {
            x: u64,
            label: String,
            opt: Option<f64>,
        }
        impl_to_json!(P { x, label, opt });
        let p = P {
            x: 9,
            label: "hi".into(),
            opt: Some(0.25),
        };
        assert_eq!(to_string(&p), r#"{"x":9,"label":"hi","opt":0.25}"#);
    }

    #[test]
    fn rendering_is_deterministic() {
        let mut a = Value::object();
        a.set("k", vec![0.1f64, 2.0, 3.5]).set("s", "x");
        assert_eq!(a.render(), a.clone().render());
        assert_eq!(a.render(), r#"{"k":[0.1,2.0,3.5],"s":"x"}"#);
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(to_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn parse_round_trips_trace_lines() {
        let line = r#"{"t":1234,"w":7,"p":3,"ev":"steal_success","tier":"remote","task":42,"victim":1,"latency_ns":900}"#;
        let v = Value::parse(line).unwrap();
        assert_eq!(v.render(), line);
        assert_eq!(v.get("t").and_then(Value::as_u64), Some(1234));
        assert_eq!(v.get("ev").and_then(Value::as_str), Some("steal_success"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_covers_all_value_kinds() {
        let v = Value::parse(
            r#"{"n":null,"b":[true,false],"i":-3,"u":18446744073709551615,"f":1.5e3,"s":"a\n\"\u0041\u00e9"}"#,
        )
        .unwrap();
        assert_eq!(v.get("n"), Some(&Value::Null));
        assert_eq!(v.get("i"), Some(&Value::Int(-3)));
        assert_eq!(v.get("u"), Some(&Value::UInt(u64::MAX)));
        assert_eq!(v.get("f"), Some(&Value::Float(1500.0)));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("a\n\"Aé"));
    }

    #[test]
    fn parse_surrogate_pairs_and_whitespace() {
        let v = Value::parse(" { \"e\" : \"\\ud83d\\ude00\" } ").unwrap();
        assert_eq!(v.get("e").and_then(Value::as_str), Some("😀"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\":1} x").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("nul").is_err());
    }

    #[test]
    fn parse_empty_containers() {
        assert_eq!(Value::parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(Value::parse("{}").unwrap(), Value::object());
    }
}
