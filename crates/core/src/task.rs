//! Task descriptors and the [`TaskScope`] interface application code
//! programs against.
//!
//! A DistWS task corresponds to an X10 `async (p) S` activity: a body
//! closure, a home place `p`, a [`Locality`] annotation, an estimated
//! compute cost, and a *data footprint* — the objects the task
//! encapsulates and would carry along if migrated (§II condition (d),
//! §IV examples: a Delaunay triangle plus its points, a Turing-ring
//! cell plus its bodies).

use crate::ids::{GlobalWorkerId, ObjectId, PlaceId, TaskId};
use crate::locality::Locality;

/// Kind of a data access, for cache/traffic accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Load from the object.
    Read,
    /// Store to the object.
    Write,
}

/// One contiguous access to a logical data object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The object touched.
    pub obj: ObjectId,
    /// Byte offset within the object.
    pub offset: u64,
    /// Length in bytes.
    pub bytes: u64,
    /// Home place of the object (where its memory lives).
    pub home: PlaceId,
    /// Read or write.
    pub kind: AccessKind,
}

impl Access {
    /// Convenience constructor for a read.
    pub fn read(obj: ObjectId, offset: u64, bytes: u64, home: PlaceId) -> Self {
        Access {
            obj,
            offset,
            bytes,
            home,
            kind: AccessKind::Read,
        }
    }

    /// Convenience constructor for a write.
    pub fn write(obj: ObjectId, offset: u64, bytes: u64, home: PlaceId) -> Self {
        Access {
            obj,
            offset,
            bytes,
            home,
            kind: AccessKind::Write,
        }
    }
}

/// The data a task *encapsulates*: regions copied together with the task
/// when it migrates to a remote place. After migration these regions are
/// local to the thief (no further remote references), exactly the
/// property the paper's flexible tasks exploit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Encapsulated regions.
    pub regions: Vec<Access>,
}

impl Footprint {
    /// The empty footprint (task carries nothing but its closure).
    pub fn empty() -> Self {
        Footprint::default()
    }

    /// A footprint with a single encapsulated region.
    pub fn single(obj: ObjectId, bytes: u64, home: PlaceId) -> Self {
        Footprint {
            regions: vec![Access::read(obj, 0, bytes, home)],
        }
    }

    /// Total bytes moved with the task on migration.
    pub fn total_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes).sum()
    }

    /// Whether `obj` is encapsulated by (copied with) the task.
    pub fn contains(&self, obj: ObjectId) -> bool {
        self.regions.iter().any(|r| r.obj == obj)
    }
}

/// The closure a task runs. The scope argument is how the body spawns
/// children, charges data-dependent compute time, and records data
/// accesses.
pub type TaskBody = Box<dyn FnOnce(&mut dyn TaskScope) + Send + 'static>;

/// Complete description of a spawnable task (an X10 `async (p)` plus
/// the DistWS metadata).
pub struct TaskSpec {
    /// Place the `async` names — where the task runs unless stolen.
    pub home: PlaceId,
    /// `Sensitive` or `Flexible` (`@AnyPlaceTask`).
    pub locality: Locality,
    /// Estimated pure-compute time of the body in virtual ns, excluding
    /// scheduling and communication. Bodies can add to this at run time
    /// with [`TaskScope::charge`].
    pub est_cost_ns: u64,
    /// Data the task encapsulates and carries on migration.
    pub footprint: Footprint,
    /// Short static label for metrics (e.g. `"triangulate"`).
    pub label: &'static str,
    /// Completion latch this task is registered on, if any (the X10
    /// `finish` analogue — see [`crate::finish::FinishLatch`]).
    pub latch: Option<std::sync::Arc<crate::finish::FinishLatch>>,
    /// The body.
    pub body: TaskBody,
}

impl TaskSpec {
    /// Build a task with an empty footprint.
    pub fn new(
        home: PlaceId,
        locality: Locality,
        est_cost_ns: u64,
        label: &'static str,
        body: impl FnOnce(&mut dyn TaskScope) + Send + 'static,
    ) -> Self {
        TaskSpec {
            home,
            locality,
            est_cost_ns,
            footprint: Footprint::empty(),
            label,
            latch: None,
            body: Box::new(body),
        }
    }

    /// Attach a footprint (builder style).
    pub fn with_footprint(mut self, footprint: Footprint) -> Self {
        self.footprint = footprint;
        self
    }

    /// Register this task on a completion latch (builder style).
    pub fn with_latch(mut self, latch: std::sync::Arc<crate::finish::FinishLatch>) -> Self {
        self.latch = Some(latch);
        self
    }

    /// Bytes that must cross the network if this task migrates.
    pub fn migration_bytes(&self) -> u64 {
        self.footprint.total_bytes()
    }
}

impl std::fmt::Debug for TaskSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskSpec")
            .field("home", &self.home)
            .field("locality", &self.locality)
            .field("est_cost_ns", &self.est_cost_ns)
            .field("footprint_bytes", &self.footprint.total_bytes())
            .field("label", &self.label)
            .finish()
    }
}

/// What a running task sees: its execution context plus the operations
/// it may perform against the runtime. Implemented by both the
/// discrete-event simulator and the threaded runtime, so application
/// code is written once.
pub trait TaskScope {
    /// Place where the task is *actually executing* (≠ [`Self::home`]
    /// if the task was stolen remotely).
    fn here(&self) -> PlaceId;
    /// Place the task was spawned at (`async (p)`).
    fn home(&self) -> PlaceId;
    /// Executing worker.
    fn worker(&self) -> GlobalWorkerId;
    /// Id of the executing task.
    fn task_id(&self) -> TaskId;
    /// Spawn a child activity.
    fn spawn(&mut self, spec: TaskSpec);
    /// Charge additional data-dependent compute time discovered while
    /// running (virtual ns).
    fn charge(&mut self, ns: u64);
    /// Record a data access. The engine decides whether it is local
    /// (object home == here, or the object was encapsulated in the
    /// migrated task's footprint) or a remote reference, and feeds the
    /// cache model.
    fn access(&mut self, access: Access);
    /// Convenience: record a read of `bytes` at `offset` in `obj`.
    fn read(&mut self, obj: ObjectId, offset: u64, bytes: u64, home: PlaceId) {
        self.access(Access::read(obj, offset, bytes, home));
    }
    /// Convenience: record a write of `bytes` at `offset` in `obj`.
    fn write(&mut self, obj: ObjectId, offset: u64, bytes: u64, home: PlaceId) {
        self.access(Access::write(obj, offset, bytes, home));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_accounting() {
        let p = PlaceId(0);
        let mut fp = Footprint::single(ObjectId(1), 100, p);
        fp.regions.push(Access::read(ObjectId(2), 0, 28, p));
        assert_eq!(fp.total_bytes(), 128);
        assert!(fp.contains(ObjectId(1)));
        assert!(fp.contains(ObjectId(2)));
        assert!(!fp.contains(ObjectId(3)));
    }

    #[test]
    fn spec_builder() {
        let spec = TaskSpec::new(PlaceId(2), Locality::Flexible, 1_000, "t", |_s| {})
            .with_footprint(Footprint::single(ObjectId(7), 64, PlaceId(2)));
        assert_eq!(spec.migration_bytes(), 64);
        assert_eq!(spec.home, PlaceId(2));
        assert!(spec.locality.remotely_stealable());
        let dbg = format!("{spec:?}");
        assert!(dbg.contains("TaskSpec"));
    }
}
