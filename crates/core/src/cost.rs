//! Virtual-time cost model of the simulated cluster.
//!
//! All costs are in **virtual nanoseconds**. Defaults approximate the
//! paper's testbed: InfiniBand 10 Gbit/s between nodes via MVAPICH2
//! (≈ microseconds of software latency per message, ~0.8 ns per byte of
//! payload), sub-microsecond shared-memory deque operations within a
//! place. The scheduling conclusions depend on the *ratios* (remote
//! steal ≫ local steal ≫ deque op), not on exact constants; every
//! constant is a public field so experiments can sweep them.

/// Cost constants used by the discrete-event engine.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Push/pop on a worker's private deque (uncontended, lock-free).
    pub private_deque_op_ns: u64,
    /// Operation on the place's shared deque (lock + FIFO op).
    pub shared_deque_op_ns: u64,
    /// Stealing from a co-located worker's private deque (CAS on the
    /// top end, possible retry).
    pub local_steal_ns: u64,
    /// One-way network latency between two places (software stack +
    /// wire). Charged per message.
    pub net_latency_ns: u64,
    /// Transfer cost per byte of message payload (1 / bandwidth).
    /// 10 Gbit/s ⇒ 0.8 ns/byte.
    pub net_ns_per_byte_num: u64,
    /// Denominator for the per-byte cost so we can express 0.8 ns/byte
    /// in integer arithmetic (num=4, den=5).
    pub net_ns_per_byte_den: u64,
    /// Fixed size in bytes of a serialized task closure (headers,
    /// captured scalars) on top of its data footprint.
    pub closure_bytes: u64,
    /// Extra bookkeeping charged to every spawn under schedulers that
    /// maintain the dual-deque structure and probe place status
    /// (DistWS / DistWS-NS). Reproduces the paper's single-node
    /// slowdown vs X10WS (§VIII.1).
    pub mapping_overhead_ns: u64,
    /// Cost of probing the network for incoming tasks (Algorithm 1
    /// line 11) — a non-blocking poll.
    pub network_probe_ns: u64,
    /// Penalty per L1 miss (memory stall), charged when the cache model
    /// is enabled.
    pub l1_miss_penalty_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            private_deque_op_ns: 50,
            shared_deque_op_ns: 250,
            local_steal_ns: 1_000,
            net_latency_ns: 5_000,
            net_ns_per_byte_num: 4,
            net_ns_per_byte_den: 5,
            closure_bytes: 256,
            mapping_overhead_ns: 120,
            network_probe_ns: 200,
            l1_miss_penalty_ns: 8,
        }
    }
}

impl CostModel {
    /// Wire-transfer time for `bytes` of payload, excluding latency.
    #[inline]
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        bytes * self.net_ns_per_byte_num / self.net_ns_per_byte_den
    }

    /// Total cost of one message of `bytes` payload: latency + transfer.
    #[inline]
    pub fn message_ns(&self, bytes: u64) -> u64 {
        self.net_latency_ns + self.transfer_ns(bytes)
    }

    /// Cost of migrating a task across places: a steal-request /
    /// steal-reply round trip plus the serialized closure and its data
    /// footprint on the reply.
    #[inline]
    pub fn migration_ns(&self, footprint_bytes: u64) -> u64 {
        self.message_ns(64) + self.message_ns(self.closure_bytes + footprint_bytes)
    }

    /// Cost of a remote data reference: request + reply carrying
    /// `bytes`.
    #[inline]
    pub fn remote_ref_ns(&self, bytes: u64) -> u64 {
        self.message_ns(64) + self.message_ns(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_order_sanely() {
        let c = CostModel::default();
        // remote steal ≫ local steal ≫ shared deque op ≫ private op
        assert!(c.migration_ns(0) > c.local_steal_ns);
        assert!(c.local_steal_ns > c.shared_deque_op_ns);
        assert!(c.shared_deque_op_ns > c.private_deque_op_ns);
    }

    #[test]
    fn bandwidth_math() {
        let c = CostModel::default();
        // 10 Gbit/s = 1.25 GB/s → 0.8 ns per byte.
        assert_eq!(c.transfer_ns(1_000), 800);
        assert_eq!(c.message_ns(0), c.net_latency_ns);
    }

    #[test]
    fn migration_includes_round_trip() {
        let c = CostModel::default();
        assert!(c.migration_ns(4096) >= 2 * c.net_latency_ns + c.transfer_ns(4096));
    }
}
