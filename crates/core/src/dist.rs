//! Logical data distribution: the X10 `DistArray` analogue.
//!
//! In the reproduction all places live in one address space, so the
//! *distribution is logical but fully accounted*: every element has a
//! home place, and engines charge remote-reference costs whenever a
//! task touches data homed elsewhere (unless the task's footprint
//! carried that data along on migration).

use crate::ids::{ObjectId, PlaceId};
use crate::task::Access;
use std::ops::Range;

/// Allocates unique [`ObjectId`]s within one run. Apps create one and
/// hand out ids to their distributed structures so cache lines of
/// different structures never alias.
#[derive(Debug, Default)]
pub struct ObjectAllocator {
    next: u64,
}

impl ObjectAllocator {
    /// New allocator starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate one fresh object id.
    pub fn alloc(&mut self) -> ObjectId {
        let id = ObjectId(self.next);
        self.next += 1;
        id
    }

    /// Allocate `n` consecutive ids, returning the first.
    pub fn alloc_n(&mut self, n: u64) -> ObjectId {
        let id = ObjectId(self.next);
        self.next += n;
        id
    }
}

/// Block distribution of the index range `[0, len)` over `places`
/// places (X10's `Dist.makeBlock`). The first `len % places` places
/// receive one extra element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDist {
    len: usize,
    places: u32,
}

impl BlockDist {
    /// Distribution of `len` elements over `places` places.
    pub fn new(len: usize, places: u32) -> Self {
        assert!(places > 0);
        BlockDist { len, places }
    }

    /// Number of distributed elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the distribution is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of places.
    pub fn places(&self) -> u32 {
        self.places
    }

    /// Home place of element `i`.
    pub fn place_of(&self, i: usize) -> PlaceId {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        let p = self.places as usize;
        let base = self.len / p;
        let extra = self.len % p;
        // The first `extra` places hold `base+1` elements each.
        let boundary = extra * (base + 1);
        if i < boundary {
            PlaceId((i / (base + 1)) as u32)
        } else {
            PlaceId((extra + (i - boundary) / base.max(1)) as u32)
        }
    }

    /// Index range homed at place `p`.
    pub fn range_of(&self, p: PlaceId) -> Range<usize> {
        let places = self.places as usize;
        let idx = p.index();
        assert!(idx < places);
        let base = self.len / places;
        let extra = self.len % places;
        let start = if idx <= extra {
            idx * (base + 1)
        } else {
            extra * (base + 1) + (idx - extra) * base
        };
        let size = if idx < extra { base + 1 } else { base };
        start..(start + size).min(self.len)
    }
}

/// A block-distributed array: contiguous storage plus a [`BlockDist`]
/// and one [`ObjectId`] per place-block for access accounting.
#[derive(Debug, Clone)]
pub struct DistArray<T> {
    data: Vec<T>,
    dist: BlockDist,
    /// Object id of place 0's block; block of place p is `base + p`.
    base_obj: ObjectId,
    elem_bytes: u64,
}

impl<T> DistArray<T> {
    /// Wrap `data` in a block distribution over `places` places.
    /// `elem_bytes` is the accounted size of one element; `alloc`
    /// provides this array's object-id range.
    pub fn new(data: Vec<T>, places: u32, elem_bytes: u64, alloc: &mut ObjectAllocator) -> Self {
        let dist = BlockDist::new(data.len(), places);
        let base_obj = alloc.alloc_n(places as u64);
        DistArray {
            data,
            dist,
            base_obj,
            elem_bytes,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying distribution.
    pub fn dist(&self) -> BlockDist {
        self.dist
    }

    /// Home place of element `i`.
    pub fn place_of(&self, i: usize) -> PlaceId {
        self.dist.place_of(i)
    }

    /// Object id of the block homed at place `p`.
    pub fn block_obj(&self, p: PlaceId) -> ObjectId {
        ObjectId(self.base_obj.0 + p.0 as u64)
    }

    /// Accounted byte size of one element.
    pub fn elem_bytes(&self) -> u64 {
        self.elem_bytes
    }

    /// Immutable element access (no accounting — pair with
    /// [`DistArray::access_read`] inside task bodies).
    pub fn get(&self, i: usize) -> &T {
        &self.data[i]
    }

    /// Mutable element access.
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        &mut self.data[i]
    }

    /// Immutable view of all elements.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of all elements.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the array, returning its storage.
    pub fn into_inner(self) -> Vec<T> {
        self.data
    }

    /// The [`Access`] describing a read of element `i`, to feed a
    /// [`crate::task::TaskScope`].
    pub fn access_read(&self, i: usize) -> Access {
        let home = self.place_of(i);
        let block = self.dist.range_of(home);
        Access::read(
            self.block_obj(home),
            (i - block.start) as u64 * self.elem_bytes,
            self.elem_bytes,
            home,
        )
    }

    /// The [`Access`] describing a write of element `i`.
    pub fn access_write(&self, i: usize) -> Access {
        let mut a = self.access_read(i);
        a.kind = crate::task::AccessKind::Write;
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_dist_partitions_exactly() {
        for len in [0usize, 1, 7, 16, 100, 101, 1023] {
            for places in [1u32, 2, 3, 8, 16] {
                let d = BlockDist::new(len, places);
                let mut covered = 0;
                for p in 0..places {
                    let r = d.range_of(PlaceId(p));
                    covered += r.len();
                    for i in r.clone() {
                        assert_eq!(d.place_of(i), PlaceId(p), "len={len} places={places} i={i}");
                    }
                }
                assert_eq!(covered, len, "len={len} places={places}");
            }
        }
    }

    #[test]
    fn block_sizes_differ_by_at_most_one() {
        let d = BlockDist::new(10, 4);
        let sizes: Vec<_> = (0..4).map(|p| d.range_of(PlaceId(p)).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn dist_array_accounting() {
        let mut alloc = ObjectAllocator::new();
        let arr = DistArray::new((0..100u32).collect(), 4, 4, &mut alloc);
        assert_eq!(arr.len(), 100);
        let a = arr.access_read(30);
        assert_eq!(a.home, PlaceId(1));
        assert_eq!(a.obj, arr.block_obj(PlaceId(1)));
        // element 30 is the 5th of place 1's block [25,50)
        assert_eq!(a.offset, 5 * 4);
        let w = arr.access_write(30);
        assert_eq!(w.kind, crate::task::AccessKind::Write);
    }

    #[test]
    fn object_allocator_is_disjoint() {
        let mut alloc = ObjectAllocator::new();
        let a = DistArray::new(vec![0u8; 10], 2, 1, &mut alloc);
        let b = DistArray::new(vec![0u8; 10], 2, 1, &mut alloc);
        assert_ne!(a.block_obj(PlaceId(0)), b.block_obj(PlaceId(0)));
        assert_ne!(a.block_obj(PlaceId(1)), b.block_obj(PlaceId(0)));
    }
}
