//! # distws-core
//!
//! Core vocabulary types for **DistWS**, a reproduction of
//! *"On the Merits of Distributed Work-Stealing on Selective
//! Locality-Aware Tasks"* (Paudel, Tardieu, Amaral — ICPP 2013).
//!
//! The paper's runtime model is X10's APGAS: a cluster is a set of
//! **places** (shared-memory partitions, one per node), each place runs a
//! fixed set of **workers**, and every computation is an asynchronous
//! **activity** (task) spawned *at* a place. DistWS extends this model
//! with a per-task **locality annotation**: tasks are either
//! *locality-sensitive* (must run at their home place) or
//! *locality-flexible* (`@AnyPlaceTask` — may be stolen by a remote
//! place when load is imbalanced).
//!
//! This crate defines the identifiers, task descriptors, cluster
//! topology, cost model, metrics, and the [`TaskScope`] interface that
//! application code programs against. Two execution engines consume
//! these types:
//!
//! * `distws-sim` — a deterministic discrete-event simulator that runs
//!   real task bodies under virtual time (used to regenerate every table
//!   and figure of the paper at full 128-worker scale), and
//! * `distws-runtime` — a real multithreaded work-stealing runtime.

#![forbid(unsafe_code)]

pub mod cost;
pub mod dist;
pub mod finish;
pub mod ids;
pub mod locality;
pub mod metrics;
pub mod rng;
pub mod task;
pub mod topology;
pub mod workload;

pub use cost::CostModel;
pub use dist::{BlockDist, DistArray};
pub use finish::FinishLatch;
pub use ids::{GlobalWorkerId, ObjectId, PlaceId, TaskId, WorkerId};
pub use locality::Locality;
pub use metrics::{
    CacheSummary, FaultSummary, KindCounts, MessageCounts, PercentileSummary, RunPercentiles,
    RunReport, StealCounts, UtilizationSummary,
};
pub use rng::SplitMix64;
pub use task::{Access, AccessKind, Footprint, TaskBody, TaskScope, TaskSpec};
pub use topology::ClusterConfig;
pub use workload::Workload;
