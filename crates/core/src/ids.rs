//! Strongly-typed identifiers for places, workers, tasks and data objects.
//!
//! The paper's cluster is 16 nodes × 8 worker threads; we index places
//! and workers with small newtypes so the scheduler code cannot confuse
//! "worker 3 of place 5" with "global worker 43".

/// Identifier of a *place*: one shared-memory partition of the cluster
/// (one node in the paper's blade server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlaceId(pub u32);

impl PlaceId {
    /// Place index as a `usize`, for direct vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PlaceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of a worker *within* its place (0..workers_per_place).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// Worker index as a `usize`, for direct vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Cluster-wide worker identifier; bijective with `(place, worker)`
/// given the number of workers per place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalWorkerId(pub u32);

impl GlobalWorkerId {
    /// Build a global id from `(place, local worker)` under a fixed
    /// `workers_per_place`.
    #[inline]
    pub fn new(place: PlaceId, worker: WorkerId, workers_per_place: u32) -> Self {
        GlobalWorkerId(place.0 * workers_per_place + worker.0)
    }

    /// The place this worker belongs to.
    #[inline]
    pub fn place(self, workers_per_place: u32) -> PlaceId {
        PlaceId(self.0 / workers_per_place)
    }

    /// The worker's index within its place.
    #[inline]
    pub fn local(self, workers_per_place: u32) -> WorkerId {
        WorkerId(self.0 % workers_per_place)
    }

    /// Global index as a `usize`, for direct vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for GlobalWorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "W{}", self.0)
    }
}

/// Identifier of a spawned task (activity). Unique within one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

/// Identifier of a logical data object (an array block, a mesh region, a
/// cell of the Turing ring, ...). Objects have a *home place*; accessing
/// an object away from its home is a remote reference unless the object
/// was copied along with a migrated task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_worker_roundtrip() {
        let wpp = 8;
        for p in 0..16u32 {
            for w in 0..wpp {
                let g = GlobalWorkerId::new(PlaceId(p), WorkerId(w), wpp);
                assert_eq!(g.place(wpp), PlaceId(p));
                assert_eq!(g.local(wpp), WorkerId(w));
            }
        }
    }

    #[test]
    fn global_worker_is_dense() {
        let wpp = 8;
        let g = GlobalWorkerId::new(PlaceId(15), WorkerId(7), wpp);
        assert_eq!(g.index(), 127);
    }

    #[test]
    fn display_formats() {
        assert_eq!(PlaceId(3).to_string(), "P3");
        assert_eq!(GlobalWorkerId(12).to_string(), "W12");
    }
}
