//! Cluster topology configuration.
//!
//! The paper's platform (§VII) is a 16-node blade server, two quad-core
//! Opterons per node, eight X10 worker threads per place
//! (`X10_NTHREADS=8`), places varied 1..16 so threads = cores.

use crate::ids::{GlobalWorkerId, PlaceId, WorkerId};
use distws_json::impl_to_json;

/// Static shape of the (simulated or real) cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of places (nodes / shared-memory partitions).
    pub places: u32,
    /// Worker threads per place that exist at startup.
    pub workers_per_place: u32,
    /// Upper bound on dynamically-created threads per place. A place
    /// with `workers < max_threads` counts as *under-utilized* for the
    /// DistWS mapping rule (Algorithm 1 line 5). We model the bound but
    /// keep the worker count fixed; `spare_threads` expresses slack.
    pub max_threads_per_place: u32,
    /// Spare (not yet running) thread slots per place; `spares > 0`
    /// marks a place under-utilized in Algorithm 1.
    pub spare_threads: u32,
    /// Consecutive failed steal attempts after which a place declares
    /// itself idle (§VI.B: `n` = workers per place).
    pub idle_threshold: u32,
}

impl_to_json!(ClusterConfig {
    places,
    workers_per_place,
    max_threads_per_place,
    spare_threads,
    idle_threshold,
});

impl ClusterConfig {
    /// The paper's full-scale platform: 16 places × 8 workers = 128.
    pub fn paper() -> Self {
        ClusterConfig::new(16, 8)
    }

    /// A cluster of `places` places with `workers_per_place` workers
    /// each, idle threshold = workers per place as in the paper.
    pub fn new(places: u32, workers_per_place: u32) -> Self {
        assert!(places > 0 && workers_per_place > 0);
        ClusterConfig {
            places,
            workers_per_place,
            max_threads_per_place: workers_per_place,
            spare_threads: 0,
            idle_threshold: workers_per_place,
        }
    }

    /// The paper's Fig. 5 sweep: for a total worker budget `workers`,
    /// use one place up to 8 workers, then places of 8 workers each
    /// (threads = cores on the testbed).
    pub fn for_total_workers(workers: u32) -> Self {
        assert!(workers > 0);
        if workers <= 8 {
            ClusterConfig::new(1, workers)
        } else {
            assert!(
                workers.is_multiple_of(8),
                "worker counts above 8 must be multiples of 8"
            );
            ClusterConfig::new(workers / 8, 8)
        }
    }

    /// Total number of workers in the cluster.
    #[inline]
    pub fn total_workers(&self) -> u32 {
        self.places * self.workers_per_place
    }

    /// Iterate over all place ids.
    pub fn place_ids(&self) -> impl Iterator<Item = PlaceId> {
        (0..self.places).map(PlaceId)
    }

    /// Iterate over all global worker ids.
    pub fn worker_ids(&self) -> impl Iterator<Item = GlobalWorkerId> {
        (0..self.total_workers()).map(GlobalWorkerId)
    }

    /// Global id of worker `w` at place `p`.
    #[inline]
    pub fn global(&self, p: PlaceId, w: WorkerId) -> GlobalWorkerId {
        GlobalWorkerId::new(p, w, self.workers_per_place)
    }

    /// Place that global worker `g` belongs to.
    #[inline]
    pub fn place_of(&self, g: GlobalWorkerId) -> PlaceId {
        g.place(self.workers_per_place)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale() {
        let c = ClusterConfig::paper();
        assert_eq!(c.total_workers(), 128);
        assert_eq!(c.places, 16);
        assert_eq!(c.idle_threshold, 8);
    }

    #[test]
    fn fig5_sweep_shapes() {
        for (w, p, wpp) in [(1, 1, 1), (4, 1, 4), (8, 1, 8), (16, 2, 8), (128, 16, 8)] {
            let c = ClusterConfig::for_total_workers(w);
            assert_eq!((c.places, c.workers_per_place), (p, wpp));
            assert_eq!(c.total_workers(), w);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_ragged_worker_counts() {
        ClusterConfig::for_total_workers(12);
    }

    #[test]
    fn id_iteration_is_dense() {
        let c = ClusterConfig::new(3, 4);
        let ids: Vec<_> = c.worker_ids().collect();
        assert_eq!(ids.len(), 12);
        assert_eq!(c.place_of(GlobalWorkerId(11)), PlaceId(2));
    }
}
