//! Deterministic pseudo-random number generation.
//!
//! Every experiment in the reproduction must be bit-for-bit repeatable,
//! so engines and workload generators use an explicit-seed SplitMix64.
//! (`rand` is used at API boundaries where distributions are handy; the
//! hot scheduler paths use this allocation-free generator directly.)

/// SplitMix64: tiny, fast, full-period 2^64 generator. Good enough for
/// victim selection and synthetic workload shapes; not cryptographic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    /// Uses Lemire's multiply-shift reduction (slight modulo bias is
    /// irrelevant at our bounds ≪ 2^64).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below_usize(i + 1);
            xs.swap(i, j);
        }
    }

    /// Fork a statistically-independent child generator (e.g. one per
    /// worker) from this one.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA5A5_A5A5_DEAD_BEEF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SplitMix64::new(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.below_usize(8)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left slice unchanged"
        );
    }

    #[test]
    fn fork_diverges() {
        let mut a = SplitMix64::new(11);
        let mut f = a.fork();
        assert_ne!(a.next_u64(), f.next_u64());
    }
}
