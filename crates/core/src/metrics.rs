//! Run metrics: everything the paper's evaluation section reports.
//!
//! One [`RunReport`] per (application × scheduler × cluster shape) run
//! carries the raw numbers behind Fig. 3 (steals-to-task ratio), Fig. 5
//! and Fig. 6 (speedups), Fig. 7 (per-node utilization), Table II (L1d
//! miss rates) and Table III (messages transmitted across nodes).

use crate::topology::ClusterConfig;
use distws_json::impl_to_json;

/// Steal-operation counters, split by the tiers of Algorithm 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealCounts {
    /// Successful steals from a co-located worker's private deque.
    pub local_private: u64,
    /// Successful steals from the thief's own place's shared deque.
    pub local_shared: u64,
    /// Successful steals from a *remote* place's shared deque
    /// (distributed steals); tasks, not chunks.
    pub remote: u64,
    /// Steal attempts (any tier) that found nothing.
    pub failed_attempts: u64,
}

impl StealCounts {
    /// All successful steals.
    pub fn total(&self) -> u64 {
        self.local_private + self.local_shared + self.remote
    }

    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, other: &StealCounts) {
        self.local_private += other.local_private;
        self.local_shared += other.local_shared;
        self.remote += other.remote;
        self.failed_attempts += other.failed_attempts;
    }
}

/// Per-message-kind counters, one bucket per `MsgKind`. Used for the
/// fault-injection layer's dropped/duplicated accounting so chaos
/// reports can say *which* traffic class a lossy link hurt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounts {
    /// Steal request probes.
    pub steal_requests: u64,
    /// Replies to steal requests.
    pub steal_replies: u64,
    /// Task-migration payloads.
    pub task_migrations: u64,
    /// Remote data-reference requests.
    pub data_requests: u64,
    /// Remote data-reference replies.
    pub data_replies: u64,
    /// Control traffic.
    pub control: u64,
}

impl KindCounts {
    /// Sum over all kinds.
    pub fn total(&self) -> u64 {
        self.steal_requests
            + self.steal_replies
            + self.task_migrations
            + self.data_requests
            + self.data_replies
            + self.control
    }

    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, other: &KindCounts) {
        self.steal_requests += other.steal_requests;
        self.steal_replies += other.steal_replies;
        self.task_migrations += other.task_migrations;
        self.data_requests += other.data_requests;
        self.data_replies += other.data_replies;
        self.control += other.control;
    }
}

/// Cross-place message counters (Table III). Intra-place scheduling
/// does not send messages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageCounts {
    /// Steal request probes sent to remote places.
    pub steal_requests: u64,
    /// Replies to steal requests (success or failure).
    pub steal_replies: u64,
    /// Task-migration payloads (closure + footprint).
    pub task_migrations: u64,
    /// Remote data-reference requests.
    pub data_requests: u64,
    /// Remote data-reference replies (carrying data).
    pub data_replies: u64,
    /// Control traffic: termination detection, status exchange.
    pub control: u64,
    /// Total payload bytes moved across places.
    pub bytes: u64,
    /// Messages lost to fault injection, per kind. Lost messages are
    /// *also* counted in the per-kind sent counters above — the sender
    /// paid to transmit them; they just never arrived.
    pub dropped: KindCounts,
    /// Messages duplicated in flight by fault injection, per kind.
    /// Duplicates add traffic (and are counted in the sent counters)
    /// but are deduplicated at the receiver.
    pub duplicated: KindCounts,
}

impl MessageCounts {
    /// Total number of messages transmitted across nodes (the paper's
    /// Table III metric).
    pub fn total(&self) -> u64 {
        self.steal_requests
            + self.steal_replies
            + self.task_migrations
            + self.data_requests
            + self.data_replies
            + self.control
    }

    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, other: &MessageCounts) {
        self.steal_requests += other.steal_requests;
        self.steal_replies += other.steal_replies;
        self.task_migrations += other.task_migrations;
        self.data_requests += other.data_requests;
        self.data_replies += other.data_replies;
        self.control += other.control;
        self.bytes += other.bytes;
        self.dropped.merge(&other.dropped);
        self.duplicated.merge(&other.duplicated);
    }
}

/// L1 data-cache accounting (Table II).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSummary {
    /// Total line accesses replayed against the model.
    pub accesses: u64,
    /// Misses among them.
    pub misses: u64,
}

impl CacheSummary {
    /// Miss rate in percent, 0 when no accesses were recorded.
    pub fn miss_rate_pct(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            100.0 * self.misses as f64 / self.accesses as f64
        }
    }

    /// Accumulate another summary into this one.
    pub fn merge(&mut self, other: &CacheSummary) {
        self.accesses += other.accesses;
        self.misses += other.misses;
    }
}

/// Per-place CPU utilization (Fig. 7): fraction of the makespan each
/// place's workers spent executing task bodies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UtilizationSummary {
    /// Utilization per place, each in `[0, 1]`.
    pub per_place: Vec<f64>,
}

impl UtilizationSummary {
    /// The finite per-place samples. A place whose workers never ran
    /// (zero elapsed time) can surface as NaN/∞ when a caller divides
    /// by a zero makespan; every derived statistic ignores such
    /// entries instead of poisoning the whole summary.
    fn finite(&self) -> impl Iterator<Item = f64> + '_ {
        self.per_place.iter().copied().filter(|u| u.is_finite())
    }

    /// Mean utilization across places (0.0 when no place reported a
    /// finite utilization).
    pub fn mean(&self) -> f64 {
        let (sum, n) = self.finite().fold((0.0, 0u32), |(s, n), u| (s + u, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Max − min utilization, the paper's "disparity" (≈35 % for
    /// X10WS). 0.0 for empty, single-place and all-non-finite inputs —
    /// disparity needs at least two comparable places.
    pub fn disparity(&self) -> f64 {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut n = 0u32;
        for u in self.finite() {
            min = min.min(u);
            max = max.max(u);
            n += 1;
        }
        if n < 2 {
            0.0
        } else {
            max - min
        }
    }

    /// Population standard deviation of per-place utilization (over
    /// the finite entries; 0.0 when fewer than two remain).
    pub fn std_dev(&self) -> f64 {
        let n = self.finite().count();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.finite().map(|u| (u - m) * (u - m)).sum::<f64>() / n as f64;
        var.sqrt()
    }
}

/// Percentile summary of one virtual-time distribution, folded out of
/// the trace layer's histograms (all values in ns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PercentileSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest recorded sample.
    pub max: u64,
}

/// The distribution summaries folded into a run: steal latency per
/// tier of Algorithm 1, task granularity and dormancy duration.
/// Engines maintain these unconditionally (they are ordinary run
/// metrics), so traced and untraced runs report identical values;
/// engines without the histogram machinery report all-zero
/// (`count == 0`) summaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunPercentiles {
    /// Latency of successful steals from co-located private deques.
    pub steal_local_private_ns: PercentileSummary,
    /// Latency of successful steals from the local shared deque.
    pub steal_local_shared_ns: PercentileSummary,
    /// Latency of successful remote (distributed) steals.
    pub steal_remote_ns: PercentileSummary,
    /// Per-task execution time (granularity).
    pub task_granularity_ns: PercentileSummary,
    /// Dormant-until-wakeup episode durations.
    pub dormancy_ns: PercentileSummary,
}

/// Fault-injection and recovery counters for one run. All-zero on a
/// fault-free run (the default), so fault-free reports carry an inert
/// block rather than an absent one — JSON diffs stay structural.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Messages lost in flight (drops + partition cuts), all kinds.
    pub msgs_dropped: u64,
    /// Messages duplicated in flight, all kinds.
    pub msgs_duplicated: u64,
    /// Remote steal probes that timed out (request or reply lost, or
    /// the victim was dead).
    pub steal_timeouts: u64,
    /// Backoff retries performed after steal timeouts.
    pub steal_retries: u64,
    /// Reliable-channel retransmissions of task-carrying messages.
    pub retransmissions: u64,
    /// Tasks re-enqueued away from a failed place (fail-stop recovery).
    pub tasks_recovered: u64,
    /// Migrated tasks reclaimed by the victim after a lease expired
    /// (the migration payload was lost in flight).
    pub lease_reclaims: u64,
    /// Places that suffered a fail-stop during the run.
    pub places_failed: u64,
}

impl FaultSummary {
    /// Whether the run saw no fault activity at all.
    pub fn is_clean(&self) -> bool {
        *self == FaultSummary::default()
    }

    /// Accumulate another summary into this one.
    pub fn merge(&mut self, other: &FaultSummary) {
        self.msgs_dropped += other.msgs_dropped;
        self.msgs_duplicated += other.msgs_duplicated;
        self.steal_timeouts += other.steal_timeouts;
        self.steal_retries += other.steal_retries;
        self.retransmissions += other.retransmissions;
        self.tasks_recovered += other.tasks_recovered;
        self.lease_reclaims += other.lease_reclaims;
        self.places_failed += other.places_failed;
    }
}

/// Complete result of one run: application outcome metrics under one
/// scheduler on one cluster shape.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scheduler name (`"X10WS"`, `"DistWS"`, `"DistWS-NS"`, ...).
    pub scheduler: String,
    /// Application name.
    pub app: String,
    /// Cluster shape of the run.
    pub config: ClusterConfig,
    /// Virtual-time makespan of the run in ns.
    pub makespan_ns: u64,
    /// Sum of task-body compute time in ns (= sequential execution
    /// time of the same task graph on one worker, ignoring scheduling).
    pub total_work_ns: u64,
    /// Tasks spawned during the run.
    pub tasks_spawned: u64,
    /// Tasks executed to completion (must equal `tasks_spawned`).
    pub tasks_executed: u64,
    /// Steal counters.
    pub steals: StealCounts,
    /// Cross-place message counters.
    pub messages: MessageCounts,
    /// Cache model summary.
    pub cache: CacheSummary,
    /// Per-place utilization.
    pub utilization: UtilizationSummary,
    /// Remote data references performed by tasks running away from
    /// their data (0 under X10WS, the cost DistWS-NS pays).
    pub remote_refs: u64,
    /// Latency/granularity/dormancy percentile summaries from the
    /// trace layer (all-zero when the run traced into a null sink).
    pub percentiles: RunPercentiles,
    /// Fault-injection and recovery counters (all-zero when the run
    /// was fault-free).
    pub faults: FaultSummary,
}

impl_to_json!(StealCounts {
    local_private,
    local_shared,
    remote,
    failed_attempts
});
impl_to_json!(KindCounts {
    steal_requests,
    steal_replies,
    task_migrations,
    data_requests,
    data_replies,
    control,
});
impl_to_json!(MessageCounts {
    steal_requests,
    steal_replies,
    task_migrations,
    data_requests,
    data_replies,
    control,
    bytes,
    dropped,
    duplicated,
});
impl_to_json!(FaultSummary {
    msgs_dropped,
    msgs_duplicated,
    steal_timeouts,
    steal_retries,
    retransmissions,
    tasks_recovered,
    lease_reclaims,
    places_failed,
});
impl_to_json!(CacheSummary { accesses, misses });
impl_to_json!(UtilizationSummary { per_place });
impl_to_json!(PercentileSummary {
    count,
    p50,
    p95,
    p99,
    max
});
impl_to_json!(RunPercentiles {
    steal_local_private_ns,
    steal_local_shared_ns,
    steal_remote_ns,
    task_granularity_ns,
    dormancy_ns,
});
impl_to_json!(RunReport {
    scheduler,
    app,
    config,
    makespan_ns,
    total_work_ns,
    tasks_spawned,
    tasks_executed,
    steals,
    messages,
    cache,
    utilization,
    remote_refs,
    percentiles,
    faults,
});

impl RunReport {
    /// Speedup relative to a sequential execution time.
    pub fn speedup_vs(&self, sequential_ns: u64) -> f64 {
        sequential_ns as f64 / self.makespan_ns.max(1) as f64
    }

    /// Self-relative speedup: total work divided by makespan. Bounded
    /// above by the worker count.
    pub fn self_speedup(&self) -> f64 {
        self.total_work_ns as f64 / self.makespan_ns.max(1) as f64
    }

    /// Fig. 3 metric: successful steals / tasks spawned.
    pub fn steals_to_task_ratio(&self) -> f64 {
        if self.tasks_spawned == 0 {
            0.0
        } else {
            self.steals.total() as f64 / self.tasks_spawned as f64
        }
    }

    /// Mean task granularity in ns (Table I metric).
    pub fn mean_task_granularity_ns(&self) -> f64 {
        if self.tasks_executed == 0 {
            0.0
        } else {
            self.total_work_ns as f64 / self.tasks_executed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            scheduler: "DistWS".into(),
            app: "test".into(),
            config: ClusterConfig::new(2, 2),
            makespan_ns: 1_000,
            total_work_ns: 3_000,
            tasks_spawned: 10,
            tasks_executed: 10,
            steals: StealCounts {
                local_private: 2,
                local_shared: 1,
                remote: 1,
                failed_attempts: 5,
            },
            messages: MessageCounts::default(),
            cache: CacheSummary {
                accesses: 200,
                misses: 20,
            },
            utilization: UtilizationSummary {
                per_place: vec![0.9, 0.5],
            },
            remote_refs: 0,
            percentiles: RunPercentiles::default(),
            faults: FaultSummary::default(),
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert!((r.self_speedup() - 3.0).abs() < 1e-9);
        assert!((r.steals_to_task_ratio() - 0.4).abs() < 1e-9);
        assert!((r.cache.miss_rate_pct() - 10.0).abs() < 1e-9);
        assert!((r.utilization.disparity() - 0.4).abs() < 1e-9);
        assert!((r.utilization.mean() - 0.7).abs() < 1e-9);
        assert!((r.mean_task_granularity_ns() - 300.0).abs() < 1e-9);
        assert!((r.speedup_vs(2_000) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn counters_merge() {
        let mut a = StealCounts {
            local_private: 1,
            local_shared: 2,
            remote: 3,
            failed_attempts: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.total(), 12);
        let mut m = MessageCounts {
            steal_requests: 1,
            bytes: 10,
            ..Default::default()
        };
        m.merge(&MessageCounts {
            steal_replies: 2,
            bytes: 5,
            ..Default::default()
        });
        assert_eq!(m.total(), 3);
        assert_eq!(m.bytes, 15);
    }

    #[test]
    fn empty_utilization_is_safe() {
        let u = UtilizationSummary::default();
        assert_eq!(u.mean(), 0.0);
        assert_eq!(u.disparity(), 0.0);
        assert_eq!(u.std_dev(), 0.0);
    }

    #[test]
    fn single_place_utilization_has_no_disparity() {
        let u = UtilizationSummary {
            per_place: vec![0.7],
        };
        assert!((u.mean() - 0.7).abs() < 1e-12);
        assert_eq!(
            u.disparity(),
            0.0,
            "one place cannot be disparate with itself"
        );
        assert_eq!(u.std_dev(), 0.0);
    }

    #[test]
    fn non_finite_entries_are_ignored() {
        // A place with zero elapsed time divides to NaN (or ∞ with a
        // zero makespan); statistics must skip it, not become NaN.
        let u = UtilizationSummary {
            per_place: vec![0.8, f64::NAN, 0.2, f64::INFINITY],
        };
        assert!((u.mean() - 0.5).abs() < 1e-12);
        assert!((u.disparity() - 0.6).abs() < 1e-12);
        assert!((u.std_dev() - 0.3).abs() < 1e-12);
        let all_bad = UtilizationSummary {
            per_place: vec![f64::NAN, f64::NAN],
        };
        assert_eq!(all_bad.mean(), 0.0);
        assert_eq!(all_bad.disparity(), 0.0);
        assert_eq!(all_bad.std_dev(), 0.0);
    }

    #[test]
    fn report_is_serializable() {
        let body = distws_json::to_string_pretty(&report());
        assert!(body.contains("\"makespan_ns\": 1000"));
        assert!(body.contains("\"percentiles\""));
        // Same report twice ⇒ byte-identical JSON (regression-oracle
        // property the trace layer depends on).
        assert_eq!(body, distws_json::to_string_pretty(&report()));
    }

    #[test]
    fn percentile_summaries_default_to_zero() {
        let p = RunPercentiles::default();
        assert_eq!(p.task_granularity_ns.count, 0);
        assert_eq!(p.steal_remote_ns.p99, 0);
    }

    #[test]
    fn fault_summary_defaults_clean_and_merges() {
        let mut f = FaultSummary::default();
        assert!(f.is_clean());
        f.merge(&FaultSummary {
            msgs_dropped: 3,
            steal_timeouts: 2,
            tasks_recovered: 1,
            ..Default::default()
        });
        f.merge(&FaultSummary {
            msgs_dropped: 1,
            places_failed: 1,
            ..Default::default()
        });
        assert!(!f.is_clean());
        assert_eq!(f.msgs_dropped, 4);
        assert_eq!(f.steal_timeouts, 2);
        assert_eq!(f.places_failed, 1);
    }

    #[test]
    fn dropped_and_duplicated_ride_along_in_message_counts() {
        let mut m = MessageCounts {
            steal_requests: 5,
            ..MessageCounts::default()
        };
        m.dropped.steal_requests = 2;
        m.duplicated.task_migrations = 1;
        // total() counts sent messages only; drops are a subset of
        // sends and duplicates extra traffic tracked separately.
        assert_eq!(m.total(), 5);
        assert_eq!(m.dropped.total(), 2);
        assert_eq!(m.duplicated.total(), 1);
        let mut other = MessageCounts::default();
        other.dropped.control = 7;
        m.merge(&other);
        assert_eq!(m.dropped.total(), 9);
        let body = distws_json::to_string_pretty(&m);
        assert!(body.contains("\"dropped\""));
        assert!(body.contains("\"duplicated\""));
    }
}
