//! Run metrics: everything the paper's evaluation section reports.
//!
//! One [`RunReport`] per (application × scheduler × cluster shape) run
//! carries the raw numbers behind Fig. 3 (steals-to-task ratio), Fig. 5
//! and Fig. 6 (speedups), Fig. 7 (per-node utilization), Table II (L1d
//! miss rates) and Table III (messages transmitted across nodes).

use crate::topology::ClusterConfig;
use serde::{Deserialize, Serialize};

/// Steal-operation counters, split by the tiers of Algorithm 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StealCounts {
    /// Successful steals from a co-located worker's private deque.
    pub local_private: u64,
    /// Successful steals from the thief's own place's shared deque.
    pub local_shared: u64,
    /// Successful steals from a *remote* place's shared deque
    /// (distributed steals); tasks, not chunks.
    pub remote: u64,
    /// Steal attempts (any tier) that found nothing.
    pub failed_attempts: u64,
}

impl StealCounts {
    /// All successful steals.
    pub fn total(&self) -> u64 {
        self.local_private + self.local_shared + self.remote
    }

    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, other: &StealCounts) {
        self.local_private += other.local_private;
        self.local_shared += other.local_shared;
        self.remote += other.remote;
        self.failed_attempts += other.failed_attempts;
    }
}

/// Cross-place message counters (Table III). Intra-place scheduling
/// does not send messages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageCounts {
    /// Steal request probes sent to remote places.
    pub steal_requests: u64,
    /// Replies to steal requests (success or failure).
    pub steal_replies: u64,
    /// Task-migration payloads (closure + footprint).
    pub task_migrations: u64,
    /// Remote data-reference requests.
    pub data_requests: u64,
    /// Remote data-reference replies (carrying data).
    pub data_replies: u64,
    /// Control traffic: termination detection, status exchange.
    pub control: u64,
    /// Total payload bytes moved across places.
    pub bytes: u64,
}

impl MessageCounts {
    /// Total number of messages transmitted across nodes (the paper's
    /// Table III metric).
    pub fn total(&self) -> u64 {
        self.steal_requests
            + self.steal_replies
            + self.task_migrations
            + self.data_requests
            + self.data_replies
            + self.control
    }

    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, other: &MessageCounts) {
        self.steal_requests += other.steal_requests;
        self.steal_replies += other.steal_replies;
        self.task_migrations += other.task_migrations;
        self.data_requests += other.data_requests;
        self.data_replies += other.data_replies;
        self.control += other.control;
        self.bytes += other.bytes;
    }
}

/// L1 data-cache accounting (Table II).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheSummary {
    /// Total line accesses replayed against the model.
    pub accesses: u64,
    /// Misses among them.
    pub misses: u64,
}

impl CacheSummary {
    /// Miss rate in percent, 0 when no accesses were recorded.
    pub fn miss_rate_pct(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            100.0 * self.misses as f64 / self.accesses as f64
        }
    }

    /// Accumulate another summary into this one.
    pub fn merge(&mut self, other: &CacheSummary) {
        self.accesses += other.accesses;
        self.misses += other.misses;
    }
}

/// Per-place CPU utilization (Fig. 7): fraction of the makespan each
/// place's workers spent executing task bodies.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSummary {
    /// Utilization per place, each in `[0, 1]`.
    pub per_place: Vec<f64>,
}

impl UtilizationSummary {
    /// Mean utilization across places.
    pub fn mean(&self) -> f64 {
        if self.per_place.is_empty() {
            return 0.0;
        }
        self.per_place.iter().sum::<f64>() / self.per_place.len() as f64
    }

    /// Max − min utilization, the paper's "disparity" (≈35 % for X10WS).
    pub fn disparity(&self) -> f64 {
        let max = self.per_place.iter().cloned().fold(f64::NAN, f64::max);
        let min = self.per_place.iter().cloned().fold(f64::NAN, f64::min);
        if max.is_nan() {
            0.0
        } else {
            max - min
        }
    }

    /// Population standard deviation of per-place utilization.
    pub fn std_dev(&self) -> f64 {
        if self.per_place.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        let var = self
            .per_place
            .iter()
            .map(|u| (u - m) * (u - m))
            .sum::<f64>()
            / self.per_place.len() as f64;
        var.sqrt()
    }
}

/// Complete result of one run: application outcome metrics under one
/// scheduler on one cluster shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Scheduler name (`"X10WS"`, `"DistWS"`, `"DistWS-NS"`, ...).
    pub scheduler: String,
    /// Application name.
    pub app: String,
    /// Cluster shape of the run.
    pub config: ClusterConfig,
    /// Virtual-time makespan of the run in ns.
    pub makespan_ns: u64,
    /// Sum of task-body compute time in ns (= sequential execution
    /// time of the same task graph on one worker, ignoring scheduling).
    pub total_work_ns: u64,
    /// Tasks spawned during the run.
    pub tasks_spawned: u64,
    /// Tasks executed to completion (must equal `tasks_spawned`).
    pub tasks_executed: u64,
    /// Steal counters.
    pub steals: StealCounts,
    /// Cross-place message counters.
    pub messages: MessageCounts,
    /// Cache model summary.
    pub cache: CacheSummary,
    /// Per-place utilization.
    pub utilization: UtilizationSummary,
    /// Remote data references performed by tasks running away from
    /// their data (0 under X10WS, the cost DistWS-NS pays).
    pub remote_refs: u64,
}

impl RunReport {
    /// Speedup relative to a sequential execution time.
    pub fn speedup_vs(&self, sequential_ns: u64) -> f64 {
        sequential_ns as f64 / self.makespan_ns.max(1) as f64
    }

    /// Self-relative speedup: total work divided by makespan. Bounded
    /// above by the worker count.
    pub fn self_speedup(&self) -> f64 {
        self.total_work_ns as f64 / self.makespan_ns.max(1) as f64
    }

    /// Fig. 3 metric: successful steals / tasks spawned.
    pub fn steals_to_task_ratio(&self) -> f64 {
        if self.tasks_spawned == 0 {
            0.0
        } else {
            self.steals.total() as f64 / self.tasks_spawned as f64
        }
    }

    /// Mean task granularity in ns (Table I metric).
    pub fn mean_task_granularity_ns(&self) -> f64 {
        if self.tasks_executed == 0 {
            0.0
        } else {
            self.total_work_ns as f64 / self.tasks_executed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            scheduler: "DistWS".into(),
            app: "test".into(),
            config: ClusterConfig::new(2, 2),
            makespan_ns: 1_000,
            total_work_ns: 3_000,
            tasks_spawned: 10,
            tasks_executed: 10,
            steals: StealCounts { local_private: 2, local_shared: 1, remote: 1, failed_attempts: 5 },
            messages: MessageCounts::default(),
            cache: CacheSummary { accesses: 200, misses: 20 },
            utilization: UtilizationSummary { per_place: vec![0.9, 0.5] },
            remote_refs: 0,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert!((r.self_speedup() - 3.0).abs() < 1e-9);
        assert!((r.steals_to_task_ratio() - 0.4).abs() < 1e-9);
        assert!((r.cache.miss_rate_pct() - 10.0).abs() < 1e-9);
        assert!((r.utilization.disparity() - 0.4).abs() < 1e-9);
        assert!((r.utilization.mean() - 0.7).abs() < 1e-9);
        assert!((r.mean_task_granularity_ns() - 300.0).abs() < 1e-9);
        assert!((r.speedup_vs(2_000) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn counters_merge() {
        let mut a = StealCounts { local_private: 1, local_shared: 2, remote: 3, failed_attempts: 4 };
        a.merge(&a.clone());
        assert_eq!(a.total(), 12);
        let mut m = MessageCounts { steal_requests: 1, bytes: 10, ..Default::default() };
        m.merge(&MessageCounts { steal_replies: 2, bytes: 5, ..Default::default() });
        assert_eq!(m.total(), 3);
        assert_eq!(m.bytes, 15);
    }

    #[test]
    fn empty_utilization_is_safe() {
        let u = UtilizationSummary::default();
        assert_eq!(u.mean(), 0.0);
        assert_eq!(u.disparity(), 0.0);
        assert_eq!(u.std_dev(), 0.0);
    }

    #[test]
    fn report_is_serializable() {
        // serde_json lives downstream; here we only assert the derive
        // produced a Serialize implementation.
        fn assert_ser<T: serde::Serialize>(_: &T) {}
        assert_ser(&report());
    }
}
