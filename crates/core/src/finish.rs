//! The X10 `finish` analogue: completion latches.
//!
//! X10's `finish { ... }` blocks until all transitively spawned
//! activities terminate. Our engines are event-driven rather than
//! blocking, so phases are expressed with a [`FinishLatch`]: the
//! application registers `n` child tasks plus one *continuation* task;
//! when the engine observes the `n`-th completion it releases the
//! continuation at that task's finish time. Latches may be registered
//! on dynamically spawned children too ([`FinishLatch::add`]), which
//! covers X10's transitive semantics for the patterns our applications
//! use (iterative phase barriers, divide-and-conquer joins).

use crate::task::TaskSpec;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A countdown latch that releases a continuation task when the last
/// registered child completes.
pub struct FinishLatch {
    remaining: AtomicUsize,
    continuation: Mutex<Option<TaskSpec>>,
}

impl FinishLatch {
    /// A latch expecting `children` completions before releasing
    /// `continuation`.
    pub fn new(children: usize, continuation: TaskSpec) -> Arc<Self> {
        Arc::new(FinishLatch {
            remaining: AtomicUsize::new(children),
            continuation: Mutex::new(Some(continuation)),
        })
    }

    /// A latch with no continuation: purely a counter (useful in tests
    /// and for top-level termination).
    pub fn bare(children: usize) -> Arc<Self> {
        Arc::new(FinishLatch {
            remaining: AtomicUsize::new(children),
            continuation: Mutex::new(None),
        })
    }

    /// Register `k` additional children (must be called before the
    /// latch could otherwise reach zero — i.e. from a task that is
    /// itself registered on this latch, before it completes).
    pub fn add(&self, k: usize) {
        self.remaining.fetch_add(k, Ordering::AcqRel);
    }

    /// Engine hook: record one child completion. Returns the
    /// continuation when this was the last outstanding child.
    pub fn complete_one(&self) -> Option<TaskSpec> {
        let prev = self.remaining.fetch_sub(1, Ordering::AcqRel);
        assert!(
            prev > 0,
            "FinishLatch completed more children than registered"
        );
        if prev == 1 {
            self.continuation.lock().expect("latch poisoned").take()
        } else {
            None
        }
    }

    /// Children still outstanding.
    pub fn pending(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for FinishLatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FinishLatch")
            .field("remaining", &self.pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Locality, PlaceId};

    fn noop() -> TaskSpec {
        TaskSpec::new(PlaceId(0), Locality::Sensitive, 0, "noop", |_| {})
    }

    #[test]
    fn releases_on_last_completion() {
        let latch = FinishLatch::new(3, noop());
        assert!(latch.complete_one().is_none());
        assert!(latch.complete_one().is_none());
        let cont = latch.complete_one();
        assert!(cont.is_some());
        assert_eq!(latch.pending(), 0);
    }

    #[test]
    fn dynamic_registration_defers_release() {
        let latch = FinishLatch::new(1, noop());
        latch.add(1);
        assert!(latch.complete_one().is_none());
        assert!(latch.complete_one().is_some());
    }

    #[test]
    #[should_panic]
    fn over_completion_panics() {
        let latch = FinishLatch::bare(1);
        latch.complete_one();
        latch.complete_one();
    }

    #[test]
    fn bare_latch_never_yields_continuation() {
        let latch = FinishLatch::bare(2);
        assert!(latch.complete_one().is_none());
        assert!(latch.complete_one().is_none());
    }
}
