//! The paper's central classification: locality-*sensitive* vs
//! locality-*flexible* tasks (§II).
//!
//! A task qualifies as **flexible** (annotated `@AnyPlaceTask` in the
//! paper's X10 prototype) if stealing it across nodes can pay for
//! itself: it encapsulates its data, is coarse enough to keep a thief
//! node busy, or is already local to the thief. Everything else is
//! **sensitive** and must execute at its programmer-specified place.

/// Locality classification of a task, supplied by the application
/// (the paper's `@AnyPlaceTask` annotation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Locality {
    /// The task bears strong affinity to its home place; it may be
    /// stolen only by co-located workers, never across places.
    Sensitive,
    /// The task may be migrated to any place by distributed stealing
    /// (`@AnyPlaceTask`).
    Flexible,
}

impl Locality {
    /// Whether the task may be stolen by a worker in a *different* place.
    #[inline]
    pub fn remotely_stealable(self) -> bool {
        matches!(self, Locality::Flexible)
    }
}

impl std::fmt::Display for Locality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Locality::Sensitive => write!(f, "sensitive"),
            Locality::Flexible => write!(f, "flexible"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flexibility() {
        assert!(Locality::Flexible.remotely_stealable());
        assert!(!Locality::Sensitive.remotely_stealable());
    }
}
