//! The [`Workload`] trait: how applications hand their root tasks to an
//! execution engine.
//!
//! Implementations live in `distws-apps`; both the discrete-event
//! simulator and the threaded runtime accept any `Workload`, so every
//! application runs unmodified under every scheduler and engine.

use crate::task::TaskSpec;
use crate::topology::ClusterConfig;

/// A runnable application workload.
pub trait Workload {
    /// Display name used in reports (e.g. `"DMG"`, `"Quicksort"`).
    fn name(&self) -> String;

    /// Produce the root tasks for a run on the given cluster shape.
    /// Roots typically distribute initial data/work across places —
    /// e.g. the initial Delaunay triangles, the cells of the Turing
    /// ring — exactly as the paper's applications do.
    ///
    /// Called once per run; the workload may capture shared state in
    /// the returned closures (via `Arc`) to validate results afterwards.
    fn roots(&self, cfg: &ClusterConfig) -> Vec<TaskSpec>;

    /// Optional post-run validation hook: return `Err` with a message
    /// if the computation produced a wrong answer. Engines call this
    /// after the run completes; tests assert on it.
    fn validate(&self) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Locality, PlaceId};

    struct Two;
    impl Workload for Two {
        fn name(&self) -> String {
            "two".into()
        }
        fn roots(&self, _cfg: &ClusterConfig) -> Vec<TaskSpec> {
            (0..2)
                .map(|_| TaskSpec::new(PlaceId(0), Locality::Flexible, 10, "r", |_| {}))
                .collect()
        }
    }

    #[test]
    fn default_validation_passes() {
        let w = Two;
        assert_eq!(w.roots(&ClusterConfig::new(1, 1)).len(), 2);
        assert!(w.validate().is_ok());
    }
}
