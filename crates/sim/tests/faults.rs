//! Fault-injection integration tests: exactly-once execution under
//! lossy networks and place failures, deterministic chaos, and the
//! byte-identity guarantee of the empty fault plan.

use distws_core::rng::SplitMix64;
use distws_core::{ClusterConfig, Locality, PlaceId, TaskSpec};
use distws_netsim::{FaultPlan, LinkFault};
use distws_sched::{AdaptiveWs, DistWs, DistWsNs, LifelineWs, Policy, RandomWs, X10Ws};
use distws_sim::{FaultConfig, SimConfig, Simulation};
use distws_trace::{TraceEvent, TraceEventKind, TraceSink};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn all_policies() -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(X10Ws),
        Box::new(DistWs::default()),
        Box::new(DistWsNs::default()),
        Box::new(RandomWs),
        Box::new(LifelineWs::default()),
        Box::new(AdaptiveWs::default()),
    ]
}

/// A schedule-independent task graph: one root per place, each
/// spawning `kids` flexible children. Every body bumps the counter, so
/// `counter == places * (1 + kids)` proves each body ran exactly once
/// regardless of where recovery re-homed it.
fn spread_roots(places: u32, kids: usize, counter: &Arc<AtomicU64>) -> Vec<TaskSpec> {
    (0..places)
        .map(|p| {
            let c0 = Arc::clone(counter);
            TaskSpec::new(PlaceId(p), Locality::Sensitive, 20_000, "root", move |s| {
                c0.fetch_add(1, Ordering::Relaxed);
                for _ in 0..kids {
                    let c = Arc::clone(&c0);
                    s.spawn(TaskSpec::new(
                        s.here(),
                        Locality::Flexible,
                        40_000,
                        "kid",
                        move |_| {
                            c.fetch_add(1, Ordering::Relaxed);
                        },
                    ));
                }
            })
        })
        .collect()
}

/// Counts how many times each task id started — the ground truth for
/// exactly-once (a recovered task may arrive twice, but must run once).
#[derive(Default)]
struct StartSink {
    starts: HashMap<u64, u32>,
    saw_fail: bool,
    saw_recover: bool,
    saw_dropped_msg: bool,
}

impl TraceSink for StartSink {
    fn record(&mut self, ev: TraceEvent) {
        match ev.kind {
            TraceEventKind::TaskStart { task } => {
                *self.starts.entry(task.0).or_default() += 1;
            }
            TraceEventKind::PlaceFail => self.saw_fail = true,
            TraceEventKind::TaskRecover { .. } => self.saw_recover = true,
            TraceEventKind::Message { dropped: true, .. } => self.saw_dropped_msg = true,
            _ => {}
        }
    }
}

fn assert_exactly_once(sink: &StartSink, label: &str) {
    for (task, n) in &sink.starts {
        assert_eq!(*n, 1, "{label}: task {task} started {n} times");
    }
}

#[test]
fn exactly_once_under_random_fault_plans_for_all_policies() {
    // Property loop in the house style: a seeded stream generates the
    // fault plans; every policy must execute every task exactly once
    // under each of them.
    let mut rng = SplitMix64::new(0xC4A05);
    for round in 0..6 {
        let drop_p = (rng.below(6) as f64) / 100.0; // 0–5 % loss
        let dup_p = (rng.below(3) as f64) / 100.0;
        let jitter = rng.below(3_000);
        let kill_place = 1 + rng.below(3) as u32; // never place 0
        let kill_at = 50_000 + rng.below(400_000);
        let with_kill = rng.below(2) == 0;
        for policy in all_policies() {
            let name = policy.name().to_string();
            let label = format!("round {round} / {name}");
            let counter = Arc::new(AtomicU64::new(0));
            let roots = spread_roots(4, 10, &counter);
            let mut cfg = SimConfig::new(ClusterConfig::new(4, 2));
            cfg.faults = FaultConfig {
                net: FaultPlan {
                    default: LinkFault {
                        drop_p,
                        dup_p,
                        jitter_ns: jitter,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                kills: if with_kill {
                    vec![(PlaceId(kill_place), kill_at)]
                } else {
                    Vec::new()
                },
                seed: rng.next_u64(),
                ..Default::default()
            };
            let mut sink = StartSink::default();
            let mut sim = Simulation::with_config(cfg, policy);
            let (report, _) = sim.run_roots_traced("prop", roots, &mut sink);
            assert_eq!(
                counter.load(Ordering::Relaxed),
                4 * 11,
                "{label}: a task body was lost or re-run"
            );
            assert_eq!(report.tasks_spawned, report.tasks_executed, "{label}");
            assert_exactly_once(&sink, &label);
            if with_kill {
                assert_eq!(report.faults.places_failed, 1, "{label}");
            }
        }
    }
}

#[test]
fn fail_stop_recovers_queued_tasks() {
    // Kill place 2 while its deques still hold work: the queued tasks
    // must re-arrive elsewhere and run exactly once.
    let counter = Arc::new(AtomicU64::new(0));
    let roots = spread_roots(4, 16, &counter);
    let mut cfg = SimConfig::new(ClusterConfig::new(4, 2));
    cfg.faults = FaultConfig {
        kills: vec![(PlaceId(2), 100_000)],
        ..Default::default()
    };
    let mut sink = StartSink::default();
    let mut sim = Simulation::with_config(cfg, Box::new(DistWs::default()));
    let (report, _) = sim.run_roots_traced("kill", roots, &mut sink);
    assert_eq!(counter.load(Ordering::Relaxed), 4 * 17);
    assert_eq!(report.faults.places_failed, 1);
    assert!(
        report.faults.tasks_recovered > 0,
        "the kill at 100 µs must strand queued tasks: {:?}",
        report.faults
    );
    assert!(sink.saw_fail, "PlaceFail must be traced");
    assert!(sink.saw_recover, "TaskRecover must be traced");
    assert_exactly_once(&sink, "kill");
}

#[test]
fn restarted_place_rejoins_and_takes_work() {
    let counter = Arc::new(AtomicU64::new(0));
    // Long tail of flexible work so the restarted place has something
    // to steal when it comes back.
    let roots = spread_roots(4, 40, &counter);
    let mut cfg = SimConfig::new(ClusterConfig::new(4, 2));
    cfg.faults = FaultConfig {
        kills: vec![(PlaceId(1), 80_000)],
        restarts: vec![(PlaceId(1), 300_000)],
        ..Default::default()
    };
    let mut sim = Simulation::with_config(cfg, Box::new(DistWs::default()));
    let report = sim.run_roots("restart", roots);
    assert_eq!(counter.load(Ordering::Relaxed), 4 * 41);
    assert_eq!(report.tasks_spawned, report.tasks_executed);
    assert_eq!(report.faults.places_failed, 1);
}

#[test]
fn restart_while_workers_busy_preserves_in_flight_tasks() {
    // Kill/restart gap (50 µs → 70 µs) far shorter than the kids'
    // 300 µs bodies, so every worker on place 1 is still Busy with a
    // pre-kill task when the restart lands. Those workers must rejoin
    // via their own Free events: a forced wake would overwrite
    // `running`/`finishing_latch` and the shared latch below would
    // never release its continuation.
    use distws_core::FinishLatch;

    let counter = Arc::new(AtomicU64::new(0));
    let kids_per_root = 10;
    let cc = Arc::clone(&counter);
    let cont = TaskSpec::new(PlaceId(0), Locality::Flexible, 1_000, "cont", move |_| {
        cc.fetch_add(1, Ordering::Relaxed);
    });
    let latch = FinishLatch::new(2 * kids_per_root, cont);
    let roots: Vec<TaskSpec> = (0..2u32)
        .map(|p| {
            let c0 = Arc::clone(&counter);
            let l0 = Arc::clone(&latch);
            TaskSpec::new(PlaceId(p), Locality::Sensitive, 20_000, "root", move |s| {
                c0.fetch_add(1, Ordering::Relaxed);
                for _ in 0..kids_per_root {
                    let c = Arc::clone(&c0);
                    s.spawn(
                        TaskSpec::new(s.here(), Locality::Flexible, 300_000, "kid", move |_| {
                            c.fetch_add(1, Ordering::Relaxed);
                        })
                        .with_latch(Arc::clone(&l0)),
                    );
                }
            })
        })
        .collect();
    let mut cfg = SimConfig::new(ClusterConfig::new(2, 2));
    cfg.faults = FaultConfig {
        kills: vec![(PlaceId(1), 50_000)],
        restarts: vec![(PlaceId(1), 70_000)],
        ..Default::default()
    };
    let mut sink = StartSink::default();
    let mut sim = Simulation::with_config(cfg, Box::new(DistWs::default()));
    let (report, _) = sim.run_roots_traced("busy-restart", roots, &mut sink);
    assert_eq!(
        counter.load(Ordering::Relaxed),
        2 + 2 * kids_per_root as u64 + 1,
        "a body was lost or the finish continuation never fired"
    );
    assert_eq!(latch.pending(), 0, "latch left with outstanding children");
    assert_eq!(report.tasks_spawned, report.tasks_executed);
    assert_exactly_once(&sink, "busy-restart");
}

#[test]
fn lossy_network_terminates_and_reports_drops() {
    for policy in all_policies() {
        let name = policy.name().to_string();
        let counter = Arc::new(AtomicU64::new(0));
        let roots = spread_roots(4, 8, &counter);
        let mut cfg = SimConfig::new(ClusterConfig::new(4, 2));
        cfg.faults = FaultConfig {
            net: FaultPlan::uniform_loss(0.05),
            ..Default::default()
        };
        let mut sink = StartSink::default();
        let mut sim = Simulation::with_config(cfg, policy);
        let (report, _) = sim.run_roots_traced("lossy", roots, &mut sink);
        assert_eq!(counter.load(Ordering::Relaxed), 4 * 9, "{name}");
        assert_exactly_once(&sink, &name);
        // Root launches to places 1–3 cross the wire under every
        // policy, so 5% loss is observable in the report and trace.
        assert!(report.faults.msgs_dropped > 0, "{name}: no drops counted");
        assert!(
            sink.saw_dropped_msg,
            "{name}: dropped messages must be traced"
        );
        assert_eq!(
            report.faults.msgs_dropped,
            report.messages.dropped.total(),
            "{name}: summary and per-kind counters disagree"
        );
    }
}

/// The retry budget bounds how hard a thief hammers one victim: the
/// original probe plus `budget` backoff retries, then it moves on. A
/// killed place answers nothing, so every probe against it times out
/// and the full retry ladder is exercised — yet no `StealTimeout`
/// event may ever carry an attempt number past `budget + 1`.
#[test]
fn retry_budget_bounds_timeout_attempts() {
    #[derive(Default)]
    struct TimeoutSink {
        timeouts: u32,
        max_attempt: u32,
    }
    impl TraceSink for TimeoutSink {
        fn record(&mut self, ev: TraceEvent) {
            if let TraceEventKind::StealTimeout { attempt, .. } = ev.kind {
                self.timeouts += 1;
                self.max_attempt = self.max_attempt.max(attempt);
            }
        }
    }
    for budget in [0u32, 2, 3] {
        let counter = Arc::new(AtomicU64::new(0));
        let roots = spread_roots(3, 10, &counter);
        let mut cfg = SimConfig::new(ClusterConfig::new(3, 2));
        cfg.faults = FaultConfig {
            kills: vec![(PlaceId(2), 50_000)],
            retry: distws_sched::RetryPolicy {
                budget,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut sink = TimeoutSink::default();
        let mut sim = Simulation::with_config(cfg, Box::new(DistWs::default()));
        let (report, _) = sim.run_roots_traced("budget", roots, &mut sink);
        assert!(
            sink.timeouts > 0,
            "budget {budget}: dead victim never probed"
        );
        assert!(
            sink.max_attempt <= budget + 1,
            "budget {budget}: a thief kept retrying past exhaustion \
             (max attempt {})",
            sink.max_attempt
        );
        assert_eq!(
            sink.max_attempt,
            budget + 1,
            "budget {budget}: the ladder never ran to exhaustion \
             against a dead place"
        );
        assert_eq!(
            report.faults.steal_timeouts as u32, sink.timeouts,
            "budget {budget}: counter and trace disagree"
        );
    }
}

#[test]
fn slow_place_stretches_the_run() {
    let mk = |factor: f64| {
        let counter = Arc::new(AtomicU64::new(0));
        let roots = spread_roots(2, 20, &counter);
        let mut cfg = SimConfig::new(ClusterConfig::new(2, 2));
        cfg.faults = FaultConfig {
            slow: vec![(PlaceId(1), factor)],
            ..Default::default()
        };
        let mut sim = Simulation::with_config(cfg, Box::new(X10Ws));
        sim.run_roots("slow", roots).makespan_ns
    };
    let base = mk(1.0);
    let slowed = mk(4.0);
    assert!(
        slowed > base,
        "4x straggler must stretch the makespan ({base} -> {slowed})"
    );
}

#[test]
fn same_fault_seed_gives_byte_identical_reports() {
    let run = || {
        let counter = Arc::new(AtomicU64::new(0));
        let roots = spread_roots(4, 12, &counter);
        let mut cfg = SimConfig::new(ClusterConfig::new(4, 2));
        cfg.faults = FaultConfig {
            net: FaultPlan {
                default: LinkFault {
                    drop_p: 0.08,
                    dup_p: 0.02,
                    jitter_ns: 2_000,
                    ..Default::default()
                },
                ..Default::default()
            },
            kills: vec![(PlaceId(3), 150_000)],
            seed: 0xD00F,
            ..Default::default()
        };
        let mut sim = Simulation::with_config(cfg, Box::new(DistWs::default()));
        distws_json::to_string_pretty(&sim.run_roots("det", roots))
    };
    assert_eq!(run(), run(), "same fault seed, same chaos report");
}

#[test]
fn different_fault_seeds_differ() {
    let run = |seed: u64| {
        let counter = Arc::new(AtomicU64::new(0));
        let roots = spread_roots(4, 12, &counter);
        let mut cfg = SimConfig::new(ClusterConfig::new(4, 2));
        cfg.faults = FaultConfig {
            net: FaultPlan::uniform_loss(0.1),
            seed,
            ..Default::default()
        };
        let mut sim = Simulation::with_config(cfg, Box::new(DistWs::default()));
        sim.run_roots("seeds", roots)
    };
    let a = run(1);
    let b = run(2);
    // Drops land on different messages; the runs must still both
    // conserve tasks. (Makespans may coincide, counters rarely do.)
    assert_eq!(a.tasks_executed, b.tasks_executed);
    assert!(
        a.faults.msgs_dropped != b.faults.msgs_dropped || a.makespan_ns != b.makespan_ns,
        "fault seed had no observable effect"
    );
}

/// The tentpole guarantee: an *empty* fault plan changes nothing — not
/// one virtual-time value, counter, or trace byte — even when the
/// retry/detection knobs are set to exotic values.
#[test]
fn empty_fault_plan_is_byte_identical() {
    #[derive(Default)]
    struct Jsonl(String);
    impl TraceSink for Jsonl {
        fn record(&mut self, ev: TraceEvent) {
            self.0.push_str(&ev.to_jsonl());
            self.0.push('\n');
        }
    }

    let run = |faults: FaultConfig| {
        let counter = Arc::new(AtomicU64::new(0));
        let roots = spread_roots(4, 12, &counter);
        let mut cfg = SimConfig::new(ClusterConfig::new(4, 2));
        cfg.faults = faults;
        let mut sink = Jsonl::default();
        let mut sim = Simulation::with_config(cfg, Box::new(DistWs::default()));
        let (report, _) = sim.run_roots_traced("ident", roots, &mut sink);
        (distws_json::to_string_pretty(&report), sink.0)
    };

    let (base_report, base_trace) = run(FaultConfig::default());
    let exotic = FaultConfig {
        retry: distws_sched::RetryPolicy {
            timeout_ns: 1,
            backoff_base_ns: 999,
            backoff_max_ns: 1_000,
            jitter_ns: 777,
            budget: 9,
        },
        detect_ns: 1,
        lease_timeout_ns: 2,
        seed: 0xDEAD_BEEF,
        // A slow factor of exactly 1.0 is a no-op and must not arm
        // the fault machinery.
        slow: vec![(PlaceId(1), 1.0)],
        ..Default::default()
    };
    assert!(exotic.is_empty());
    let (exotic_report, exotic_trace) = run(exotic);
    assert_eq!(
        base_report, exotic_report,
        "empty plan perturbed the report"
    );
    assert_eq!(base_trace, exotic_trace, "empty plan perturbed the trace");
    assert!(base_report.contains("\"msgs_dropped\": 0"));
}

#[test]
fn invalid_fault_configs_are_rejected() {
    let try_cfg = |faults: FaultConfig| {
        std::panic::catch_unwind(move || {
            let counter = Arc::new(AtomicU64::new(0));
            let roots = spread_roots(2, 2, &counter);
            let mut cfg = SimConfig::new(ClusterConfig::new(2, 1));
            cfg.faults = faults;
            let mut sim = Simulation::with_config(cfg, Box::new(X10Ws));
            sim.run_roots("invalid", roots)
        })
    };
    assert!(
        try_cfg(FaultConfig {
            kills: vec![(PlaceId(0), 1_000)],
            ..Default::default()
        })
        .is_err(),
        "killing place 0 must be rejected"
    );
    assert!(
        try_cfg(FaultConfig {
            kills: vec![(PlaceId(7), 1_000)],
            ..Default::default()
        })
        .is_err(),
        "out-of-range kill must be rejected"
    );
    assert!(
        try_cfg(FaultConfig {
            slow: vec![(PlaceId(1), 0.5)],
            ..Default::default()
        })
        .is_err(),
        "sub-1.0 slow factor must be rejected"
    );
}

/// Run `roots` traced and feed the JSONL stream to the happens-before
/// validator (`distws-analyze`): spawn hb execution, migration hb
/// remote execution, execution hb finish-latch release, exactly-once
/// per task id, per-worker monotonic timestamps.
fn run_and_validate_hb(policy: Box<dyn Policy>, faults: FaultConfig, label: &str) {
    let counter = Arc::new(AtomicU64::new(0));
    let roots = spread_roots(4, 10, &counter);
    let mut cfg = SimConfig::new(ClusterConfig::new(4, 2));
    cfg.faults = faults;
    let mut sink = distws_trace::JsonlSink::new(Vec::new());
    let mut sim = Simulation::with_config(cfg, policy);
    let (report, _) = sim.run_roots_traced("hb", roots, &mut sink);
    assert_eq!(report.tasks_spawned, report.tasks_executed, "{label}");
    let jsonl = String::from_utf8(sink.into_inner()).unwrap();
    let hb = distws_analyze::validate_str(&jsonl);
    assert!(
        hb.ok(),
        "{label}: happens-before violations:\n{}",
        hb.violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(
        hb.tasks, report.tasks_executed,
        "{label}: validator task count"
    );
}

#[test]
fn traces_satisfy_happens_before_fault_free_for_all_policies() {
    for policy in all_policies() {
        let name = policy.name().to_string();
        run_and_validate_hb(policy, FaultConfig::default(), &name);
    }
}

#[test]
fn traces_satisfy_happens_before_under_loss_for_all_policies() {
    // 1% loss exercises timeouts, retries and retransmissions; the
    // causal order and exactly-once guarantees must survive them.
    for policy in all_policies() {
        let name = format!("{} +1% loss", policy.name());
        let faults = FaultConfig {
            net: FaultPlan::uniform_loss(0.01),
            seed: 0x11B,
            ..Default::default()
        };
        run_and_validate_hb(policy, faults, &name);
    }
}

#[test]
fn hb_validator_flags_a_doctored_trace() {
    // Sanity-check the oracle itself: re-run fault-free, then corrupt
    // the stream (drop the first task_start) and expect a violation.
    let counter = Arc::new(AtomicU64::new(0));
    let roots = spread_roots(2, 4, &counter);
    let cfg = SimConfig::new(ClusterConfig::new(2, 2));
    let mut sink = distws_trace::JsonlSink::new(Vec::new());
    let mut sim = Simulation::with_config(cfg, Box::new(DistWs::default()));
    let _ = sim.run_roots_traced("doctored", roots, &mut sink);
    let jsonl = String::from_utf8(sink.into_inner()).unwrap();
    let mut dropped = false;
    let doctored: Vec<&str> = jsonl
        .lines()
        .filter(|l| {
            if !dropped && l.contains("\"ev\":\"task_start\"") {
                dropped = true;
                return false;
            }
            true
        })
        .collect();
    assert!(dropped, "trace should contain a task_start to drop");
    let hb = distws_analyze::validate_lines(doctored.iter().copied());
    assert!(
        !hb.ok(),
        "validator must flag a task that ends without starting"
    );
}
