//! Observability invariants of the simulator:
//!
//! 1. tracing is a pure observer — running with a JSONL sink produces
//!    a byte-identical `RunReport` to running with the null sink;
//! 2. the event stream itself is deterministic — same seed, same
//!    bytes, down to the serialized JSONL;
//! 3. the sampled utilization series is deterministic and consistent
//!    with the cluster shape.

use distws_core::rng::SplitMix64;
use distws_core::{ClusterConfig, Locality, PlaceId, TaskScope, TaskSpec};
use distws_sched::{DistWs, LifelineWs, Policy, X10Ws};
use distws_sim::{SimConfig, Simulation};
use distws_trace::{JsonlSink, NullSink, RingSink, TraceEventKind};

/// A deterministic, steal-heavy workload: all roots homed at place 0
/// so every other place must acquire work through the steal tiers.
fn roots(n: u64, seed: u64) -> Vec<TaskSpec> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let cost = 5_000 + rng.below(95_000);
            let fanout = rng.below(4);
            TaskSpec::new(
                PlaceId(0),
                Locality::Flexible,
                cost,
                "trace-root",
                move |s: &mut dyn TaskScope| {
                    for _ in 0..fanout {
                        s.spawn(TaskSpec::new(
                            s.here(),
                            Locality::Flexible,
                            cost / 2 + 100,
                            "trace-child",
                            |_| {},
                        ));
                    }
                },
            )
        })
        .collect()
}

fn policies() -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(X10Ws),
        Box::new(DistWs::default()),
        Box::new(LifelineWs::default()),
    ]
}

fn report_json(policy: Box<dyn Policy>, sink: &mut dyn distws_trace::TraceSink) -> String {
    let mut sim = Simulation::new(ClusterConfig::new(4, 2), policy);
    let (report, _) = sim.run_roots_traced("trace-prop", roots(40, 7), sink);
    distws_json::to_string(&report)
}

/// Tracing must not perturb the simulation: every RunReport field —
/// makespan, steal counts, messages, percentiles — is identical
/// whether events are discarded or serialized.
#[test]
fn null_sink_and_jsonl_sink_agree_on_every_report_field() {
    for policy in policies() {
        let name = policy.name();
        let untraced = report_json(policy.clone_box(), &mut NullSink);
        let mut jsonl = JsonlSink::new(Vec::new());
        let traced = report_json(policy, &mut jsonl);
        assert!(jsonl.written() > 0, "{name}: traced run must emit events");
        assert_eq!(untraced, traced, "{name}: tracing changed the report");
    }
}

/// Same seed ⇒ byte-identical JSONL event stream.
#[test]
fn event_stream_is_byte_identical_across_runs() {
    for policy in policies() {
        let name = policy.name();
        let stream = |policy: Box<dyn Policy>| {
            let mut sink = JsonlSink::new(Vec::new());
            let mut sim = Simulation::new(ClusterConfig::new(4, 2), policy);
            sim.run_roots_traced("trace-prop", roots(40, 7), &mut sink);
            sink.into_inner()
        };
        let a = stream(policy.clone_box());
        let b = stream(policy);
        assert!(!a.is_empty(), "{name}: no events traced");
        assert_eq!(a, b, "{name}: event stream not deterministic");
    }
}

/// The traced stream contains the expected event vocabulary for a
/// steal-driven run, and timestamps never exceed the makespan.
#[test]
fn stream_covers_lifecycle_and_respects_makespan() {
    let mut sink = RingSink::new(1 << 20);
    let mut sim = Simulation::new(ClusterConfig::new(4, 2), Box::new(DistWs::default()));
    let (report, _) = sim.run_roots_traced("trace-prop", roots(40, 7), &mut sink);
    assert_eq!(sink.dropped(), 0, "ring sized too small for the test");
    let events = sink.into_events();
    let mut spawns = 0u64;
    let mut starts = 0u64;
    let mut ends = 0u64;
    let mut steal_local_private = 0u64;
    let mut steal_local_shared = 0u64;
    let mut steal_remote = 0u64;
    for ev in &events {
        assert!(ev.t_ns <= report.makespan_ns, "event after makespan");
        match ev.kind {
            TraceEventKind::Spawn { .. } => spawns += 1,
            TraceEventKind::TaskStart { .. } => starts += 1,
            TraceEventKind::TaskEnd { .. } => ends += 1,
            TraceEventKind::StealSuccess { tier, .. } => match tier {
                distws_trace::StealTier::LocalPrivate => steal_local_private += 1,
                distws_trace::StealTier::LocalShared => steal_local_shared += 1,
                distws_trace::StealTier::Remote => steal_remote += 1,
            },
            _ => {}
        }
    }
    assert_eq!(spawns, report.tasks_spawned, "one Spawn per spawned task");
    assert_eq!(
        starts, report.tasks_executed,
        "one TaskStart per executed task"
    );
    assert_eq!(ends, report.tasks_executed, "one TaskEnd per executed task");
    // Local steals move one task per operation: events match counters
    // exactly. A remote steal moves a whole chunk (and lifeline pushes
    // bump the counter without a thief-side steal), so remote events
    // bound the counter from below but must still be present.
    assert_eq!(steal_local_private, report.steals.local_private);
    assert_eq!(steal_local_shared, report.steals.local_shared);
    assert!(
        steal_remote >= 1,
        "work homed at one place must steal remotely"
    );
    assert!(steal_remote <= report.steals.remote);
}

/// Sampling runs on a fixed virtual-time grid and is deterministic.
#[test]
fn sampled_series_is_deterministic_and_well_formed() {
    let run = || {
        let mut cfg = SimConfig::new(ClusterConfig::new(4, 2));
        cfg.sample_interval_ns = Some(10_000);
        let mut sim = Simulation::with_config(cfg, Box::new(DistWs::default()));
        sim.run_roots_traced("trace-prop", roots(40, 7), &mut NullSink)
    };
    let (report_a, series_a) = run();
    let (_, series_b) = run();
    let a = series_a.expect("sampling configured");
    let b = series_b.expect("sampling configured");
    assert_eq!(
        a.to_json().render(),
        b.to_json().render(),
        "series not deterministic"
    );
    assert!(!a.samples().is_empty());
    for (i, s) in a.samples().iter().enumerate() {
        assert_eq!(s.t_ns, i as u64 * 10_000, "samples must sit on the grid");
        assert_eq!(s.places.len(), 4);
        for p in &s.places {
            assert!(p.busy_workers <= 2, "busy bounded by workers per place");
        }
    }
    assert!(a.samples().last().unwrap().t_ns >= report_a.makespan_ns.saturating_sub(10_000));
}

/// Percentile summaries are populated (unconditionally — even with
/// the null sink) and internally ordered p50 ≤ p95 ≤ p99 ≤ max.
#[test]
fn percentile_summaries_are_populated_and_ordered() {
    let mut sim = Simulation::new(ClusterConfig::new(4, 2), Box::new(DistWs::default()));
    let (report, _) = sim.run_roots_traced("trace-prop", roots(40, 7), &mut NullSink);
    let p = &report.percentiles;
    assert_eq!(p.task_granularity_ns.count, report.tasks_executed);
    assert!(p.task_granularity_ns.count > 0);
    for s in [
        &p.steal_local_private_ns,
        &p.steal_local_shared_ns,
        &p.steal_remote_ns,
        &p.task_granularity_ns,
        &p.dormancy_ns,
    ] {
        assert!(
            s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max,
            "percentiles out of order"
        );
    }
    // Local tiers: one latency observation per steal. The remote tier
    // records one observation per chunked steal operation (and none
    // for lifeline pushes), so its count is a lower bound.
    assert_eq!(p.steal_local_private_ns.count, report.steals.local_private);
    assert_eq!(p.steal_local_shared_ns.count, report.steals.local_shared);
    assert!(p.steal_remote_ns.count >= 1);
    assert!(p.steal_remote_ns.count <= report.steals.remote);
}
