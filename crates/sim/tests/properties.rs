//! Property tests over the discrete-event engine: conservation,
//! determinism and policy invariants must hold for *arbitrary* task
//! graphs, not just the shipped applications.

use distws_core::{ClusterConfig, Locality, PlaceId, TaskScope, TaskSpec};
use distws_sched::{DistWs, DistWsNs, Policy, RandomWs, X10Ws};
use distws_sim::Simulation;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A synthetic task tree description drawn by proptest.
#[derive(Debug, Clone)]
struct TreeSpec {
    roots: Vec<NodeSpec>,
}

#[derive(Debug, Clone)]
struct NodeSpec {
    home: u32,
    flexible: bool,
    cost: u64,
    children: u8,
    grandchildren: u8,
}

fn node_strategy(places: u32) -> impl Strategy<Value = NodeSpec> {
    (
        0..places,
        any::<bool>(),
        1_000u64..200_000,
        0u8..5,
        0u8..4,
    )
        .prop_map(|(home, flexible, cost, children, grandchildren)| NodeSpec {
            home,
            flexible,
            cost,
            children,
            grandchildren,
        })
}

fn tree_strategy(places: u32) -> impl Strategy<Value = TreeSpec> {
    proptest::collection::vec(node_strategy(places), 1..12)
        .prop_map(|roots| TreeSpec { roots })
}

/// Materialize the tree as TaskSpecs; `executed` counts task bodies.
fn build(tree: &TreeSpec, executed: &Arc<AtomicU64>) -> (Vec<TaskSpec>, u64) {
    let mut total = 0u64;
    let mut roots = Vec::new();
    for node in &tree.roots {
        total += 1 + node.children as u64 * (1 + node.grandchildren as u64);
        let node = node.clone();
        let executed = Arc::clone(executed);
        let locality = if node.flexible { Locality::Flexible } else { Locality::Sensitive };
        roots.push(TaskSpec::new(
            PlaceId(node.home),
            locality,
            node.cost,
            "prop-root",
            move |s: &mut dyn TaskScope| {
                executed.fetch_add(1, Ordering::Relaxed);
                for c in 0..node.children {
                    let executed2 = Arc::clone(&executed);
                    let grandchildren = node.grandchildren;
                    let cost = node.cost / 2 + 500;
                    let loc = if c % 2 == 0 { Locality::Flexible } else { Locality::Sensitive };
                    s.spawn(TaskSpec::new(
                        s.here(),
                        loc,
                        cost,
                        "prop-child",
                        move |s2: &mut dyn TaskScope| {
                            executed2.fetch_add(1, Ordering::Relaxed);
                            for _ in 0..grandchildren {
                                let e3 = Arc::clone(&executed2);
                                s2.spawn(TaskSpec::new(
                                    s2.here(),
                                    Locality::Flexible,
                                    cost / 2 + 200,
                                    "prop-leaf",
                                    move |_| {
                                        e3.fetch_add(1, Ordering::Relaxed);
                                    },
                                ));
                            }
                        },
                    ));
                }
            },
        ));
    }
    (roots, total)
}

fn policies() -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(X10Ws),
        Box::new(DistWs::default()),
        Box::new(DistWsNs::default()),
        Box::new(RandomWs),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every task spawned is executed exactly once, under every policy,
    /// for arbitrary trees.
    #[test]
    fn task_conservation(tree in tree_strategy(4)) {
        for policy in policies() {
            let executed = Arc::new(AtomicU64::new(0));
            let (roots, total) = build(&tree, &executed);
            let mut sim = Simulation::new(ClusterConfig::new(4, 2), policy);
            let report = sim.run_roots("prop", roots);
            prop_assert_eq!(report.tasks_spawned, total);
            prop_assert_eq!(report.tasks_executed, total);
            prop_assert_eq!(executed.load(Ordering::Relaxed), total);
        }
    }

    /// Same tree + same seed ⇒ bit-identical reports.
    #[test]
    fn determinism(tree in tree_strategy(3)) {
        let run = || {
            let executed = Arc::new(AtomicU64::new(0));
            let (roots, _) = build(&tree, &executed);
            let mut sim = Simulation::new(ClusterConfig::new(3, 2), Box::new(DistWs::default()));
            sim.run_roots("prop", roots)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.makespan_ns, b.makespan_ns);
        prop_assert_eq!(a.steals, b.steals);
        prop_assert_eq!(a.messages, b.messages);
        prop_assert_eq!(a.utilization.per_place, b.utilization.per_place);
    }

    /// X10WS never produces cross-place steals or migrations, and
    /// utilization stays in range, for arbitrary trees.
    #[test]
    fn x10ws_stays_within_places(tree in tree_strategy(4)) {
        let executed = Arc::new(AtomicU64::new(0));
        let (roots, _) = build(&tree, &executed);
        let mut sim = Simulation::new(ClusterConfig::new(4, 2), Box::new(X10Ws));
        let report = sim.run_roots("prop", roots);
        prop_assert_eq!(report.steals.remote, 0);
        for &u in &report.utilization.per_place {
            prop_assert!((0.0..=1.0).contains(&u));
        }
    }

    /// The makespan is sandwiched between total-work/workers (perfect
    /// parallelism) and total work + all overheads on one worker.
    #[test]
    fn makespan_bounds(tree in tree_strategy(2)) {
        let executed = Arc::new(AtomicU64::new(0));
        let (roots, _) = build(&tree, &executed);
        let cfg = ClusterConfig::new(2, 2);
        let mut sim = Simulation::new(cfg.clone(), Box::new(DistWs::default()));
        let report = sim.run_roots("prop", roots);
        let lower = report.total_work_ns / u64::from(cfg.total_workers());
        prop_assert!(report.makespan_ns >= lower,
            "makespan {} below perfect-parallel bound {}", report.makespan_ns, lower);
    }
}
