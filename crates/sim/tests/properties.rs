//! Randomized property tests over the discrete-event engine:
//! conservation, determinism and policy invariants must hold for
//! *arbitrary* task graphs, not just the shipped applications.
//!
//! The container builds offline, so instead of `proptest` these use
//! seeded SplitMix64-driven tree generation — each seed is one fully
//! deterministic case, and a failing seed reproduces exactly.

use distws_core::rng::SplitMix64;
use distws_core::{ClusterConfig, Locality, PlaceId, TaskScope, TaskSpec};
use distws_sched::{DistWs, DistWsNs, Policy, RandomWs, X10Ws};
use distws_sim::Simulation;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A synthetic task-tree description drawn from a seeded RNG.
#[derive(Debug, Clone)]
struct TreeSpec {
    roots: Vec<NodeSpec>,
}

#[derive(Debug, Clone)]
struct NodeSpec {
    home: u32,
    flexible: bool,
    cost: u64,
    children: u8,
    grandchildren: u8,
}

fn random_tree(rng: &mut SplitMix64, places: u32) -> TreeSpec {
    let n = 1 + rng.below_usize(11);
    let roots = (0..n)
        .map(|_| NodeSpec {
            home: rng.below(places as u64) as u32,
            flexible: rng.below(2) == 0,
            cost: 1_000 + rng.below(199_000),
            children: rng.below(5) as u8,
            grandchildren: rng.below(4) as u8,
        })
        .collect();
    TreeSpec { roots }
}

/// Materialize the tree as TaskSpecs; `executed` counts task bodies.
fn build(tree: &TreeSpec, executed: &Arc<AtomicU64>) -> (Vec<TaskSpec>, u64) {
    let mut total = 0u64;
    let mut roots = Vec::new();
    for node in &tree.roots {
        total += 1 + node.children as u64 * (1 + node.grandchildren as u64);
        let node = node.clone();
        let executed = Arc::clone(executed);
        let locality = if node.flexible {
            Locality::Flexible
        } else {
            Locality::Sensitive
        };
        roots.push(TaskSpec::new(
            PlaceId(node.home),
            locality,
            node.cost,
            "prop-root",
            move |s: &mut dyn TaskScope| {
                executed.fetch_add(1, Ordering::Relaxed);
                for c in 0..node.children {
                    let executed2 = Arc::clone(&executed);
                    let grandchildren = node.grandchildren;
                    let cost = node.cost / 2 + 500;
                    let loc = if c % 2 == 0 {
                        Locality::Flexible
                    } else {
                        Locality::Sensitive
                    };
                    s.spawn(TaskSpec::new(
                        s.here(),
                        loc,
                        cost,
                        "prop-child",
                        move |s2: &mut dyn TaskScope| {
                            executed2.fetch_add(1, Ordering::Relaxed);
                            for _ in 0..grandchildren {
                                let e3 = Arc::clone(&executed2);
                                s2.spawn(TaskSpec::new(
                                    s2.here(),
                                    Locality::Flexible,
                                    cost / 2 + 200,
                                    "prop-leaf",
                                    move |_| {
                                        e3.fetch_add(1, Ordering::Relaxed);
                                    },
                                ));
                            }
                        },
                    ));
                }
            },
        ));
    }
    (roots, total)
}

fn policies() -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(X10Ws),
        Box::new(DistWs::default()),
        Box::new(DistWsNs::default()),
        Box::new(RandomWs),
    ]
}

/// Every task spawned is executed exactly once, under every policy,
/// for arbitrary trees.
#[test]
fn task_conservation() {
    for seed in 0..48u64 {
        let tree = random_tree(&mut SplitMix64::new(0xC0 + seed), 4);
        for policy in policies() {
            let executed = Arc::new(AtomicU64::new(0));
            let (roots, total) = build(&tree, &executed);
            let mut sim = Simulation::new(ClusterConfig::new(4, 2), policy);
            let report = sim.run_roots("prop", roots);
            assert_eq!(report.tasks_spawned, total, "seed {seed}");
            assert_eq!(report.tasks_executed, total, "seed {seed}");
            assert_eq!(executed.load(Ordering::Relaxed), total, "seed {seed}");
        }
    }
}

/// Same tree + same seed ⇒ bit-identical reports.
#[test]
fn determinism() {
    for seed in 0..48u64 {
        let tree = random_tree(&mut SplitMix64::new(0xDE7E0 + seed), 3);
        let run = || {
            let executed = Arc::new(AtomicU64::new(0));
            let (roots, _) = build(&tree, &executed);
            let mut sim = Simulation::new(ClusterConfig::new(3, 2), Box::new(DistWs::default()));
            sim.run_roots("prop", roots)
        };
        let a = run();
        let b = run();
        assert_eq!(a.makespan_ns, b.makespan_ns, "seed {seed}");
        assert_eq!(a.steals, b.steals, "seed {seed}");
        assert_eq!(a.messages, b.messages, "seed {seed}");
        assert_eq!(
            a.utilization.per_place, b.utilization.per_place,
            "seed {seed}"
        );
    }
}

/// X10WS never produces cross-place steals or migrations, and
/// utilization stays in range, for arbitrary trees.
#[test]
fn x10ws_stays_within_places() {
    for seed in 0..48u64 {
        let tree = random_tree(&mut SplitMix64::new(0x10A + seed), 4);
        let executed = Arc::new(AtomicU64::new(0));
        let (roots, _) = build(&tree, &executed);
        let mut sim = Simulation::new(ClusterConfig::new(4, 2), Box::new(X10Ws));
        let report = sim.run_roots("prop", roots);
        assert_eq!(report.steals.remote, 0, "seed {seed}");
        for &u in &report.utilization.per_place {
            assert!((0.0..=1.0).contains(&u), "seed {seed}: utilization {u}");
        }
    }
}

/// The makespan is at least total-work/workers (perfect parallelism).
#[test]
fn makespan_bounds() {
    for seed in 0..48u64 {
        let tree = random_tree(&mut SplitMix64::new(0xB0D + seed), 2);
        let executed = Arc::new(AtomicU64::new(0));
        let (roots, _) = build(&tree, &executed);
        let cfg = ClusterConfig::new(2, 2);
        let mut sim = Simulation::new(cfg.clone(), Box::new(DistWs::default()));
        let report = sim.run_roots("prop", roots);
        let lower = report.total_work_ns / u64::from(cfg.total_workers());
        assert!(
            report.makespan_ns >= lower,
            "seed {seed}: makespan {} below perfect-parallel bound {}",
            report.makespan_ns,
            lower
        );
    }
}
