//! Property tests: [`CalendarQueue`] pops in exactly the `(time, push
//! order)` sequence of a single binary heap — including tie-breaks —
//! over seeded random event streams, so swapping it into the engine
//! cannot reorder a single event.

use distws_core::rng::SplitMix64;
use distws_sim::calendar::CalendarQueue;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reference model: a max-heap of `Reverse((time, seq))` with the same
/// pre-increment seq assignment the engine's old `BinaryHeap<Event>`
/// used.
#[derive(Default)]
struct RefQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    seq: u64,
}

impl RefQueue {
    fn push(&mut self, time: u64, item: u64) {
        self.seq += 1;
        self.heap.push(Reverse((time, self.seq, item)));
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        self.heap.pop().map(|Reverse((t, _, x))| (t, x))
    }
}

/// Drive both queues through an identical randomized push/pop script
/// and assert every pop matches. `monotone` restricts pushes to the
/// DES invariant (never below the last popped time); the free-form
/// variant also exercises pushes below the active window.
fn equivalence_run(seed: u64, ops: usize, monotone: bool) {
    let mut rng = SplitMix64::new(seed);
    let mut cal = CalendarQueue::new();
    let mut reference = RefQueue::default();
    let mut last_pop = 0u64;
    let mut item = 0u64;
    for _ in 0..ops {
        // Bias towards pushes so the queues carry real depth, with
        // occasional drain bursts to force window advances/rebuckets.
        match rng.below(10) {
            0..=5 => {
                let spread = match rng.below(3) {
                    0 => 1_000,          // dense ties
                    1 => 1_000_000,      // typical event horizon
                    _ => 50_000_000_000, // far-future (overflow bin)
                };
                let base = if monotone { last_pop } else { 0 };
                let t = base + rng.below(spread);
                item += 1;
                cal.push(t, item);
                reference.push(t, item);
            }
            6..=8 => {
                let got = cal.pop();
                let want = reference.pop();
                assert_eq!(got, want, "pop mismatch (seed {seed})");
                if let Some((t, _)) = got {
                    last_pop = t;
                }
            }
            _ => {
                // Drain burst: pop a chunk, checking order throughout.
                for _ in 0..rng.below(64) {
                    let got = cal.pop();
                    let want = reference.pop();
                    assert_eq!(got, want, "drain mismatch (seed {seed})");
                    if let Some((t, _)) = got {
                        last_pop = t;
                    }
                }
            }
        }
        assert_eq!(cal.len(), reference.heap.len());
    }
    // Final drain: every queued event must come out, in order.
    loop {
        let got = cal.pop();
        let want = reference.pop();
        assert_eq!(got, want, "final drain mismatch (seed {seed})");
        if got.is_none() {
            break;
        }
    }
    assert!(cal.is_empty());
}

#[test]
fn matches_binary_heap_on_des_style_streams() {
    for seed in 0..32 {
        equivalence_run(0xDE5_0000 + seed, 4_000, true);
    }
}

#[test]
fn matches_binary_heap_on_free_form_streams() {
    for seed in 0..32 {
        equivalence_run(0xF7EE_0000 + seed, 4_000, false);
    }
}

#[test]
fn tie_storms_pop_in_push_order() {
    // Many events on few distinct times: the intra-bucket tie-break
    // must reproduce push order exactly.
    let mut rng = SplitMix64::new(7);
    let mut cal = CalendarQueue::new();
    let mut reference = RefQueue::default();
    for i in 0..10_000u64 {
        let t = rng.below(8) * 100;
        cal.push(t, i);
        reference.push(t, i);
    }
    loop {
        let got = cal.pop();
        assert_eq!(got, reference.pop());
        if got.is_none() {
            break;
        }
    }
}
