//! Property tests: [`CalendarQueue`] pops in exactly the `(time, push
//! order)` sequence of a single binary heap — including tie-breaks —
//! over seeded random event streams, so swapping it into the engine
//! cannot reorder a single event.

use distws_core::rng::SplitMix64;
use distws_sim::calendar::CalendarQueue;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reference model: a max-heap of `Reverse((time, seq))` with the same
/// pre-increment seq assignment the engine's old `BinaryHeap<Event>`
/// used.
#[derive(Default)]
struct RefQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    seq: u64,
}

impl RefQueue {
    fn push(&mut self, time: u64, item: u64) {
        self.seq += 1;
        self.heap.push(Reverse((time, self.seq, item)));
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        self.heap.pop().map(|Reverse((t, _, x))| (t, x))
    }
}

/// Drive both queues through an identical randomized push/pop script
/// and assert every pop matches. `monotone` restricts pushes to the
/// DES invariant (never below the last popped time); the free-form
/// variant also exercises pushes below the active window.
fn equivalence_run(seed: u64, ops: usize, monotone: bool) {
    let mut rng = SplitMix64::new(seed);
    let mut cal = CalendarQueue::new();
    let mut reference = RefQueue::default();
    let mut last_pop = 0u64;
    let mut item = 0u64;
    for _ in 0..ops {
        // Bias towards pushes so the queues carry real depth, with
        // occasional drain bursts to force window advances/rebuckets.
        match rng.below(10) {
            0..=5 => {
                let spread = match rng.below(3) {
                    0 => 1_000,          // dense ties
                    1 => 1_000_000,      // typical event horizon
                    _ => 50_000_000_000, // far-future (overflow bin)
                };
                let base = if monotone { last_pop } else { 0 };
                let t = base + rng.below(spread);
                item += 1;
                cal.push(t, item);
                reference.push(t, item);
            }
            6..=8 => {
                let got = cal.pop();
                let want = reference.pop();
                assert_eq!(got, want, "pop mismatch (seed {seed})");
                if let Some((t, _)) = got {
                    last_pop = t;
                }
            }
            _ => {
                // Drain burst: pop a chunk, checking order throughout.
                for _ in 0..rng.below(64) {
                    let got = cal.pop();
                    let want = reference.pop();
                    assert_eq!(got, want, "drain mismatch (seed {seed})");
                    if let Some((t, _)) = got {
                        last_pop = t;
                    }
                }
            }
        }
        assert_eq!(cal.len(), reference.heap.len());
    }
    // Final drain: every queued event must come out, in order.
    loop {
        let got = cal.pop();
        let want = reference.pop();
        assert_eq!(got, want, "final drain mismatch (seed {seed})");
        if got.is_none() {
            break;
        }
    }
    assert!(cal.is_empty());
}

#[test]
fn matches_binary_heap_on_des_style_streams() {
    for seed in 0..32 {
        equivalence_run(0xDE5_0000 + seed, 4_000, true);
    }
}

#[test]
fn matches_binary_heap_on_free_form_streams() {
    for seed in 0..32 {
        equivalence_run(0xF7EE_0000 + seed, 4_000, false);
    }
}

/// Directed regression for the `overflow_min` watermark: a window
/// advance that reaches a far-future event parked in the overflow bin
/// must fold it back into the active heap *before* popping any later
/// ring bucket. Without the fold-back check in the advance loop, the
/// ring would march straight past the parked event and pop 10_001
/// before 10_000.
#[test]
fn window_advance_folds_back_overflow_parked_events() {
    let mut cal = CalendarQueue::new();
    // Seed the adaptive sizing: two events spanning 2 ns rebucket on
    // the first pop to width = 1, leaving active_end = 3 after both
    // pops. The 512-bucket ring then covers [3, 515).
    cal.push(0, 100);
    cal.push(2, 101);
    assert_eq!(cal.pop(), Some((0, 100)));
    assert_eq!(cal.pop(), Some((2, 101)));
    // Beyond the ring horizon: parks in the overflow bin, recorded
    // only by the `overflow_min = 10_000` watermark.
    cal.push(10_000, 500);
    // Near-term stream, each push inside the ring horizon: walks the
    // window up to active_end = 9_501 without ever touching overflow.
    let mut t = 500;
    while t <= 9_500 {
        cal.push(t, t);
        assert_eq!(cal.pop(), Some((t, t)), "near-term stream at {t}");
        t += 500;
    }
    assert_eq!(cal.len(), 1, "parked event still queued");
    // Straddle the parked time. Popping 9_999 stops the window at
    // exactly active_end = 10_000 (watermark not yet reached); the
    // next advance crosses it and must fold 10_000 back in ahead of
    // the 10_001 bucket.
    cal.push(9_999, 600);
    cal.push(10_001, 601);
    assert_eq!(cal.pop(), Some((9_999, 600)));
    assert_eq!(
        cal.pop(),
        Some((10_000, 500)),
        "parked event must not be skipped"
    );
    assert_eq!(cal.pop(), Some((10_001, 601)));
    assert_eq!(cal.pop(), None);
    assert!(cal.is_empty());
}

#[test]
fn tie_storms_pop_in_push_order() {
    // Many events on few distinct times: the intra-bucket tie-break
    // must reproduce push order exactly.
    let mut rng = SplitMix64::new(7);
    let mut cal = CalendarQueue::new();
    let mut reference = RefQueue::default();
    for i in 0..10_000u64 {
        let t = rng.below(8) * 100;
        cal.push(t, i);
        reference.push(t, i);
    }
    loop {
        let got = cal.pop();
        assert_eq!(got, reference.pop());
        if got.is_none() {
            break;
        }
    }
}
