//! Configuration-space tests: the engine must behave sensibly across
//! cost models, topologies, cache settings and wake limits.

use distws_core::{ClusterConfig, CostModel, Locality, PlaceId, TaskSpec};
use distws_netsim::Topology;
use distws_sched::{DistWs, X10Ws};
use distws_sim::{SimConfig, Simulation};

fn imbalanced_roots(n: usize, cost: u64) -> Vec<TaskSpec> {
    (0..n)
        .map(|_| TaskSpec::new(PlaceId(0), Locality::Flexible, cost, "t", |_| {}))
        .collect()
}

#[test]
fn free_network_makes_distributed_stealing_near_perfect() {
    // With a zero-cost network, DistWS should spread an extreme hotspot
    // almost perfectly.
    let mut cfg = SimConfig::new(ClusterConfig::new(4, 2));
    cfg.cost = CostModel {
        net_latency_ns: 0,
        net_ns_per_byte_num: 0,
        mapping_overhead_ns: 0,
        network_probe_ns: 0,
        ..CostModel::default()
    };
    cfg.cache = None;
    let mut sim = Simulation::with_config(cfg, Box::new(DistWs::default()));
    let report = sim.run_roots("free-net", imbalanced_roots(64, 1_000_000));
    let ideal = 64 * 1_000_000 / 8;
    assert!(
        report.makespan_ns < ideal * 13 / 10,
        "free network should reach ≥75% of ideal: makespan {} vs ideal {}",
        report.makespan_ns,
        ideal
    );
}

#[test]
fn expensive_network_suppresses_stealing_benefit() {
    // A 100× latency network: remote steals barely pay; makespan must
    // exceed the cheap-network makespan.
    let run = |latency: u64| {
        let mut cfg = SimConfig::new(ClusterConfig::new(4, 2));
        cfg.cost.net_latency_ns = latency;
        let mut sim = Simulation::with_config(cfg, Box::new(DistWs::default()));
        sim.run_roots("net-sweep", imbalanced_roots(64, 1_000_000))
            .makespan_ns
    };
    let cheap = run(1_000);
    let dear = run(500_000);
    assert!(
        dear > cheap,
        "500µs-latency run ({dear}) should be slower than 1µs ({cheap})"
    );
}

#[test]
fn ring_topology_runs_and_charges_hop_distances() {
    let mut cfg = SimConfig::new(ClusterConfig::new(8, 1));
    cfg.topology = Topology::Ring;
    let mut sim = Simulation::with_config(cfg, Box::new(DistWs::default()));
    let report = sim.run_roots("ring", imbalanced_roots(32, 500_000));
    assert_eq!(report.tasks_executed, 32);
    assert!(
        report.steals.remote > 0,
        "hotspot must be drained over the ring"
    );
}

#[test]
fn cache_model_can_be_disabled() {
    let mut cfg = SimConfig::new(ClusterConfig::new(2, 2));
    cfg.cache = None;
    let mut sim = Simulation::with_config(cfg, Box::new(X10Ws));
    let report = sim.run_roots("nocache", imbalanced_roots(10, 10_000));
    assert_eq!(report.cache.accesses, 0);
    assert_eq!(report.cache.misses, 0);
}

#[test]
fn remote_wake_limit_zero_still_completes() {
    // Without remote wakes, work still drains (local workers and the
    // steal loop of awake workers find it) — it may just take longer.
    let mut cfg = SimConfig::new(ClusterConfig::new(4, 2));
    cfg.remote_wake_limit = 0;
    let mut sim = Simulation::with_config(cfg, Box::new(DistWs::default()));
    let report = sim.run_roots("nowake", imbalanced_roots(40, 200_000));
    assert_eq!(report.tasks_executed, 40);
}

#[test]
fn seed_changes_steal_pattern_but_not_results() {
    let run = |seed: u64| {
        let mut cfg = SimConfig::new(ClusterConfig::new(4, 2));
        cfg.seed = seed;
        let mut sim = Simulation::with_config(cfg, Box::new(DistWs::default()));
        sim.run_roots("seeded", imbalanced_roots(64, 300_000))
    };
    let a = run(1);
    let b = run(2);
    // Same work gets done either way.
    assert_eq!(a.tasks_executed, b.tasks_executed);
    assert_eq!(a.total_work_ns, b.total_work_ns);
}

#[test]
#[should_panic(expected = "event budget exceeded")]
fn event_budget_guards_against_runaway() {
    let mut cfg = SimConfig::new(ClusterConfig::new(2, 2));
    cfg.max_events = 10;
    let mut sim = Simulation::with_config(cfg, Box::new(DistWs::default()));
    sim.run_roots("runaway", imbalanced_roots(100, 1_000));
}

#[test]
fn single_place_schedulers_are_equivalent_within_tolerance() {
    // The paper's single-node observation: with no cross-place steals
    // possible, DistWS ≈ X10WS (small deltas either way — DistWS pays
    // mapping overhead but its shared-deque handoff is cheaper than a
    // private-deque steal). Neither may dominate by more than 10 %.
    let spawny_root = || {
        vec![TaskSpec::new(
            PlaceId(0),
            Locality::Flexible,
            1_000,
            "root",
            |s| {
                for _ in 0..500 {
                    s.spawn(TaskSpec::new(
                        s.here(),
                        Locality::Flexible,
                        20_000,
                        "c",
                        |_| {},
                    ));
                }
            },
        )]
    };
    let mut x10 = Simulation::new(ClusterConfig::new(1, 4), Box::new(X10Ws));
    let rx = x10.run_roots("sp", spawny_root());
    let mut dws = Simulation::new(ClusterConfig::new(1, 4), Box::new(DistWs::default()));
    let rd = dws.run_roots("sp", spawny_root());
    assert_eq!(rd.steals.remote, 0);
    let (lo, hi) = (rx.makespan_ns * 9 / 10, rx.makespan_ns * 11 / 10);
    assert!(
        (lo..=hi).contains(&rd.makespan_ns),
        "DistWS ({}) deviates >10% from X10WS ({}) on one place",
        rd.makespan_ns,
        rx.makespan_ns
    );
}
