//! # distws-sim
//!
//! A deterministic discrete-event simulator of a multi-place
//! work-stealing cluster.
//!
//! ## Why a simulator?
//!
//! The paper's evaluation runs on 16 nodes × 8 cores with InfiniBand.
//! The reproduction regenerates every figure at the same 128-worker
//! scale on any host by executing the *real* application task graphs
//! under **virtual time**: task bodies run for real (producing real
//! meshes, clusterings, sorted arrays …), while the engine charges each
//! task its calibrated compute cost plus every scheduling overhead the
//! paper discusses — deque operations, intra-place steals, network
//! latency and bandwidth for migrations and remote data references, and
//! L1 cache misses from a per-worker cache model.
//!
//! ## Model summary
//!
//! * Each worker is an entity with a private deque, an L1 cache model
//!   and a busy-until clock; each place has a shared FIFO deque.
//! * Task bodies execute eagerly at task start (single host thread, in
//!   virtual-time order), recording child spawns, data accesses and
//!   data-dependent extra compute; children are *released* at evenly
//!   interpolated points across the parent's execution window, so a
//!   coarse task feeds the cluster while it runs, as in a real
//!   help-first runtime.
//! * Idle workers execute their policy's steal sequence (Algorithm 1);
//!   a fully failed sequence parks the worker ("dormant") until new
//!   work is enqueued — the engine then wakes all co-located dormant
//!   workers plus a bounded number of remote ones, which re-run the
//!   sequence and pay the same probe costs a spinning worker would.
//!   This keeps message counts finite and runs deterministic while
//!   preserving the cost structure of continuous polling.
//! * Cross-place `async at` launches, task migrations and remote data
//!   references all go through `distws-netsim`, which accounts every
//!   message for Table III.
//!
//! Determinism: same seed + same workload + same policy ⇒ identical
//! [`distws_core::RunReport`], event for event (property-tested).

#![forbid(unsafe_code)]

pub mod calendar;
mod engine;
pub mod faults;
mod scope;

pub use engine::{SimConfig, Simulation};
pub use faults::{FaultConfig, FaultSpec, TimeSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use distws_core::{ClusterConfig, Locality, PlaceId, TaskSpec};
    use distws_sched::{DistWs, DistWsNs, RandomWs, X10Ws};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// n independent flexible tasks of equal cost, all homed at place 0.
    fn flat_roots(n: usize, cost: u64, counter: &Arc<AtomicU64>) -> Vec<TaskSpec> {
        (0..n)
            .map(|_| {
                let c = Arc::clone(counter);
                TaskSpec::new(PlaceId(0), Locality::Flexible, cost, "flat", move |_s| {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect()
    }

    #[test]
    fn single_worker_runs_everything_sequentially() {
        let counter = Arc::new(AtomicU64::new(0));
        let roots = flat_roots(10, 1_000, &counter);
        let mut sim = Simulation::new(ClusterConfig::new(1, 1), Box::new(X10Ws));
        let report = sim.run_roots("flat", roots);
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        assert_eq!(report.tasks_spawned, 10);
        assert_eq!(report.tasks_executed, 10);
        // Makespan at least the pure work.
        assert!(report.makespan_ns >= 10_000);
        assert_eq!(report.steals.total(), 0);
        assert_eq!(report.messages.total(), 0);
    }

    #[test]
    fn co_located_workers_share_via_local_steals() {
        let counter = Arc::new(AtomicU64::new(0));
        // A single root spawns 64 children: once every worker is busy,
        // help-first pushes land in the spawner's own deque, so the
        // other workers must steal them.
        let c0 = Arc::clone(&counter);
        let root = TaskSpec::new(PlaceId(0), Locality::Sensitive, 10_000, "root", move |s| {
            for _ in 0..64 {
                let c = Arc::clone(&c0);
                s.spawn(TaskSpec::new(
                    s.here(),
                    Locality::Sensitive,
                    100_000,
                    "child",
                    move |_| {
                        c.fetch_add(1, Ordering::Relaxed);
                    },
                ));
            }
        });
        let mut sim = Simulation::new(ClusterConfig::new(1, 4), Box::new(X10Ws));
        let report = sim.run_roots("flat", vec![root]);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        // All four workers must have participated: makespan well under
        // the sequential 6.4 ms.
        assert!(
            report.makespan_ns < 3 * 64 * 100_000 / 4,
            "makespan {} suggests no intra-place stealing",
            report.makespan_ns
        );
        assert!(report.steals.local_private > 0);
        assert_eq!(report.steals.remote, 0);
    }

    #[test]
    fn x10ws_never_crosses_places() {
        let counter = Arc::new(AtomicU64::new(0));
        // All work at place 0 of a 4-place cluster: X10WS leaves
        // places 1–3 idle.
        let roots = flat_roots(64, 100_000, &counter);
        let mut sim = Simulation::new(ClusterConfig::new(4, 2), Box::new(X10Ws));
        let report = sim.run_roots("flat", roots);
        assert_eq!(report.steals.remote, 0);
        assert_eq!(report.messages.task_migrations, 0);
        let u = &report.utilization.per_place;
        assert!(u[0] > 0.5, "home place should be busy, got {u:?}");
        assert!(
            u[1] < 0.05 && u[2] < 0.05 && u[3] < 0.05,
            "remote places must stay idle: {u:?}"
        );
    }

    #[test]
    fn distws_balances_across_places() {
        let counter = Arc::new(AtomicU64::new(0));
        let roots = flat_roots(64, 100_000, &counter);
        let mut x10 = Simulation::new(ClusterConfig::new(4, 2), Box::new(X10Ws));
        let r_x10 = x10.run_roots("flat", flat_roots(64, 100_000, &counter));
        let mut dist = Simulation::new(ClusterConfig::new(4, 2), Box::new(DistWs::default()));
        let r_dist = dist.run_roots("flat", roots);
        assert!(r_dist.steals.remote > 0, "DistWS must steal remotely");
        assert!(
            r_dist.makespan_ns < r_x10.makespan_ns,
            "DistWS {} should beat X10WS {} on imbalanced flexible work",
            r_dist.makespan_ns,
            r_x10.makespan_ns
        );
        // With 8 workers on 64×100µs, DistWS should get decent speedup.
        assert!(
            r_dist.self_speedup() > 3.0,
            "speedup {}",
            r_dist.self_speedup()
        );
    }

    #[test]
    fn sensitive_tasks_never_migrate_under_distws() {
        let counter = Arc::new(AtomicU64::new(0));
        let roots: Vec<TaskSpec> = (0..32)
            .map(|_| {
                let c = Arc::clone(&counter);
                TaskSpec::new(PlaceId(0), Locality::Sensitive, 50_000, "s", move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        let mut sim = Simulation::new(ClusterConfig::new(4, 2), Box::new(DistWs::default()));
        let report = sim.run_roots("sens", roots);
        assert_eq!(report.steals.remote, 0);
        assert_eq!(report.messages.task_migrations, 0);
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn distws_ns_migrates_sensitive_tasks() {
        let roots: Vec<TaskSpec> = (0..64)
            .map(|_| TaskSpec::new(PlaceId(0), Locality::Sensitive, 100_000, "s", |_| {}))
            .collect();
        let mut sim = Simulation::new(ClusterConfig::new(4, 2), Box::new(DistWsNs::default()));
        let report = sim.run_roots("sens", roots);
        assert!(report.steals.remote > 0, "NS must migrate sensitive tasks");
    }

    #[test]
    fn spawned_children_run() {
        let counter = Arc::new(AtomicU64::new(0));
        let c0 = Arc::clone(&counter);
        let root = TaskSpec::new(PlaceId(0), Locality::Flexible, 10_000, "root", move |s| {
            for _ in 0..10 {
                let c = Arc::clone(&c0);
                s.spawn(TaskSpec::new(
                    s.here(),
                    Locality::Flexible,
                    5_000,
                    "child",
                    move |_| {
                        c.fetch_add(1, Ordering::Relaxed);
                    },
                ));
            }
        });
        let mut sim = Simulation::new(ClusterConfig::new(2, 2), Box::new(DistWs::default()));
        let report = sim.run_roots("spawn", vec![root]);
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        assert_eq!(report.tasks_spawned, 11);
        assert_eq!(report.tasks_executed, 11);
    }

    #[test]
    fn cross_place_spawn_is_a_message() {
        let root = TaskSpec::new(PlaceId(0), Locality::Sensitive, 1_000, "root", |s| {
            // async at (P1): sensitive child homed at a different place.
            s.spawn(TaskSpec::new(
                PlaceId(1),
                Locality::Sensitive,
                1_000,
                "remote-child",
                |_| {},
            ));
        });
        let mut sim = Simulation::new(ClusterConfig::new(2, 1), Box::new(X10Ws));
        let report = sim.run_roots("xspawn", vec![root]);
        assert_eq!(report.tasks_executed, 2);
        assert!(
            report.messages.total() > 0,
            "cross-place launch must be counted"
        );
    }

    #[test]
    fn finish_latch_orders_phases() {
        use distws_core::FinishLatch;
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let o2 = Arc::clone(&order);
        let cont = TaskSpec::new(
            PlaceId(0),
            Locality::Sensitive,
            1_000,
            "phase2",
            move |_| {
                o2.lock().unwrap().push("phase2");
            },
        );
        let latch = FinishLatch::new(8, cont);
        let roots: Vec<TaskSpec> = (0..8)
            .map(|_| {
                let o = Arc::clone(&order);
                TaskSpec::new(
                    PlaceId(0),
                    Locality::Flexible,
                    50_000,
                    "phase1",
                    move |_| {
                        o.lock().unwrap().push("phase1");
                    },
                )
                .with_latch(Arc::clone(&latch))
            })
            .collect();
        let mut sim = Simulation::new(ClusterConfig::new(2, 2), Box::new(DistWs::default()));
        let report = sim.run_roots("phases", roots);
        assert_eq!(report.tasks_executed, 9);
        let seen = order.lock().unwrap();
        assert_eq!(seen.len(), 9);
        assert_eq!(
            *seen.last().unwrap(),
            "phase2",
            "continuation must run last"
        );
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = || {
            let roots: Vec<TaskSpec> = (0..40)
                .map(|i| {
                    TaskSpec::new(
                        PlaceId(i % 4),
                        if i % 3 == 0 {
                            Locality::Sensitive
                        } else {
                            Locality::Flexible
                        },
                        10_000 + (i as u64 * 7_919) % 90_000,
                        "mix",
                        |_| {},
                    )
                })
                .collect();
            let mut sim = Simulation::new(ClusterConfig::new(4, 2), Box::new(DistWs::default()));
            sim.run_roots("det", roots)
        };
        let a = run();
        let b = run();
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.steals, b.steals);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.utilization.per_place, b.utilization.per_place);
    }

    #[test]
    fn random_ws_also_balances() {
        let counter = Arc::new(AtomicU64::new(0));
        let roots = flat_roots(64, 100_000, &counter);
        let mut sim = Simulation::new(ClusterConfig::new(4, 2), Box::new(RandomWs));
        let report = sim.run_roots("flat", roots);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert!(report.steals.remote > 0);
    }

    #[test]
    fn utilization_is_bounded() {
        let counter = Arc::new(AtomicU64::new(0));
        let roots = flat_roots(100, 50_000, &counter);
        let mut sim = Simulation::new(ClusterConfig::new(4, 2), Box::new(DistWs::default()));
        let report = sim.run_roots("flat", roots);
        for &u in &report.utilization.per_place {
            assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
        }
    }

    #[test]
    fn remote_data_refs_are_charged() {
        use distws_core::ObjectId;
        // A task at place 0 reading data homed at place 1.
        let root = TaskSpec::new(PlaceId(0), Locality::Sensitive, 1_000, "reader", |s| {
            s.read(ObjectId(1), 0, 4_096, PlaceId(1));
        });
        let mut sim = Simulation::new(ClusterConfig::new(2, 1), Box::new(X10Ws));
        let report = sim.run_roots("rref", vec![root]);
        assert_eq!(report.remote_refs, 1);
        assert!(report.messages.data_requests == 1 && report.messages.data_replies == 1);
    }

    #[test]
    fn carried_footprint_makes_accesses_local_after_migration() {
        use distws_core::{Footprint, ObjectId};
        // Flexible tasks homed at place 0, each encapsulating its data.
        // When stolen to place 1, accesses to the carried object must
        // NOT become remote references.
        let roots: Vec<TaskSpec> = (0..16)
            .map(|i| {
                let obj = ObjectId(100 + i);
                TaskSpec::new(PlaceId(0), Locality::Flexible, 200_000, "enc", move |s| {
                    s.read(obj, 0, 1_024, PlaceId(0));
                })
                .with_footprint(Footprint::single(obj, 1_024, PlaceId(0)))
            })
            .collect();
        let mut sim = Simulation::new(ClusterConfig::new(2, 1), Box::new(DistWs::default()));
        let report = sim.run_roots("enc", roots);
        assert!(
            report.steals.remote > 0,
            "test needs at least one migration"
        );
        assert_eq!(
            report.remote_refs, 0,
            "carried data must be local at the thief"
        );
        // Migration payloads include the 1 KiB footprints.
        assert!(report.messages.bytes > 1_024);
    }
}
