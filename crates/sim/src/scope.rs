//! The [`TaskScope`] the simulator hands to executing task bodies: a
//! recorder. Bodies run for real (mutating application state through
//! their captured `Arc`s), while spawns, data accesses and
//! data-dependent compute charges are collected here and converted to
//! virtual-time costs by the engine afterwards.

use distws_core::{Access, GlobalWorkerId, PlaceId, TaskId, TaskScope, TaskSpec};

/// Recording scope for one task execution.
pub(crate) struct SimScope {
    pub here: PlaceId,
    pub home: PlaceId,
    pub worker: GlobalWorkerId,
    pub task: TaskId,
    /// Children spawned by the body, in spawn order.
    pub spawned: Vec<TaskSpec>,
    /// Extra compute charged by the body (virtual ns).
    pub charged: u64,
    /// Data accesses performed by the body, in program order.
    pub accesses: Vec<Access>,
}

impl SimScope {
    #[cfg(test)]
    pub fn new(here: PlaceId, home: PlaceId, worker: GlobalWorkerId, task: TaskId) -> Self {
        Self::with_buffers(here, home, worker, task, Vec::new(), Vec::new())
    }

    /// Scope over caller-owned (empty) spawn/access buffers — the
    /// engine hands the same two vectors to every task execution so
    /// the per-task allocations disappear from the hot path.
    pub fn with_buffers(
        here: PlaceId,
        home: PlaceId,
        worker: GlobalWorkerId,
        task: TaskId,
        spawned: Vec<TaskSpec>,
        accesses: Vec<Access>,
    ) -> Self {
        debug_assert!(spawned.is_empty() && accesses.is_empty());
        SimScope {
            here,
            home,
            worker,
            task,
            spawned,
            charged: 0,
            accesses,
        }
    }
}

impl TaskScope for SimScope {
    fn here(&self) -> PlaceId {
        self.here
    }

    fn home(&self) -> PlaceId {
        self.home
    }

    fn worker(&self) -> GlobalWorkerId {
        self.worker
    }

    fn task_id(&self) -> TaskId {
        self.task
    }

    fn spawn(&mut self, spec: TaskSpec) {
        self.spawned.push(spec);
    }

    fn charge(&mut self, ns: u64) {
        self.charged += ns;
    }

    fn access(&mut self, access: Access) {
        self.accesses.push(access);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distws_core::{Locality, ObjectId};

    #[test]
    fn records_everything_in_order() {
        let mut s = SimScope::new(PlaceId(1), PlaceId(0), GlobalWorkerId(9), TaskId(7));
        assert_eq!(s.here(), PlaceId(1));
        assert_eq!(s.home(), PlaceId(0));
        assert_eq!(s.worker(), GlobalWorkerId(9));
        assert_eq!(s.task_id(), TaskId(7));
        s.charge(100);
        s.charge(50);
        s.read(ObjectId(3), 0, 64, PlaceId(0));
        s.write(ObjectId(3), 64, 64, PlaceId(0));
        s.spawn(TaskSpec::new(
            PlaceId(1),
            Locality::Flexible,
            1,
            "c",
            |_| {},
        ));
        assert_eq!(s.charged, 150);
        assert_eq!(s.accesses.len(), 2);
        assert_eq!(s.spawned.len(), 1);
        assert_eq!(s.accesses[0].kind, distws_core::AccessKind::Read);
        assert_eq!(s.accesses[1].kind, distws_core::AccessKind::Write);
    }
}
