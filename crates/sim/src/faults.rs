//! Place-level faults and the chaos fault-spec grammar.
//!
//! [`FaultConfig`] is the engine-facing description of everything that
//! can go wrong in a run: a network [`FaultPlan`] (drops, duplication,
//! jitter, spikes, partitions), fail-stop place kills with optional
//! restarts, straggler (slow-place) multipliers, and the
//! timeout/backoff [`RetryPolicy`] thieves use against it. An empty
//! config (the default) leaves the engine byte-identical to a build
//! without fault injection.
//!
//! [`FaultSpec`] is the parsed form of the `--faults` command-line
//! grammar (see `docs/faults.md`). Times may be given as absolute
//! durations (`40us`) or as a percentage of the fault-free makespan
//! (`40%`), which is resolved against a baseline run; probabilistic
//! intensities scale with the chaos sweep level.

use distws_core::PlaceId;
use distws_netsim::{FaultPlan, LinkFault, Partition};
use distws_sched::RetryPolicy;

/// Engine-facing fault description for one run.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Network faults, applied inside every cross-place transmit.
    pub net: FaultPlan,
    /// Fail-stop kills: `(place, virtual time)`. Place 0 must not be
    /// killed (it hosts the root activity and the recovery fallback).
    pub kills: Vec<(PlaceId, u64)>,
    /// Hard (SIGKILL-style) kills: the place dies silently, so its
    /// tasks are recovered only after silence detection *plus* the
    /// lease grace (`detect_ns + lease_timeout_ns`) instead of the
    /// EOF-announced `detect_ns` of a graceful kill. Place 0 must not
    /// be killed.
    pub hard_kills: Vec<(PlaceId, u64)>,
    /// Restarts of previously killed places: `(place, virtual time)`.
    pub restarts: Vec<(PlaceId, u64)>,
    /// Straggler multipliers: `(place, factor ≥ 1.0)` applied to every
    /// task duration executed at that place.
    pub slow: Vec<(PlaceId, f64)>,
    /// Timeout/backoff policy for remote steal probes.
    pub retry: RetryPolicy,
    /// Delay between a failure and its detection — recovered tasks
    /// re-arrive this long after the kill.
    pub detect_ns: u64,
    /// How long a victim retains ownership of migrated tasks before
    /// reclaiming them when the migration payload is lost in flight.
    pub lease_timeout_ns: u64,
    /// Seed of the fault random streams (network drop/dup/jitter and
    /// backoff jitter). Independent of the scheduling seed.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            net: FaultPlan::default(),
            kills: Vec::new(),
            hard_kills: Vec::new(),
            restarts: Vec::new(),
            slow: Vec::new(),
            retry: RetryPolicy::default(),
            detect_ns: 50_000,
            lease_timeout_ns: 100_000,
            seed: 0xFA17,
        }
    }
}

impl FaultConfig {
    /// Whether this config injects nothing. The retry/detection knobs
    /// alone don't count: the clean engine path never consults them.
    pub fn is_empty(&self) -> bool {
        self.net.is_empty()
            && self.kills.is_empty()
            && self.hard_kills.is_empty()
            && self.restarts.is_empty()
            && self.slow.iter().all(|(_, f)| *f == 1.0)
    }

    /// Validate against a cluster of `places` places.
    pub fn validate(&self, places: u32) -> Result<(), String> {
        for (p, _) in self.kills.iter().chain(&self.hard_kills) {
            if p.0 == 0 {
                return Err("place 0 hosts the root activity and cannot be killed".into());
            }
            if p.0 >= places {
                return Err(format!("kill target {} out of range (< {places})", p.0));
            }
        }
        for (p, t) in &self.restarts {
            let killed_earlier = self
                .kills
                .iter()
                .chain(&self.hard_kills)
                .any(|(kp, kt)| kp == p && kt < t);
            if !killed_earlier {
                return Err(format!("restart of place {} without an earlier kill", p.0));
            }
        }
        for (p, f) in &self.slow {
            if p.0 >= places {
                return Err(format!("slow target {} out of range (< {places})", p.0));
            }
            if !(*f >= 1.0 && f.is_finite()) {
                return Err(format!("slow factor {f} must be ≥ 1.0"));
            }
        }
        Ok(())
    }
}

/// A duration that may be relative to the fault-free makespan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeSpec {
    /// Absolute virtual nanoseconds.
    Ns(u64),
    /// Percent of the fault-free makespan (resolved by `repro chaos`
    /// against a baseline run).
    Pct(f64),
}

impl TimeSpec {
    /// Resolve against a baseline makespan.
    pub fn resolve(&self, makespan_ns: u64) -> u64 {
        match *self {
            TimeSpec::Ns(ns) => ns,
            TimeSpec::Pct(p) => (makespan_ns as f64 * p / 100.0) as u64,
        }
    }
}

fn parse_time(s: &str) -> Result<TimeSpec, String> {
    let s = s.trim();
    if let Some(p) = s.strip_suffix('%') {
        let v: f64 = p.parse().map_err(|_| format!("bad percentage in '{s}'"))?;
        if !(0.0..=1_000.0).contains(&v) {
            return Err(format!("percentage {v} out of range"));
        }
        return Ok(TimeSpec::Pct(v));
    }
    for (suffix, mul) in [
        ("ns", 1u64),
        ("us", 1_000),
        ("ms", 1_000_000),
        ("s", 1_000_000_000),
    ] {
        if let Some(num) = s.strip_suffix(suffix) {
            // "s" also matches "ns"/"us"/"ms" tails; skip those.
            if suffix == "s" && (num.ends_with('n') || num.ends_with('u') || num.ends_with('m')) {
                continue;
            }
            let v: u64 = num
                .trim()
                .parse()
                .map_err(|_| format!("bad duration in '{s}'"))?;
            return Ok(TimeSpec::Ns(v.saturating_mul(mul)));
        }
    }
    Err(format!(
        "duration '{s}' needs a unit (ns/us/ms/s) or '%' of baseline makespan"
    ))
}

fn parse_prob(s: &str) -> Result<f64, String> {
    let v: f64 = s
        .trim()
        .parse()
        .map_err(|_| format!("bad probability '{s}'"))?;
    if !(0.0..=1.0).contains(&v) {
        return Err(format!("probability {v} must be in [0, 1]"));
    }
    Ok(v)
}

fn parse_place(s: &str) -> Result<u32, String> {
    s.trim().parse().map_err(|_| format!("bad place id '{s}'"))
}

fn parse_edge(s: &str) -> Result<(u32, u32), String> {
    let (a, b) = s
        .split_once('-')
        .ok_or_else(|| format!("edge '{s}' must be 'A-B'"))?;
    Ok((parse_place(a)?, parse_place(b)?))
}

/// Parsed `--faults` specification. Comma-separated clauses:
///
/// | clause | meaning |
/// |---|---|
/// | `drop=P` | drop every message with probability `P` |
/// | `drop=A-B:P` | drop probability `P` on edge `A-B` (both directions) |
/// | `dup=P` | duplicate delivered messages with probability `P` |
/// | `jitter=DUR` | add uniform `[0, DUR]` latency per message |
/// | `spike=P:DUR` | with probability `P`, add `DUR` latency |
/// | `partition=A-B@T1..T2` | cut link `A-B` during `[T1, T2)` |
/// | `kill=P@T` | fail-stop place `P` at time `T` (never place 0) |
/// | `kill!=P@T` | hard-kill (SIGKILL): silent death, recovery waits out silence detection + lease grace |
/// | `restart=P@T` | restart a killed place `P` at time `T` |
/// | `slow=P:F` | multiply place `P` task durations by `F ≥ 1` |
///
/// `DUR`/`T` are `<int>ns|us|ms|s` or `<num>%` of the fault-free
/// makespan.
#[derive(Debug, Clone, Default)]
pub struct FaultSpec {
    /// Default drop probability.
    pub drop: f64,
    /// Per-edge drop overrides (applied in both directions).
    pub drop_edges: Vec<(u32, u32, f64)>,
    /// Duplication probability.
    pub dup: f64,
    /// Per-message jitter bound.
    pub jitter: Option<TimeSpec>,
    /// Latency spike `(probability, extra)`.
    pub spike: Option<(f64, TimeSpec)>,
    /// Link partitions `(a, b, from, until)`.
    pub partitions: Vec<(u32, u32, TimeSpec, TimeSpec)>,
    /// Fail-stop kills `(place, at)`.
    pub kills: Vec<(u32, TimeSpec)>,
    /// Hard (SIGKILL) kills `(place, at)`.
    pub hard_kills: Vec<(u32, TimeSpec)>,
    /// Restarts `(place, at)`.
    pub restarts: Vec<(u32, TimeSpec)>,
    /// Straggler factors `(place, factor)`.
    pub slow: Vec<(u32, f64)>,
}

impl FaultSpec {
    /// Parse the comma-separated clause list.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for clause in s.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, val) = clause
                .split_once('=')
                .ok_or_else(|| format!("clause '{clause}' must be key=value"))?;
            match key.trim() {
                "drop" => {
                    if let Some((edge, p)) = val.split_once(':') {
                        let (a, b) = parse_edge(edge)?;
                        spec.drop_edges.push((a, b, parse_prob(p)?));
                    } else {
                        spec.drop = parse_prob(val)?;
                    }
                }
                "dup" => spec.dup = parse_prob(val)?,
                "jitter" => spec.jitter = Some(parse_time(val)?),
                "spike" => {
                    let (p, d) = val
                        .split_once(':')
                        .ok_or_else(|| format!("spike '{val}' must be 'P:DUR'"))?;
                    spec.spike = Some((parse_prob(p)?, parse_time(d)?));
                }
                "partition" => {
                    let (edge, window) = val
                        .split_once('@')
                        .ok_or_else(|| format!("partition '{val}' must be 'A-B@T1..T2'"))?;
                    let (a, b) = parse_edge(edge)?;
                    let (t1, t2) = window
                        .split_once("..")
                        .ok_or_else(|| format!("partition window '{window}' must be 'T1..T2'"))?;
                    spec.partitions
                        .push((a, b, parse_time(t1)?, parse_time(t2)?));
                }
                "kill" | "kill!" => {
                    let hard = key.trim() == "kill!";
                    let (p, t) = val
                        .split_once('@')
                        .ok_or_else(|| format!("kill '{val}' must be 'P@T'"))?;
                    let p = parse_place(p)?;
                    if p == 0 {
                        return Err("cannot kill place 0 (hosts the root activity)".into());
                    }
                    if hard {
                        spec.hard_kills.push((p, parse_time(t)?));
                    } else {
                        spec.kills.push((p, parse_time(t)?));
                    }
                }
                "restart" => {
                    let (p, t) = val
                        .split_once('@')
                        .ok_or_else(|| format!("restart '{val}' must be 'P@T'"))?;
                    spec.restarts.push((parse_place(p)?, parse_time(t)?));
                }
                "slow" => {
                    let (p, f) = val
                        .split_once(':')
                        .ok_or_else(|| format!("slow '{val}' must be 'P:F'"))?;
                    let factor: f64 = f
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad slow factor '{f}'"))?;
                    if !(factor >= 1.0 && factor.is_finite()) {
                        return Err(format!("slow factor {factor} must be ≥ 1.0"));
                    }
                    spec.slow.push((parse_place(p)?, factor));
                }
                other => return Err(format!("unknown fault clause '{other}'")),
            }
        }
        Ok(spec)
    }

    /// Whether any time in the spec is makespan-relative (needs a
    /// fault-free baseline run to resolve).
    pub fn needs_baseline(&self) -> bool {
        let pct = |t: &TimeSpec| matches!(t, TimeSpec::Pct(_));
        self.jitter.as_ref().is_some_and(pct)
            || self.spike.as_ref().is_some_and(|(_, d)| pct(d))
            || self.partitions.iter().any(|(_, _, a, b)| pct(a) || pct(b))
            || self.kills.iter().any(|(_, t)| pct(t))
            || self.hard_kills.iter().any(|(_, t)| pct(t))
            || self.restarts.iter().any(|(_, t)| pct(t))
    }

    /// Resolve into an engine [`FaultConfig`]: percent times against
    /// `baseline_makespan_ns`, probabilistic intensities scaled by
    /// `level` in `[0, 1]`. Structural faults (kills, restarts,
    /// partitions, stragglers) are binary: present at any `level > 0`,
    /// absent at `level == 0`; the straggler factor interpolates
    /// between 1 and its full value.
    pub fn resolve(&self, baseline_makespan_ns: u64, level: f64, seed: u64) -> FaultConfig {
        let level = level.clamp(0.0, 1.0);
        let mut net = FaultPlan {
            default: LinkFault {
                drop_p: self.drop * level,
                dup_p: self.dup * level,
                jitter_ns: self
                    .jitter
                    .map(|j| (j.resolve(baseline_makespan_ns) as f64 * level) as u64)
                    .unwrap_or(0),
                spike_p: self.spike.map(|(p, _)| p * level).unwrap_or(0.0),
                spike_ns: self
                    .spike
                    .map(|(_, d)| d.resolve(baseline_makespan_ns))
                    .unwrap_or(0),
            }
            .clamped(),
            ..FaultPlan::default()
        };
        for &(a, b, p) in &self.drop_edges {
            let mut link = net.default;
            link.drop_p = (p * level).clamp(0.0, distws_netsim::fault::MAX_PROB);
            net.set_edge(PlaceId(a), PlaceId(b), link);
            net.set_edge(PlaceId(b), PlaceId(a), link);
        }
        let mut cfg = FaultConfig {
            net,
            seed,
            ..FaultConfig::default()
        };
        if level > 0.0 {
            for &(a, b, t1, t2) in &self.partitions {
                cfg.net.partitions.push(Partition {
                    a: PlaceId(a),
                    b: PlaceId(b),
                    from_ns: t1.resolve(baseline_makespan_ns),
                    until_ns: t2.resolve(baseline_makespan_ns),
                });
            }
            for &(p, t) in &self.kills {
                cfg.kills
                    .push((PlaceId(p), t.resolve(baseline_makespan_ns)));
            }
            for &(p, t) in &self.hard_kills {
                cfg.hard_kills
                    .push((PlaceId(p), t.resolve(baseline_makespan_ns)));
            }
            for &(p, t) in &self.restarts {
                cfg.restarts
                    .push((PlaceId(p), t.resolve(baseline_makespan_ns)));
            }
            for &(p, f) in &self.slow {
                cfg.slow.push((PlaceId(p), 1.0 + (f - 1.0) * level));
            }
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_spec() {
        let s = FaultSpec::parse(
            "drop=0.02, drop=1-3:0.2, dup=0.01, jitter=2us, spike=0.05:40us, \
             partition=0-2@10%..20%, kill=3@50%, restart=3@80%, slow=1:2.5",
        )
        .unwrap();
        assert_eq!(s.drop, 0.02);
        assert_eq!(s.drop_edges, vec![(1, 3, 0.2)]);
        assert_eq!(s.dup, 0.01);
        assert_eq!(s.jitter, Some(TimeSpec::Ns(2_000)));
        assert_eq!(s.spike, Some((0.05, TimeSpec::Ns(40_000))));
        assert_eq!(s.partitions.len(), 1);
        assert_eq!(s.kills, vec![(3, TimeSpec::Pct(50.0))]);
        assert_eq!(s.restarts, vec![(3, TimeSpec::Pct(80.0))]);
        assert_eq!(s.slow, vec![(1, 2.5)]);
        assert!(s.needs_baseline());
    }

    #[test]
    fn hard_kill_parses_separately() {
        let s = FaultSpec::parse("kill=1@10us, kill!=2@20us, restart=2@40us").unwrap();
        assert_eq!(s.kills, vec![(1, TimeSpec::Ns(10_000))]);
        assert_eq!(s.hard_kills, vec![(2, TimeSpec::Ns(20_000))]);
        let cfg = s.resolve(0, 1.0, 1);
        assert_eq!(cfg.hard_kills, vec![(PlaceId(2), 20_000)]);
        // A restart after a hard kill validates (hard kills count as
        // kills for the restart-ordering rule).
        assert!(cfg.validate(4).is_ok());
        // A hard kill alone makes the config non-empty.
        let only = FaultSpec::parse("kill!=1@5us").unwrap().resolve(0, 1.0, 1);
        assert!(!only.is_empty());
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(FaultSpec::parse("kill=0@10us").is_err(), "place 0");
        assert!(
            FaultSpec::parse("kill!=0@10us").is_err(),
            "hard kill place 0"
        );
        assert!(
            FaultSpec::parse("kill!=3").is_err(),
            "hard kill missing @time"
        );
        assert!(FaultSpec::parse("drop=1.5").is_err(), "prob > 1");
        assert!(FaultSpec::parse("jitter=100").is_err(), "unitless time");
        assert!(FaultSpec::parse("slow=1:0.5").is_err(), "factor < 1");
        assert!(FaultSpec::parse("frobnicate=1").is_err(), "unknown clause");
        assert!(FaultSpec::parse("kill=3").is_err(), "missing @time");
    }

    #[test]
    fn empty_spec_resolves_to_empty_config() {
        let cfg = FaultSpec::parse("").unwrap().resolve(1_000_000, 1.0, 1);
        assert!(cfg.is_empty());
        // Any spec at level 0 is also empty.
        let cfg0 = FaultSpec::parse("drop=0.05,kill=2@10us,slow=1:3.0")
            .unwrap()
            .resolve(1_000_000, 0.0, 1);
        assert!(cfg0.is_empty());
    }

    #[test]
    fn level_scales_probabilities_and_gates_structural_faults() {
        let spec = FaultSpec::parse("drop=0.04,kill=2@10us,slow=1:3.0").unwrap();
        let half = spec.resolve(1_000_000, 0.5, 1);
        assert!((half.net.default.drop_p - 0.02).abs() < 1e-12);
        assert_eq!(half.kills, vec![(PlaceId(2), 10_000)]);
        assert_eq!(half.slow, vec![(PlaceId(1), 2.0)], "factor interpolates");
        let full = spec.resolve(1_000_000, 1.0, 1);
        assert_eq!(full.slow, vec![(PlaceId(1), 3.0)]);
    }

    #[test]
    fn percent_times_resolve_against_baseline() {
        let spec = FaultSpec::parse("kill=1@50%").unwrap();
        assert!(spec.needs_baseline());
        let cfg = spec.resolve(2_000_000, 1.0, 1);
        assert_eq!(cfg.kills, vec![(PlaceId(1), 1_000_000)]);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = FaultConfig::default();
        cfg.kills.push((PlaceId(9), 10));
        assert!(cfg.validate(4).is_err(), "out of range");
        let mut cfg = FaultConfig::default();
        cfg.restarts.push((PlaceId(2), 10));
        assert!(cfg.validate(4).is_err(), "restart without kill");
        let mut cfg = FaultConfig::default();
        cfg.kills.push((PlaceId(2), 10));
        cfg.restarts.push((PlaceId(2), 20));
        assert!(cfg.validate(4).is_ok());
    }

    #[test]
    fn edge_drop_applies_both_directions() {
        let spec = FaultSpec::parse("drop=1-3:0.2").unwrap();
        let cfg = spec.resolve(0, 1.0, 1);
        assert_eq!(cfg.net.link(PlaceId(1), PlaceId(3)).drop_p, 0.2);
        assert_eq!(cfg.net.link(PlaceId(3), PlaceId(1)).drop_p, 0.2);
        assert_eq!(cfg.net.link(PlaceId(0), PlaceId(1)).drop_p, 0.0);
    }
}
