//! The discrete-event engine.

use crate::calendar::CalendarQueue;
use crate::faults::FaultConfig;
use crate::scope::SimScope;
use distws_cachesim::{Cache, CacheConfig};
use distws_core::rng::SplitMix64;
use distws_core::{
    Access, CacheSummary, ClusterConfig, CostModel, FaultSummary, FinishLatch, Footprint,
    GlobalWorkerId, Locality, PlaceId, RunReport, StealCounts, TaskBody, TaskId, TaskSpec,
    UtilizationSummary, Workload,
};
use distws_deque::{SeqPrivateDeque, SeqSharedFifo};
use distws_metrics::{Counter, Gauge, MetricsSink, NullMetrics, Phase};
use distws_netsim::{MsgKind, Network, SendFate, Topology};
use distws_sched::{ClusterView, DequeChoice, Policy, RetryPolicy, StealStep, TaskMeta};
use distws_trace::{
    Histogram, MessageKind, NullSink, PlaceSample, StealTier, TimeSeries, TraceEvent,
    TraceEventKind, TraceSink,
};
use std::collections::BTreeMap;
use std::sync::Arc;

fn trace_msg_kind(kind: MsgKind) -> MessageKind {
    match kind {
        MsgKind::StealRequest => MessageKind::StealRequest,
        MsgKind::StealReply => MessageKind::StealReply,
        MsgKind::TaskMigrate => MessageKind::TaskMigrate,
        MsgKind::DataRequest => MessageKind::DataRequest,
        MsgKind::DataReply => MessageKind::DataReply,
        MsgKind::Control => MessageKind::Control,
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cluster shape.
    pub cluster: ClusterConfig,
    /// Virtual-time cost constants.
    pub cost: CostModel,
    /// Interconnect topology.
    pub topology: Topology,
    /// L1 model per worker; `None` disables cache accounting.
    pub cache: Option<CacheConfig>,
    /// RNG seed — same seed ⇒ identical run.
    pub seed: u64,
    /// On a shared-deque enqueue, how many *remote* dormant workers are
    /// prodded to retry their steal loop (bounds wake storms; local
    /// dormant workers are always prodded).
    pub remote_wake_limit: usize,
    /// Safety valve: abort if the event count explodes.
    pub max_events: u64,
    /// Virtual-time interval of the telemetry sampler. `None` (the
    /// default) disables sampling; `Some(dt)` makes traced runs return
    /// a per-place queue-depth/utilization [`TimeSeries`].
    pub sample_interval_ns: Option<u64>,
    /// Fault injection. The default is empty, and an empty config is
    /// guaranteed not to change a single virtual-time value, counter
    /// or random draw relative to a fault-free build.
    pub faults: FaultConfig,
}

impl SimConfig {
    /// Defaults for a given cluster shape.
    pub fn new(cluster: ClusterConfig) -> Self {
        SimConfig {
            cluster,
            cost: CostModel::default(),
            topology: Topology::FullyConnected,
            cache: Some(CacheConfig::l1d()),
            seed: 0x5EED,
            remote_wake_limit: 4,
            max_events: 500_000_000,
            sample_interval_ns: None,
            faults: FaultConfig::default(),
        }
    }
}

/// A simulation: configuration + policy. Reusable across runs (each
/// `run_*` call builds fresh state).
pub struct Simulation {
    cfg: SimConfig,
    policy: Box<dyn Policy>,
}

impl Simulation {
    /// Simulation with default cost model, topology, cache and seed.
    pub fn new(cluster: ClusterConfig, policy: Box<dyn Policy>) -> Self {
        Simulation {
            cfg: SimConfig::new(cluster),
            policy,
        }
    }

    /// Simulation with a fully explicit configuration.
    pub fn with_config(cfg: SimConfig, policy: Box<dyn Policy>) -> Self {
        Simulation { cfg, policy }
    }

    /// Mutable access to the configuration (tune costs, seed, …).
    pub fn config_mut(&mut self) -> &mut SimConfig {
        &mut self.cfg
    }

    /// Run a [`Workload`]: generate its roots, execute to completion,
    /// and validate its result (panicking on an application-level
    /// wrong answer — scheduling must never change answers).
    pub fn run_app(&mut self, app: &dyn Workload) -> RunReport {
        self.run_app_traced(app, &mut NullSink).0
    }

    /// Run an explicit set of root tasks.
    pub fn run_roots(&mut self, name: &str, roots: Vec<TaskSpec>) -> RunReport {
        self.run_roots_traced(name, roots, &mut NullSink).0
    }

    /// [`Self::run_app`] with structured event tracing into `sink`.
    /// Also returns the telemetry time series when
    /// [`SimConfig::sample_interval_ns`] is set. Tracing never changes
    /// virtual time: the report is identical to an untraced run.
    pub fn run_app_traced(
        &mut self,
        app: &dyn Workload,
        sink: &mut dyn TraceSink,
    ) -> (RunReport, Option<TimeSeries>) {
        self.run_app_metered(app, sink, &mut NullMetrics)
    }

    /// [`Self::run_roots`] with structured event tracing into `sink`.
    pub fn run_roots_traced(
        &mut self,
        name: &str,
        roots: Vec<TaskSpec>,
        sink: &mut dyn TraceSink,
    ) -> (RunReport, Option<TimeSeries>) {
        self.run_roots_metered(name, roots, sink, &mut NullMetrics)
    }

    /// [`Self::run_app_traced`] with engine self-metrics into
    /// `metrics`. Metering only observes: the report is byte-identical
    /// to a [`NullMetrics`] run (property-tested in `distws-bench`).
    pub fn run_app_metered(
        &mut self,
        app: &dyn Workload,
        sink: &mut dyn TraceSink,
        metrics: &mut dyn MetricsSink,
    ) -> (RunReport, Option<TimeSeries>) {
        let roots = app.roots(&self.cfg.cluster);
        let out = self.run_roots_metered(&app.name(), roots, sink, metrics);
        if let Err(e) = app.validate() {
            panic!(
                "workload '{}' failed validation under {}: {e}",
                app.name(),
                out.0.scheduler
            );
        }
        out
    }

    /// [`Self::run_roots_traced`] with engine self-metrics into
    /// `metrics`.
    pub fn run_roots_metered(
        &mut self,
        name: &str,
        roots: Vec<TaskSpec>,
        sink: &mut dyn TraceSink,
        metrics: &mut dyn MetricsSink,
    ) -> (RunReport, Option<TimeSeries>) {
        let mut engine = Engine::new(&self.cfg, self.policy.as_mut(), sink, metrics);
        engine.inject_roots(roots);
        engine.run();
        let series = engine.take_series();
        (engine.into_report(name), series)
    }
}

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

/// Arena index of an in-flight [`Task`] — the 4-byte handle that moves
/// through deques and the event queue instead of the ~200-byte task.
type TaskRef = u32;

/// Arena index of an interned [`FinishLatch`].
type LatchRef = u32;

/// `LatchRef` sentinel for "task carries no latch".
const NO_LATCH: LatchRef = u32::MAX;

/// A runnable task instance inside the engine.
struct Task {
    id: TaskId,
    locality: Locality,
    /// Place named by the original `async (p)`.
    origin_home: PlaceId,
    spawned_at: PlaceId,
    spawner: Option<GlobalWorkerId>,
    /// Current owner place (thief place after a migration).
    exec_home: PlaceId,
    /// True once the task migrated with its footprint copied along.
    carried: bool,
    est: u64,
    footprint: Footprint,
    #[allow(dead_code)]
    label: &'static str,
    latch: LatchRef,
    body: TaskBody,
}

/// Slab arena of in-flight tasks. Slots are recycled through a LIFO
/// free list the moment a task starts executing, so the live slot
/// count tracks the number of *queued* tasks, not tasks ever spawned.
#[derive(Default)]
struct TaskArena {
    slots: Vec<Option<Task>>,
    free: Vec<TaskRef>,
}

impl TaskArena {
    fn alloc(&mut self, task: Task) -> TaskRef {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(task);
                i
            }
            None => {
                self.slots.push(Some(task));
                (self.slots.len() - 1) as TaskRef
            }
        }
    }

    /// Remove the task, recycling its slot immediately. A `TaskRef` is
    /// a unique handle (exactly one queue or event holds it), so the
    /// slot is provably occupied; the panic documents that invariant.
    fn take(&mut self, r: TaskRef) -> Task {
        let Some(task) = self.slots[r as usize].take() else {
            panic!("task slot {r} already freed");
        };
        self.free.push(r);
        task
    }

    fn get(&self, r: TaskRef) -> &Task {
        match self.slots[r as usize].as_ref() {
            Some(task) => task,
            None => panic!("task slot {r} already freed"),
        }
    }

    fn get_mut(&mut self, r: TaskRef) -> &mut Task {
        match self.slots[r as usize].as_mut() {
            Some(task) => task,
            None => panic!("task slot {r} already freed"),
        }
    }
}

/// Interning arena for finish latches: tasks carry a `LatchRef`
/// instead of an `Arc<FinishLatch>` clone. A latch's slot is freed as
/// soon as its pending count drains to zero (every outstanding task
/// holding the ref accounts for at least one pending completion, so a
/// live ref can never point at a freed slot); re-arming a drained
/// latch simply re-interns it.
#[derive(Default)]
struct LatchArena {
    slots: Vec<Option<Arc<FinishLatch>>>,
    free: Vec<LatchRef>,
    /// `Arc` pointer → slot. Entries are removed on free, so pointer
    /// reuse by a later allocation can never alias a stale slot.
    by_ptr: BTreeMap<usize, LatchRef>,
}

impl LatchArena {
    fn intern(&mut self, latch: Arc<FinishLatch>) -> LatchRef {
        let key = Arc::as_ptr(&latch) as usize;
        if let Some(&i) = self.by_ptr.get(&key) {
            return i;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(latch);
                i
            }
            None => {
                self.slots.push(Some(latch));
                (self.slots.len() - 1) as LatchRef
            }
        };
        self.by_ptr.insert(key, i);
        i
    }

    /// Count one completion, freeing the slot once the latch drains.
    fn complete_one(&mut self, r: LatchRef) -> Option<TaskSpec> {
        let Some(latch) = self.slots[r as usize].as_ref() else {
            panic!("latch slot {r} already freed");
        };
        let cont = latch.complete_one();
        if latch.pending() == 0 {
            let key = Arc::as_ptr(latch) as usize;
            self.by_ptr.remove(&key);
            self.slots[r as usize] = None;
            self.free.push(r);
        }
        cont
    }
}

/// Set or clear bit `i` of a worker bitset.
#[inline]
fn set_bit(bits: &mut [u64], i: usize, on: bool) {
    let mask = 1u64 << (i % 64);
    if on {
        bits[i / 64] |= mask;
    } else {
        bits[i / 64] &= !mask;
    }
}

/// Word `wd` of a bitset, masked to global-worker range `[start, end)`.
#[inline]
fn range_word(bits: &[u64], wd: usize, start: usize, end: usize) -> u64 {
    let mut m = bits[wd];
    let lo = wd * 64;
    if start > lo {
        m &= !0u64 << (start - lo);
    }
    if end < lo + 64 {
        m &= (1u64 << (end - lo)) - 1;
    }
    m
}

enum EventKind {
    /// Task lands at its `exec_home`: map & enqueue.
    Arrive(TaskRef),
    /// Worker finished its current task.
    Free(GlobalWorkerId),
    /// Prod a parked worker to retry acquiring work. `strong` also
    /// wakes quiesced (lifeline) workers.
    Wake(GlobalWorkerId, bool),
    /// Fail-stop: the place's queued tasks are recovered elsewhere,
    /// its workers halt at the next task boundary.
    PlaceFail(PlaceId, /* hard (SIGKILL-style, silent) */ bool),
    /// A killed place rejoins the cluster empty-handed.
    PlaceRestart(PlaceId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerStatus {
    /// Parked with nothing to do.
    Dormant,
    /// Executing a task body.
    Busy,
    /// Lifeline protocol: parked until a lifeline push (strong wake).
    Quiesced,
}

struct WorkerState {
    deque: SeqPrivateDeque<TaskRef>,
    cache: Option<Cache>,
    status: WorkerStatus,
    /// Pending Wake event already scheduled (dedup).
    wake_pending: bool,
    /// Whether this worker currently counts toward its place's busy
    /// count (claimed by a mapped task or actually executing).
    counted: bool,
    /// Time until which the worker's CPU is occupied (tasks + steal
    /// rounds are serialized on this clock, so accounted time can never
    /// exceed wall time).
    avail_at: u64,
    busy_ns: u64,
    overhead_ns: u64,
    /// Latch of the task currently executing, processed at `Free`.
    finishing_latch: LatchRef,
}

struct PlaceState {
    shared: SeqSharedFifo<TaskRef>,
    /// Places quiesced on us (they named us as a lifeline).
    lifeline_dependents: Vec<PlaceId>,
    /// Round-robin cursor for private-deque target selection.
    rr: u32,
}

/// Incrementally maintained cluster status — the `ClusterView` handed
/// to policies (the paper's per-place status object, §VI.B).
struct Board {
    cfg: ClusterConfig,
    busy: Vec<u32>,
    shared_len: Vec<usize>,
    private_len: Vec<usize>,
}

impl ClusterView for Board {
    fn config(&self) -> &ClusterConfig {
        &self.cfg
    }
    fn busy_workers(&self, p: PlaceId) -> u32 {
        self.busy[p.index()]
    }
    fn shared_len(&self, p: PlaceId) -> usize {
        self.shared_len[p.index()]
    }
    fn private_len(&self, w: GlobalWorkerId) -> usize {
        self.private_len[w.index()]
    }
}

/// The distribution observations folded into `RunReport.percentiles`.
/// Maintained unconditionally — they are ordinary run metrics, so a
/// traced and an untraced run produce identical reports.
#[derive(Default)]
struct Hists {
    steal_local_private: Histogram,
    steal_local_shared: Histogram,
    steal_remote: Histogram,
    granularity: Histogram,
    dormancy: Histogram,
}

struct Engine<'p> {
    cfg: SimConfig,
    policy: &'p mut dyn Policy,
    rng: SplitMix64,
    queue: CalendarQueue<EventKind>,
    tasks: TaskArena,
    latches: LatchArena,
    workers: Vec<WorkerState>,
    places: Vec<PlaceState>,
    board: Board,
    /// Worker bitsets, maintained by `refresh_bits` after every
    /// `counted`/`status`/`wake_pending` mutation. They turn the
    /// linear worker scans of task mapping and wakeups into word
    /// scans: `idle` = unclaimed and not Busy, `dormant` = Dormant
    /// with no Wake in flight, `quiesced` = Quiesced with no Wake in
    /// flight (workers a wake would actually move).
    idle_bits: Vec<u64>,
    dormant_bits: Vec<u64>,
    quiesced_bits: Vec<u64>,
    /// Reusable buffers for the steal loop and task execution.
    steal_buf: Vec<StealStep>,
    chunk_buf: Vec<TaskRef>,
    spawn_buf: Vec<TaskSpec>,
    access_buf: Vec<Access>,
    net: Network,
    steals: StealCounts,
    remote_refs: u64,
    tasks_spawned: u64,
    tasks_executed: u64,
    total_work: u64,
    next_task: u64,
    makespan: u64,
    events: u64,
    trace: &'p mut dyn TraceSink,
    /// Cached `trace.enabled()` — the per-site check.
    tracing: bool,
    metrics: &'p mut dyn MetricsSink,
    /// Cached `metrics.enabled()` — the per-site check.
    metering: bool,
    series: Option<TimeSeries>,
    hists: Hists,
    /// Task currently executing per worker (for `TaskEnd` pairing).
    running: Vec<Option<TaskId>>,
    /// When each parked worker went dormant/quiesced (dormancy hist).
    parked_since: Vec<Option<u64>>,
    /// Fault injection. `faulty` caches "the fault config is
    /// non-empty": every fault code path is gated on it so a fault-free
    /// run takes the exact pre-fault-injection instruction sequence
    /// (no extra random draws, costs or counters).
    faulty: bool,
    alive: Vec<bool>,
    /// Per-place straggler multiplier (1.0 = nominal speed).
    slow: Vec<f64>,
    /// Dedicated stream for backoff jitter — independent of both the
    /// scheduling RNG and the network's drop/dup stream.
    fault_rng: SplitMix64,
    fault_stats: FaultSummary,
    retry: RetryPolicy,
    detect_ns: u64,
    lease_timeout_ns: u64,
}

impl<'p> Engine<'p> {
    fn new(
        cfg: &SimConfig,
        policy: &'p mut dyn Policy,
        trace: &'p mut dyn TraceSink,
        metrics: &'p mut dyn MetricsSink,
    ) -> Self {
        let cluster = cfg.cluster.clone();
        let nw = cluster.total_workers() as usize;
        let np = cluster.places as usize;
        let workers = (0..nw)
            .map(|_| WorkerState {
                deque: SeqPrivateDeque::new(),
                cache: cfg.cache.map(Cache::new),
                status: WorkerStatus::Dormant,
                wake_pending: false,
                counted: false,
                avail_at: 0,
                busy_ns: 0,
                overhead_ns: 0,
                finishing_latch: NO_LATCH,
            })
            .collect();
        // Every worker starts Dormant, unclaimed, with no wake in
        // flight: idle and dormant bits all set, quiesced all clear.
        let words = nw.div_ceil(64);
        let mut all_workers = vec![0u64; words];
        for i in 0..nw {
            all_workers[i / 64] |= 1u64 << (i % 64);
        }
        let places = (0..np)
            .map(|_| PlaceState {
                shared: SeqSharedFifo::new(),
                lifeline_dependents: Vec::new(),
                rr: 0,
            })
            .collect();
        let mut engine = Engine {
            cfg: cfg.clone(),
            policy,
            rng: SplitMix64::new(cfg.seed),
            queue: CalendarQueue::new(),
            tasks: TaskArena::default(),
            latches: LatchArena::default(),
            workers,
            places,
            idle_bits: all_workers.clone(),
            dormant_bits: all_workers,
            quiesced_bits: vec![0u64; words],
            steal_buf: Vec::new(),
            chunk_buf: Vec::new(),
            spawn_buf: Vec::new(),
            access_buf: Vec::new(),
            board: Board {
                cfg: cluster.clone(),
                busy: vec![0; np],
                shared_len: vec![0; np],
                private_len: vec![0; nw],
            },
            net: {
                let mut net = Network::new(cluster.places, cfg.cost.clone(), cfg.topology);
                net.set_recording(trace.enabled());
                net.set_fault_plan(cfg.faults.net.clone(), cfg.faults.seed);
                net
            },
            steals: StealCounts::default(),
            remote_refs: 0,
            tasks_spawned: 0,
            tasks_executed: 0,
            total_work: 0,
            next_task: 0,
            makespan: 0,
            events: 0,
            tracing: trace.enabled(),
            trace,
            metering: metrics.enabled(),
            metrics,
            series: cfg
                .sample_interval_ns
                .map(|dt| TimeSeries::new(cluster.places, cluster.workers_per_place, dt)),
            hists: Hists::default(),
            running: vec![None; nw],
            parked_since: vec![None; nw],
            faulty: !cfg.faults.is_empty(),
            alive: vec![true; np],
            slow: {
                let mut slow = vec![1.0; np];
                for (p, f) in &cfg.faults.slow {
                    slow[p.index()] = *f;
                }
                slow
            },
            // Offset so the backoff jitter stream never mirrors the
            // network's drop/dup stream even though both derive from
            // the same fault seed.
            fault_rng: SplitMix64::new(cfg.faults.seed ^ 0x9E3779B97F4A7C15),
            fault_stats: FaultSummary::default(),
            retry: cfg.faults.retry,
            detect_ns: cfg.faults.detect_ns,
            lease_timeout_ns: cfg.faults.lease_timeout_ns,
        };
        if engine.faulty {
            engine
                .cfg
                .faults
                .validate(engine.cfg.cluster.places)
                .unwrap_or_else(|e| panic!("invalid fault config: {e}"));
            let kills = engine.cfg.faults.kills.clone();
            for (p, at) in kills {
                engine.schedule(at, EventKind::PlaceFail(p, false));
            }
            let hard_kills = engine.cfg.faults.hard_kills.clone();
            for (p, at) in hard_kills {
                engine.schedule(at, EventKind::PlaceFail(p, true));
            }
            let restarts = engine.cfg.faults.restarts.clone();
            for (p, at) in restarts {
                engine.schedule(at, EventKind::PlaceRestart(p));
            }
        }
        engine
    }

    // -- telemetry -----------------------------------------------------------

    /// Emit one trace event. Callers must have checked `self.tracing`.
    fn emit(&mut self, t_ns: u64, w: GlobalWorkerId, kind: TraceEventKind) {
        let place = self.cfg.cluster.place_of(w);
        self.trace.record(TraceEvent {
            t_ns,
            worker: w,
            place,
            kind,
        });
    }

    /// Drain the network's message log (non-empty only while tracing)
    /// and emit one `Message` event per record, stamped with `t_ns` and
    /// attributed to `w` (the worker whose action caused the traffic).
    fn drain_net(&mut self, t_ns: u64, w: GlobalWorkerId) {
        if !self.tracing {
            return;
        }
        for m in self.net.take_log() {
            self.trace.record(TraceEvent {
                t_ns,
                worker: w,
                place: m.src,
                kind: TraceEventKind::Message {
                    kind: trace_msg_kind(m.kind),
                    to: m.dst,
                    bytes: m.bytes,
                    dropped: m.dropped,
                },
            });
        }
    }

    /// Record samples for every grid instant the clock has passed.
    fn sample_series(&mut self, now: u64) {
        let Some(mut series) = self.series.take() else {
            return;
        };
        while series.due(now) {
            let np = self.cfg.cluster.places as usize;
            let wpp = self.cfg.cluster.workers_per_place as usize;
            let mut places = Vec::with_capacity(np);
            for p in 0..np {
                let mut s = PlaceSample {
                    queue_depth: self.board.shared_len[p] as u64,
                    ..Default::default()
                };
                for wi in p * wpp..(p + 1) * wpp {
                    s.queue_depth += self.board.private_len[wi] as u64;
                    match self.workers[wi].status {
                        WorkerStatus::Busy => s.busy_workers += 1,
                        WorkerStatus::Dormant | WorkerStatus::Quiesced => s.dormant_workers += 1,
                    }
                }
                places.push(s);
            }
            series.push(places);
            if self.metering {
                // Counter track point at the same grid instant, so the
                // Chrome-trace overlay lines up with the series.
                let t = series.samples().last().map_or(0, |s| s.t_ns);
                self.metrics.sample(t);
            }
        }
        self.series = Some(series);
    }

    /// Take the collected telemetry series (after `run`).
    fn take_series(&mut self) -> Option<TimeSeries> {
        self.series.take()
    }

    /// A worker obtained work after being parked: close the dormancy
    /// episode and emit the wakeup marker.
    fn note_unparked(&mut self, t: u64, w: GlobalWorkerId) {
        if let Some(since) = self.parked_since[w.index()].take() {
            self.hists.dormancy.record(t.saturating_sub(since));
            if self.tracing {
                self.emit(t, w, TraceEventKind::Wakeup);
            }
        }
    }

    /// A worker found no work and parked (dormant or quiesced).
    fn note_parked(&mut self, t: u64, w: GlobalWorkerId) {
        if self.parked_since[w.index()].is_none() {
            self.parked_since[w.index()] = Some(t);
            if self.tracing {
                self.emit(t, w, TraceEventKind::Dormant);
            }
        }
    }

    // -- fault machinery -----------------------------------------------------

    /// Reliable cross-place send of a task-carrying message: the
    /// sender retransmits after an ack timeout until one copy gets
    /// through. Returns the total delay from `now` to delivery. With
    /// no faults installed this is exactly [`Network::send`].
    fn reliable_send(
        &mut self,
        now: u64,
        src: PlaceId,
        dst: PlaceId,
        kind: MsgKind,
        bytes: u64,
    ) -> u64 {
        if !self.faulty {
            return self.net.send(src, dst, kind, bytes);
        }
        let mut delay = 0u64;
        let mut attempts = 0u32;
        loop {
            match self.net.transmit(now + delay, src, dst, kind, bytes) {
                SendFate::Delivered { cost_ns } => return delay + cost_ns,
                SendFate::Dropped => {
                    self.fault_stats.retransmissions += 1;
                    delay += self.retry.timeout_ns.max(1);
                    attempts += 1;
                    assert!(
                        attempts < 100_000,
                        "reliable send {src:?}->{dst:?} starved — is a partition window unbounded?"
                    );
                }
            }
        }
    }

    /// Re-enqueue a task stranded at the failed place `from`: back to
    /// its origin home if that place is alive, else to place 0 (which
    /// can never be killed). The task has not started executing, so
    /// re-enqueueing preserves exactly-once. `extra_ns` is added on
    /// top of the detection delay (hard kills recover via the silent
    /// path: silence detection plus the lease grace).
    fn recover_task(&mut self, now: u64, tr: TaskRef, from: PlaceId, extra_ns: u64) {
        let origin_home = self.tasks.get(tr).origin_home;
        let target = if self.alive[origin_home.index()] {
            origin_home
        } else {
            PlaceId(0)
        };
        {
            let task = self.tasks.get_mut(tr);
            task.exec_home = target;
            task.carried = false;
        }
        self.fault_stats.tasks_recovered += 1;
        if self.tracing {
            let task = self.tasks.get(tr).id;
            let w = self.cfg.cluster.global(from, distws_core::WorkerId(0));
            self.emit(
                now,
                w,
                TraceEventKind::TaskRecover {
                    task,
                    from,
                    to: target,
                },
            );
        }
        self.schedule(now + self.detect_ns + extra_ns, EventKind::Arrive(tr));
    }

    /// `hard` marks a SIGKILL-style death: the place cannot announce
    /// its failure, so recovery of its queued tasks additionally waits
    /// out the lease grace on top of silence detection.
    fn on_place_fail(&mut self, now: u64, p: PlaceId, hard: bool) {
        if !self.alive[p.index()] {
            return;
        }
        let extra_ns = if hard { self.lease_timeout_ns } else { 0 };
        self.alive[p.index()] = false;
        self.fault_stats.places_failed += 1;
        if self.tracing {
            let w = self.cfg.cluster.global(p, distws_core::WorkerId(0));
            self.emit(now, w, TraceEventKind::PlaceFail);
        }
        // Recover the place's queued (never-started) tasks: shared
        // FIFO first, then each worker's private deque.
        while let Some(t) = self.places[p.index()].shared.take() {
            self.recover_task(now, t, p, extra_ns);
        }
        self.board.shared_len[p.index()] = 0;
        let wpp = self.cfg.cluster.workers_per_place;
        for i in 0..wpp {
            let w = self.cfg.cluster.global(p, distws_core::WorkerId(i));
            while let Some(t) = self.workers[w.index()].deque.pop() {
                self.recover_task(now, t, p, extra_ns);
            }
            self.board.private_len[w.index()] = 0;
            // Busy workers finish their current task (bodies already
            // ran — side effects exist) and halt at the Free boundary;
            // parked ones halt immediately.
            if self.workers[w.index()].status != WorkerStatus::Busy {
                self.unclaim(w);
                self.workers[w.index()].status = WorkerStatus::Dormant;
                self.refresh_bits(w);
            }
        }
        // No lifeline pushes to or from a dead place.
        self.places[p.index()].lifeline_dependents.clear();
        for place in &mut self.places {
            place.lifeline_dependents.retain(|d| *d != p);
        }
    }

    fn on_place_restart(&mut self, now: u64, p: PlaceId) {
        if self.alive[p.index()] {
            return;
        }
        self.alive[p.index()] = true;
        if self.tracing {
            let w = self.cfg.cluster.global(p, distws_core::WorkerId(0));
            self.emit(now, w, TraceEventKind::PlaceRestart);
        }
        // The place rejoins empty-handed: its workers resume the steal
        // loop with a small stagger.
        let wpp = self.cfg.cluster.workers_per_place;
        for i in 0..wpp {
            let w = self.cfg.cluster.global(p, distws_core::WorkerId(i));
            {
                let ws = &mut self.workers[w.index()];
                // A worker still Busy from before the kill has a
                // pending Free event for its in-flight task; forcing
                // it Dormant here would let a wake start a second task
                // and orphan the first one's latch. It rejoins via
                // on_free, whose alive-check now passes.
                if ws.status == WorkerStatus::Busy {
                    continue;
                }
                ws.status = WorkerStatus::Dormant;
                ws.avail_at = ws.avail_at.max(now);
            }
            self.refresh_bits(w);
            self.wake(now, w, self.cfg.cost.shared_deque_op_ns + w.0 as u64, true);
        }
    }

    fn schedule(&mut self, time: u64, kind: EventKind) {
        self.queue.push(time, kind);
        if self.metering {
            self.metrics.add(Counter::EventQueuePushes, 1);
            self.metrics
                .gauge_max(Gauge::EventQueueMaxDepth, self.queue.len() as u64);
        }
    }

    fn make_task(
        &mut self,
        spec: TaskSpec,
        spawned_at: PlaceId,
        spawner: Option<GlobalWorkerId>,
    ) -> TaskRef {
        self.next_task += 1;
        self.tasks_spawned += 1;
        if self.metering {
            self.metrics.add(Counter::TasksAllocated, 1);
        }
        let latch = match spec.latch {
            Some(l) => self.latches.intern(l),
            None => NO_LATCH,
        };
        self.tasks.alloc(Task {
            id: TaskId(self.next_task),
            locality: spec.locality,
            origin_home: spec.home,
            spawned_at,
            spawner,
            exec_home: spec.home,
            carried: false,
            est: spec.est_cost_ns,
            footprint: spec.footprint,
            label: spec.label,
            latch,
            body: spec.body,
        })
    }

    fn inject_roots(&mut self, roots: Vec<TaskSpec>) {
        // Roots conceptually originate from X10's main activity:
        // worker 0 at place 0.
        let main = GlobalWorkerId(0);
        for spec in roots {
            let home = spec.home;
            let fp = spec.migration_bytes();
            let tr = self.make_task(spec, home, None);
            if self.tracing {
                let task = self.tasks.get(tr).id;
                self.emit(0, main, TraceEventKind::Spawn { task });
            }
            // Distributing roots to other places is real communication.
            if home == PlaceId(0) {
                self.schedule(0, EventKind::Arrive(tr));
            } else {
                let bytes = self.cfg.cost.closure_bytes + fp;
                let cost = self.reliable_send(0, PlaceId(0), home, MsgKind::TaskMigrate, bytes);
                self.drain_net(0, main);
                self.schedule(cost, EventKind::Arrive(tr));
            }
        }
    }

    fn run(&mut self) {
        // The whole loop is EventDispatch wall time; TaskExecution and
        // TraceEmission nest inside and are attributed exclusively.
        if self.metering {
            self.metrics.phase_start(Phase::EventDispatch);
        }
        while let Some((now, kind)) = self.queue.pop() {
            self.events += 1;
            if self.metering {
                self.metrics.add(Counter::EventsProcessed, 1);
                self.metrics.add(Counter::EventQueuePops, 1);
            }
            assert!(
                self.events <= self.cfg.max_events,
                "event budget exceeded ({}) — runaway simulation?",
                self.cfg.max_events
            );
            self.makespan = self.makespan.max(now);
            if self.series.is_some() {
                if self.metering {
                    self.metrics.phase_start(Phase::TraceEmission);
                }
                self.sample_series(now);
                if self.metering {
                    self.metrics.phase_end(Phase::TraceEmission);
                }
            }
            match kind {
                EventKind::Arrive(tr) => self.map_and_enqueue(now, tr),
                EventKind::Free(w) => self.on_free(now, w),
                EventKind::Wake(w, strong) => self.on_wake(now, w, strong),
                EventKind::PlaceFail(p, hard) => self.on_place_fail(now, p, hard),
                EventKind::PlaceRestart(p) => self.on_place_restart(now, p),
            }
        }
        if self.series.is_some() {
            // Close the telemetry grid out to the makespan.
            if self.metering {
                self.metrics.phase_start(Phase::TraceEmission);
            }
            self.sample_series(self.makespan);
            if self.metering {
                self.metrics.phase_end(Phase::TraceEmission);
            }
        }
        if self.metering {
            self.metrics.phase_start(Phase::TraceEmission);
        }
        self.trace.flush();
        if self.metering {
            self.metrics.phase_end(Phase::TraceEmission);
            // Fold the network's totals in once the wire is quiet.
            self.metrics.add(Counter::MsgsSent, self.net.sent_total());
            self.metrics
                .add(Counter::MsgsDropped, self.net.dropped_total());
            self.metrics.add(
                Counter::MsgsRetried,
                self.fault_stats.retransmissions + self.fault_stats.steal_retries,
            );
            self.metrics.phase_end(Phase::EventDispatch);
        }
        assert_eq!(
            self.tasks_spawned, self.tasks_executed,
            "task conservation violated: spawned {} executed {}",
            self.tasks_spawned, self.tasks_executed
        );
    }

    // -- worker bookkeeping --------------------------------------------------

    fn place_of(&self, w: GlobalWorkerId) -> PlaceId {
        self.cfg.cluster.place_of(w)
    }

    /// Recompute worker `w`'s bits from its state. Must follow every
    /// mutation of `counted`, `status` or `wake_pending`.
    #[inline]
    fn refresh_bits(&mut self, w: GlobalWorkerId) {
        let i = w.index();
        let ws = &self.workers[i];
        let unpended = !ws.wake_pending;
        set_bit(
            &mut self.idle_bits,
            i,
            !ws.counted && ws.status != WorkerStatus::Busy,
        );
        set_bit(
            &mut self.dormant_bits,
            i,
            ws.status == WorkerStatus::Dormant && unpended,
        );
        set_bit(
            &mut self.quiesced_bits,
            i,
            ws.status == WorkerStatus::Quiesced && unpended,
        );
    }

    fn claim(&mut self, w: GlobalWorkerId) {
        let p = self.place_of(w).index();
        if !self.workers[w.index()].counted {
            self.workers[w.index()].counted = true;
            self.board.busy[p] += 1;
            self.refresh_bits(w);
        }
    }

    fn unclaim(&mut self, w: GlobalWorkerId) {
        let p = self.place_of(w).index();
        if self.workers[w.index()].counted {
            self.workers[w.index()].counted = false;
            self.board.busy[p] -= 1;
            self.refresh_bits(w);
        }
    }

    fn wake(&mut self, now: u64, w: GlobalWorkerId, delay: u64, strong: bool) {
        let ws = &mut self.workers[w.index()];
        if ws.wake_pending || ws.status == WorkerStatus::Busy {
            return;
        }
        if ws.status == WorkerStatus::Quiesced && !strong {
            return;
        }
        ws.wake_pending = true;
        self.refresh_bits(w);
        self.schedule(now + delay, EventKind::Wake(w, strong));
    }

    fn on_wake(&mut self, now: u64, w: GlobalWorkerId, strong: bool) {
        self.workers[w.index()].wake_pending = false;
        self.refresh_bits(w);
        match self.workers[w.index()].status {
            WorkerStatus::Busy => {}
            WorkerStatus::Quiesced if !strong => {}
            _ => self.acquire(now, w),
        }
    }

    fn on_free(&mut self, now: u64, w: GlobalWorkerId) {
        self.tasks_executed += 1;
        if let Some(task) = self.running[w.index()].take() {
            if self.tracing {
                self.emit(now, w, TraceEventKind::TaskEnd { task });
            }
        }
        let latch = std::mem::replace(&mut self.workers[w.index()].finishing_latch, NO_LATCH);
        // Leave Busy state before acquiring again.
        self.workers[w.index()].status = WorkerStatus::Dormant;
        self.refresh_bits(w);
        if latch != NO_LATCH {
            if let Some(cont) = self.latches.complete_one(latch) {
                // Release the continuation from this place.
                let here = self.place_of(w);
                let cont_home = cont.home;
                let fp = cont.migration_bytes();
                let tr = self.make_task(cont, here, Some(w));
                if self.tracing {
                    let task = self.tasks.get(tr).id;
                    self.emit(now, w, TraceEventKind::Spawn { task });
                }
                if cont_home == here {
                    self.schedule(now, EventKind::Arrive(tr));
                } else {
                    let bytes = self.cfg.cost.closure_bytes + fp;
                    let cost =
                        self.reliable_send(now, here, cont_home, MsgKind::TaskMigrate, bytes);
                    self.drain_net(now, w);
                    self.schedule(now + cost, EventKind::Arrive(tr));
                }
            }
        }
        // A worker on a failed place flushes its finished task (the
        // body already ran) and halts instead of stealing again.
        if self.faulty && !self.alive[self.place_of(w).index()] {
            self.unclaim(w);
            return;
        }
        self.acquire(now, w);
    }

    // -- mapping (Algorithm 1 lines 1–8) --------------------------------------

    fn map_and_enqueue(&mut self, now: u64, tr: TaskRef) {
        let place = self.tasks.get(tr).exec_home;
        // A task landing at a dead place was in flight when the place
        // failed (or was queued behind the failure event): recover it.
        if self.faulty && !self.alive[place.index()] {
            self.recover_task(now, tr, place, 0);
            return;
        }
        let meta = {
            let task = self.tasks.get(tr);
            TaskMeta {
                home: place,
                locality: task.locality,
                spawned_at: task.spawned_at,
                est_cost_ns: task.est,
                footprint_bytes: task.footprint.total_bytes(),
            }
        };
        let choice = self.policy.map_task(&meta, &self.board, &mut self.rng);
        match choice {
            DequeChoice::Private => {
                let spawner = self.tasks.get(tr).spawner;
                let target = self.pick_private_target(place, spawner);
                let cap_before = self.workers[target.index()].deque.capacity();
                self.workers[target.index()].deque.push(tr);
                self.board.private_len[target.index()] += 1;
                if self.metering {
                    let d = &self.workers[target.index()].deque;
                    if d.capacity() > cap_before {
                        self.metrics.add(Counter::DequeGrows, 1);
                    }
                    let len = d.len() as u64;
                    self.metrics.gauge_max(Gauge::PrivateDequeMaxDepth, len);
                }
                self.claim(target);
                let d = self.cfg.cost.private_deque_op_ns;
                self.wake(now, target, d, true);
            }
            DequeChoice::Shared => {
                // Lifeline push path: hand the task straight to a
                // quiesced dependent instead of pooling it.
                if self.policy.uses_lifelines()
                    && !self.places[place.index()].lifeline_dependents.is_empty()
                {
                    // Dead dependents were purged at fail time, but a
                    // dependent may die between purge and push; skip
                    // any that did.
                    while let Some(&q) = self.places[place.index()].lifeline_dependents.first() {
                        self.places[place.index()].lifeline_dependents.remove(0);
                        if self.alive[q.index()] {
                            self.push_to_lifeline(now, place, q, tr);
                            return;
                        }
                    }
                }
                let cap_before = self.places[place.index()].shared.capacity();
                self.places[place.index()].shared.push(tr);
                self.board.shared_len[place.index()] += 1;
                if self.metering {
                    let q = &self.places[place.index()].shared;
                    if q.capacity() > cap_before {
                        self.metrics.add(Counter::DequeGrows, 1);
                    }
                    let len = q.len() as u64;
                    self.metrics.gauge_max(Gauge::SharedDequeMaxDepth, len);
                }
                self.wake_for_shared(now, place);
            }
        }
        // Any arrival of work also prods quiesced workers of the place
        // (they re-run their loop and re-quiesce if they lose the race).
        // Word-snapshot iteration: a wake only clears the woken
        // worker's own bit, already removed from the snapshot.
        let wpp = self.cfg.cluster.workers_per_place as usize;
        let start = place.index() * wpp;
        let end = start + wpp;
        for wd in start / 64..=(end - 1) / 64 {
            let mut m = range_word(&self.quiesced_bits, wd, start, end);
            while m != 0 {
                let w = GlobalWorkerId((wd * 64 + m.trailing_zeros() as usize) as u32);
                m &= m - 1;
                let d = self.cfg.cost.shared_deque_op_ns + w.0 as u64;
                self.wake(now, w, d, true);
            }
        }
    }

    fn pick_private_target(
        &mut self,
        place: PlaceId,
        spawner: Option<GlobalWorkerId>,
    ) -> GlobalWorkerId {
        let wpp = self.cfg.cluster.workers_per_place;
        // Prefer an idle (unclaimed, parked) worker — Algorithm 1 maps
        // tasks on under-utilized places directly to idle workers. The
        // bitset scan returns the lowest-indexed idle worker, the same
        // worker the former linear scan found.
        let start = place.index() * wpp as usize;
        let end = start + wpp as usize;
        for wd in start / 64..=(end - 1) / 64 {
            let m = range_word(&self.idle_bits, wd, start, end);
            if m != 0 {
                return GlobalWorkerId((wd * 64 + m.trailing_zeros() as usize) as u32);
            }
        }
        // Help-first: the spawning worker keeps its own children.
        if let Some(s) = spawner {
            if self.place_of(s) == place {
                return s;
            }
        }
        // Round-robin fallback.
        let p = &mut self.places[place.index()];
        let w = self
            .cfg
            .cluster
            .global(place, distws_core::WorkerId(p.rr % wpp));
        p.rr = p.rr.wrapping_add(1);
        w
    }

    fn wake_for_shared(&mut self, now: u64, place: PlaceId) {
        let places = self.cfg.cluster.places;
        let wpp = self.cfg.cluster.workers_per_place as usize;
        let base = self.cfg.cost.shared_deque_op_ns;
        // All dormant co-located workers, in ascending worker order
        // (word-snapshot iteration, see map_and_enqueue).
        let start = place.index() * wpp;
        let end = start + wpp;
        for wd in start / 64..=(end - 1) / 64 {
            let mut m = range_word(&self.dormant_bits, wd, start, end);
            while m != 0 {
                let w = GlobalWorkerId((wd * 64 + m.trailing_zeros() as usize) as u32);
                m &= m - 1;
                self.wake(now, w, base + w.0 as u64, false);
            }
        }
        // A bounded number of remote dormant workers (they will pay
        // their own probe round trips when they retry): the first
        // dormant unpended worker of each of the next places.
        let mut budget = self.cfg.remote_wake_limit;
        for off in 1..places {
            if budget == 0 {
                break;
            }
            let p = PlaceId((place.0 + off) % places);
            let start = p.index() * wpp;
            let end = start + wpp;
            for wd in start / 64..=(end - 1) / 64 {
                let m = range_word(&self.dormant_bits, wd, start, end);
                if m != 0 {
                    let w = GlobalWorkerId((wd * 64 + m.trailing_zeros() as usize) as u32);
                    // Discovery delay: one network round trip.
                    let d = base + 2 * self.cfg.cost.net_latency_ns + w.0 as u64;
                    self.wake(now, w, d, false);
                    budget -= 1;
                    break;
                }
            }
        }
    }

    fn push_to_lifeline(&mut self, now: u64, from: PlaceId, to: PlaceId, tr: TaskRef) {
        let (locality, bytes) = {
            let task = self.tasks.get(tr);
            (task.locality, task.footprint.total_bytes())
        };
        assert!(
            self.policy.may_migrate(locality),
            "lifeline push of non-migratable task"
        );
        let cost = self.reliable_send(
            now,
            from,
            to,
            MsgKind::TaskMigrate,
            self.cfg.cost.closure_bytes + bytes,
        );
        {
            let task = self.tasks.get_mut(tr);
            task.exec_home = to;
            task.carried = true;
        }
        self.steals.remote += 1;
        // A lifeline push is a tier-2 acquisition with no thief-side
        // attempt, so only the success counter moves.
        if self.metering {
            self.metrics.add(Counter::steal_successes(2), 1);
        }
        if self.tracing {
            // The push is place-level (no thief worker yet); attribute
            // it to the victim place's first worker.
            let task = self.tasks.get(tr).id;
            let w = self.cfg.cluster.global(from, distws_core::WorkerId(0));
            self.drain_net(now, w);
            self.emit(now, w, TraceEventKind::Migration { task, from, to });
        }
        self.schedule(now + cost, EventKind::Arrive(tr));
    }

    // -- stealing (Algorithm 1 lines 9–29) ------------------------------------

    fn acquire(&mut self, now: u64, w: GlobalWorkerId) {
        let place = self.place_of(w);
        // A worker on a dead place never steals again (until restart).
        if self.faulty && !self.alive[place.index()] {
            self.unclaim(w);
            self.workers[w.index()].status = WorkerStatus::Dormant;
            self.refresh_bits(w);
            return;
        }
        // Serialize this worker's activities: a steal round cannot
        // start before the previous round / task ended.
        let now = now.max(self.workers[w.index()].avail_at);
        let mut steps = std::mem::take(&mut self.steal_buf);
        self.policy
            .steal_sequence_into(w, &self.board, &mut self.rng, &mut steps);
        let mut overhead = 0u64;
        let mut got: Option<TaskRef> = None;
        let mut quiesce = false;

        for &step in steps.iter() {
            if self.metering {
                if let Some(tier) = step.tier_index() {
                    self.metrics.add(Counter::steal_attempts(tier), 1);
                }
            }
            match step {
                StealStep::PollPrivate => {
                    overhead += self.cfg.cost.private_deque_op_ns;
                    if let Some(t) = self.workers[w.index()].deque.pop() {
                        self.board.private_len[w.index()] -= 1;
                        got = Some(t);
                    }
                }
                StealStep::ProbeNetwork => {
                    if self.tracing {
                        self.emit(now + overhead, w, TraceEventKind::NetProbe);
                    }
                    overhead += self.cfg.cost.network_probe_ns;
                }
                StealStep::StealCoWorker => {
                    if self.tracing {
                        self.emit(
                            now + overhead,
                            w,
                            TraceEventKind::StealAttempt {
                                tier: StealTier::LocalPrivate,
                            },
                        );
                    }
                    let wpp = self.cfg.cluster.workers_per_place;
                    let local = w.local(wpp).0;
                    for off in 1..wpp {
                        let v = self
                            .cfg
                            .cluster
                            .global(place, distws_core::WorkerId((local + off) % wpp));
                        overhead += self.cfg.cost.private_deque_op_ns;
                        if let Some(t) = self.workers[v.index()].deque.steal() {
                            self.board.private_len[v.index()] -= 1;
                            overhead += self.cfg.cost.local_steal_ns;
                            self.steals.local_private += 1;
                            if self.metering {
                                self.metrics.add(Counter::steal_successes(0), 1);
                            }
                            self.hists.steal_local_private.record(overhead);
                            if self.tracing {
                                let task = self.tasks.get(t).id;
                                self.emit(
                                    now + overhead,
                                    w,
                                    TraceEventKind::StealSuccess {
                                        tier: StealTier::LocalPrivate,
                                        task,
                                        victim: place,
                                        latency_ns: overhead,
                                    },
                                );
                            }
                            got = Some(t);
                            break;
                        }
                    }
                }
                StealStep::StealLocalShared => {
                    if self.tracing {
                        self.emit(
                            now + overhead,
                            w,
                            TraceEventKind::StealAttempt {
                                tier: StealTier::LocalShared,
                            },
                        );
                    }
                    overhead += self.cfg.cost.shared_deque_op_ns;
                    if let Some(t) = self.places[place.index()].shared.take() {
                        self.board.shared_len[place.index()] -= 1;
                        self.steals.local_shared += 1;
                        if self.metering {
                            self.metrics.add(Counter::steal_successes(1), 1);
                        }
                        self.hists.steal_local_shared.record(overhead);
                        if self.tracing {
                            let task = self.tasks.get(t).id;
                            self.emit(
                                now + overhead,
                                w,
                                TraceEventKind::StealSuccess {
                                    tier: StealTier::LocalShared,
                                    task,
                                    victim: place,
                                    latency_ns: overhead,
                                },
                            );
                        }
                        got = Some(t);
                    }
                }
                StealStep::StealRemoteShared(victim) => {
                    if self.tracing {
                        self.emit(
                            now + overhead,
                            w,
                            TraceEventKind::StealAttempt {
                                tier: StealTier::Remote,
                            },
                        );
                    }
                    if self.faulty {
                        self.remote_steal_faulty(now, &mut overhead, w, place, victim, &mut got);
                        if got.is_some() {
                            break;
                        }
                        continue;
                    }
                    if self.board.shared_len[victim.index()] == 0 {
                        overhead += self.net.failed_steal(place, victim);
                        self.drain_net(now + overhead, w);
                        self.steals.failed_attempts += 1;
                        continue;
                    }
                    let victim_len = self.board.shared_len[victim.index()];
                    let chunk = self.policy.remote_chunk_for(victim_len);
                    let mut taken = std::mem::take(&mut self.chunk_buf);
                    self.places[victim.index()]
                        .shared
                        .take_chunk_into(chunk, &mut taken);
                    self.board.shared_len[victim.index()] -= taken.len();
                    let mut bytes = 0;
                    for &t in &taken {
                        let locality = self.tasks.get(t).locality;
                        assert!(
                            self.policy.may_migrate(locality),
                            "policy {} migrated a non-migratable task",
                            self.policy.name()
                        );
                        bytes +=
                            self.cfg.cost.closure_bytes + self.tasks.get(t).footprint.total_bytes();
                    }
                    overhead += self.net.migrate_task(victim, place, bytes);
                    self.drain_net(now + overhead, w);
                    self.steals.remote += taken.len() as u64;
                    if self.metering {
                        self.metrics
                            .add(Counter::steal_successes(2), taken.len() as u64);
                    }
                    if let Some(&first) = taken.first() {
                        {
                            let t = self.tasks.get_mut(first);
                            t.exec_home = place;
                            t.carried = true;
                        }
                        self.hists.steal_remote.record(overhead);
                        if self.tracing {
                            let task = self.tasks.get(first).id;
                            self.emit(
                                now + overhead,
                                w,
                                TraceEventKind::StealSuccess {
                                    tier: StealTier::Remote,
                                    task,
                                    victim,
                                    latency_ns: overhead,
                                },
                            );
                            self.emit(
                                now + overhead,
                                w,
                                TraceEventKind::Migration {
                                    task,
                                    from: victim,
                                    to: place,
                                },
                            );
                        }
                        got = Some(first);
                    }
                    // Chunk extras land at the thief place and are
                    // re-mapped there, feeding co-located workers.
                    let arrive_at = now + overhead;
                    for &t in taken.iter().skip(1) {
                        {
                            let t = self.tasks.get_mut(t);
                            t.exec_home = place;
                            t.carried = true;
                        }
                        if self.tracing {
                            let task = self.tasks.get(t).id;
                            self.emit(
                                arrive_at,
                                w,
                                TraceEventKind::Migration {
                                    task,
                                    from: victim,
                                    to: place,
                                },
                            );
                        }
                        self.schedule(arrive_at, EventKind::Arrive(t));
                    }
                    taken.clear();
                    self.chunk_buf = taken;
                }
                StealStep::Quiesce => {
                    quiesce = true;
                    break;
                }
            }
            if got.is_some() {
                break;
            }
        }
        self.steal_buf = steps;

        if quiesce {
            self.workers[w.index()].overhead_ns += overhead;
            self.workers[w.index()].avail_at = now + overhead;
            self.makespan = self.makespan.max(now + overhead);
            self.unclaim(w);
            self.workers[w.index()].status = WorkerStatus::Quiesced;
            self.refresh_bits(w);
            self.note_parked(now + overhead, w);
            // Register on the lifeline partners.
            let partners = self
                .policy
                .lifeline_partners(place, self.cfg.cluster.places);
            for o in partners {
                let deps = &mut self.places[o.index()].lifeline_dependents;
                if !deps.contains(&place) {
                    deps.push(place);
                }
            }
            return;
        }

        self.workers[w.index()].overhead_ns += overhead;
        self.workers[w.index()].avail_at = now + overhead;
        self.makespan = self.makespan.max(now + overhead);
        self.policy.note_result(w, got.is_some());
        match got {
            Some(tr) => self.start_task(now + overhead, w, tr),
            None => {
                self.steals.failed_attempts += 1;
                self.unclaim(w);
                self.workers[w.index()].status = WorkerStatus::Dormant;
                self.refresh_bits(w);
                self.note_parked(now + overhead, w);
            }
        }
    }

    /// Fault-tolerant remote steal probe (Algorithm 1 line 24 under an
    /// unreliable interconnect). The probe carries a timeout: a lost
    /// request, lost reply, lost migration payload or dead victim all
    /// surface as a timeout, after which the thief backs off
    /// exponentially (with jitter) and retries the same victim while
    /// its budget lasts, then falls through to the next victim in the
    /// steal order. A chunk whose migration payload is lost stays
    /// owned by the victim (lease): it is re-enqueued there once the
    /// lease expires — never lost, never double-run.
    fn remote_steal_faulty(
        &mut self,
        now: u64,
        overhead: &mut u64,
        w: GlobalWorkerId,
        place: PlaceId,
        victim: PlaceId,
        got: &mut Option<TaskRef>,
    ) {
        let retry = self.retry;
        let mut attempt: u32 = 1;
        loop {
            let send_t = now + *overhead;
            let req = self
                .net
                .transmit(send_t, place, victim, MsgKind::StealRequest, 64);
            // A dead victim never answers, whatever happened to the
            // request on the wire.
            if self.alive[victim.index()] {
                if let SendFate::Delivered { cost_ns: c_req } = req {
                    if self.board.shared_len[victim.index()] == 0 {
                        if let SendFate::Delivered { cost_ns: c_rep } = self.net.transmit(
                            send_t + c_req,
                            victim,
                            place,
                            MsgKind::StealReply,
                            16,
                        ) {
                            // Clean round trip, empty victim: behave
                            // exactly like the fault-free failed probe.
                            *overhead += c_req + c_rep;
                            self.drain_net(now + *overhead, w);
                            self.steals.failed_attempts += 1;
                            return;
                        }
                        // Reply lost → thief times out below.
                    } else {
                        let victim_len = self.board.shared_len[victim.index()];
                        let chunk = self.policy.remote_chunk_for(victim_len);
                        let mut taken = std::mem::take(&mut self.chunk_buf);
                        self.places[victim.index()]
                            .shared
                            .take_chunk_into(chunk, &mut taken);
                        self.board.shared_len[victim.index()] -= taken.len();
                        let mut bytes = 0;
                        for &t in &taken {
                            let locality = self.tasks.get(t).locality;
                            assert!(
                                self.policy.may_migrate(locality),
                                "policy {} migrated a non-migratable task",
                                self.policy.name()
                            );
                            bytes += self.cfg.cost.closure_bytes
                                + self.tasks.get(t).footprint.total_bytes();
                        }
                        match self.net.transmit(
                            send_t + c_req,
                            victim,
                            place,
                            MsgKind::TaskMigrate,
                            bytes,
                        ) {
                            SendFate::Delivered { cost_ns: c_mig } => {
                                *overhead += c_req + c_mig;
                                self.drain_net(now + *overhead, w);
                                self.steals.remote += taken.len() as u64;
                                if self.metering {
                                    self.metrics
                                        .add(Counter::steal_successes(2), taken.len() as u64);
                                }
                                if let Some(&first) = taken.first() {
                                    {
                                        let t = self.tasks.get_mut(first);
                                        t.exec_home = place;
                                        t.carried = true;
                                    }
                                    self.hists.steal_remote.record(*overhead);
                                    if self.tracing {
                                        let task = self.tasks.get(first).id;
                                        self.emit(
                                            now + *overhead,
                                            w,
                                            TraceEventKind::StealSuccess {
                                                tier: StealTier::Remote,
                                                task,
                                                victim,
                                                latency_ns: *overhead,
                                            },
                                        );
                                        self.emit(
                                            now + *overhead,
                                            w,
                                            TraceEventKind::Migration {
                                                task,
                                                from: victim,
                                                to: place,
                                            },
                                        );
                                    }
                                    *got = Some(first);
                                }
                                let arrive_at = now + *overhead;
                                for &t in taken.iter().skip(1) {
                                    {
                                        let t = self.tasks.get_mut(t);
                                        t.exec_home = place;
                                        t.carried = true;
                                    }
                                    if self.tracing {
                                        let task = self.tasks.get(t).id;
                                        self.emit(
                                            arrive_at,
                                            w,
                                            TraceEventKind::Migration {
                                                task,
                                                from: victim,
                                                to: place,
                                            },
                                        );
                                    }
                                    self.schedule(arrive_at, EventKind::Arrive(t));
                                }
                                taken.clear();
                                self.chunk_buf = taken;
                                return;
                            }
                            SendFate::Dropped => {
                                // Migration payload lost. The victim
                                // retains ownership of the chunk via
                                // its lease table and re-enqueues the
                                // tasks (still homed there) when the
                                // lease expires; the thief times out.
                                self.fault_stats.lease_reclaims += taken.len() as u64;
                                let reclaim_at = send_t + c_req + self.lease_timeout_ns;
                                for &t in &taken {
                                    self.schedule(reclaim_at, EventKind::Arrive(t));
                                }
                                taken.clear();
                                self.chunk_buf = taken;
                            }
                        }
                    }
                }
            }
            // Timeout: request, reply or payload never arrived — or
            // the victim is dead.
            *overhead += retry.timeout_ns;
            self.drain_net(now + *overhead, w);
            self.fault_stats.steal_timeouts += 1;
            self.steals.failed_attempts += 1;
            if self.tracing {
                self.emit(
                    now + *overhead,
                    w,
                    TraceEventKind::StealTimeout { victim, attempt },
                );
            }
            if attempt > retry.budget {
                return;
            }
            self.fault_stats.steal_retries += 1;
            *overhead += retry.backoff_ns(attempt, &mut self.fault_rng);
            attempt += 1;
        }
    }

    // -- execution -------------------------------------------------------------

    fn start_task(&mut self, t: u64, w: GlobalWorkerId, tr: TaskRef) {
        // Take the task out of the arena; its slot is immediately
        // reusable by the children this execution spawns.
        let task = self.tasks.take(tr);
        let place = self.place_of(w);
        self.claim(w);
        self.workers[w.index()].status = WorkerStatus::Busy;
        self.refresh_bits(w);
        self.note_unparked(t, w);
        if self.tracing {
            self.emit(t, w, TraceEventKind::TaskStart { task: task.id });
        }
        self.running[w.index()] = Some(task.id);

        // Run the body for real, recording its behaviour into the
        // engine's reusable spawn/access buffers.
        let mut scope = SimScope::with_buffers(
            place,
            task.origin_home,
            w,
            task.id,
            std::mem::take(&mut self.spawn_buf),
            std::mem::take(&mut self.access_buf),
        );
        if self.metering {
            self.metrics.phase_start(Phase::TaskExecution);
        }
        (task.body)(&mut scope);
        if self.metering {
            self.metrics.phase_end(Phase::TaskExecution);
        }

        // Pure compute.
        let work = task.est + scope.charged;
        self.total_work += work;
        let mut duration = work;

        // Spawn bookkeeping cost (help-first push per child; DistWS
        // additionally pays the mapping/status overhead per spawn).
        let per_spawn = self.cfg.cost.private_deque_op_ns
            + if self.policy.has_mapping_overhead() {
                self.cfg.cost.mapping_overhead_ns
            } else {
                0
            };
        duration += scope.spawned.len() as u64 * per_spawn;

        // Data accesses: remote references + cache model.
        for a in &scope.accesses {
            let local = a.home == place || (task.carried && task.footprint.contains(a.obj));
            if !local {
                if !self.faulty {
                    duration += self.net.remote_ref(place, a.home, a.bytes);
                } else if self.alive[a.home.index()] {
                    // Per-leg fault-aware round trip; each lost leg is
                    // retransmitted after an ack timeout.
                    let req = self.reliable_send(t, place, a.home, MsgKind::DataRequest, 64);
                    let rep =
                        self.reliable_send(t + req, a.home, place, MsgKind::DataReply, a.bytes);
                    duration += req + rep;
                } else {
                    // Data homed at a dead place: modelled as served
                    // by a replica after the failure-detection delay
                    // (no messages charged) — see docs/faults.md.
                    duration += self.detect_ns;
                }
                self.remote_refs += 1;
                if self.tracing {
                    self.drain_net(t, w);
                    self.emit(
                        t,
                        w,
                        TraceEventKind::RemoteRef {
                            task: task.id,
                            home: a.home,
                            bytes: a.bytes,
                        },
                    );
                }
            }
            if let Some(cache) = self.workers[w.index()].cache.as_mut() {
                let misses = cache.access(a.obj.0, a.offset, a.bytes);
                duration += misses * self.cfg.cost.l1_miss_penalty_ns;
            }
        }

        // Straggler model: a slow place stretches everything its
        // workers do (compute, spawn bookkeeping, stalls).
        if self.faulty {
            let f = self.slow[place.index()];
            if f != 1.0 {
                duration = (duration as f64 * f) as u64;
            }
        }

        self.hists.granularity.record(duration);
        self.workers[w.index()].busy_ns += duration;
        let finish = t + duration;
        self.workers[w.index()].avail_at = finish;
        self.makespan = self.makespan.max(finish);

        // Release children at evenly interpolated points of the
        // execution window (a coarse task feeds the cluster while it
        // runs, as under a real help-first runtime).
        let n = scope.spawned.len() as u64;
        for (i, spec) in scope.spawned.drain(..).enumerate() {
            let rt = t + duration * (i as u64 + 1) / (n + 1);
            let child_home = spec.home;
            let fp = spec.migration_bytes();
            let child = self.make_task(spec, place, Some(w));
            if self.tracing {
                let task = self.tasks.get(child).id;
                self.emit(rt, w, TraceEventKind::Spawn { task });
            }
            if child_home == place {
                self.schedule(rt, EventKind::Arrive(child));
            } else {
                // Cross-place `async at` launch: a real message
                // (retransmitted under faults until one copy lands).
                let bytes = self.cfg.cost.closure_bytes + fp;
                let cost = self.reliable_send(rt, place, child_home, MsgKind::TaskMigrate, bytes);
                self.drain_net(rt, w);
                self.schedule(rt + cost, EventKind::Arrive(child));
            }
        }

        // Hand the (now empty) buffers back for the next execution.
        scope.accesses.clear();
        self.spawn_buf = scope.spawned;
        self.access_buf = scope.accesses;

        self.workers[w.index()].finishing_latch = task.latch;
        self.schedule(finish, EventKind::Free(w));
    }

    // -- reporting ---------------------------------------------------------------

    fn into_report(self, app: &str) -> RunReport {
        let cluster = self.cfg.cluster.clone();
        let wpp = cluster.workers_per_place as usize;
        let makespan = self.makespan.max(1);
        let mut per_place = Vec::with_capacity(cluster.places as usize);
        for p in 0..cluster.places as usize {
            let total: u64 = self.workers[p * wpp..(p + 1) * wpp]
                .iter()
                .map(|w| w.busy_ns + w.overhead_ns)
                .sum();
            per_place.push(total as f64 / (makespan as f64 * wpp as f64));
        }
        let mut cache = CacheSummary::default();
        for w in &self.workers {
            if let Some(c) = &w.cache {
                cache.accesses += c.stats().accesses;
                cache.misses += c.stats().misses;
            }
        }
        RunReport {
            scheduler: self.policy.name().to_string(),
            app: app.to_string(),
            config: cluster,
            makespan_ns: self.makespan,
            total_work_ns: self.total_work,
            tasks_spawned: self.tasks_spawned,
            tasks_executed: self.tasks_executed,
            steals: self.steals,
            messages: *self.net.counts(),
            cache,
            utilization: UtilizationSummary { per_place },
            remote_refs: self.remote_refs,
            percentiles: distws_core::RunPercentiles {
                steal_local_private_ns: self.hists.steal_local_private.summary(),
                steal_local_shared_ns: self.hists.steal_local_shared.summary(),
                steal_remote_ns: self.hists.steal_remote.summary(),
                task_granularity_ns: self.hists.granularity.summary(),
                dormancy_ns: self.hists.dormancy.summary(),
            },
            faults: FaultSummary {
                msgs_dropped: self.net.counts().dropped.total(),
                msgs_duplicated: self.net.counts().duplicated.total(),
                ..self.fault_stats
            },
        }
    }
}
