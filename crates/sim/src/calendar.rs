//! A calendar (bucket) event queue for the DES hot path.
//!
//! [`CalendarQueue`] replaces the engine's former single global
//! `BinaryHeap<Event>`: future events are spread over a ring of
//! fixed-width virtual-time buckets (Brown's calendar queue), so a
//! push is O(1) routing instead of an O(log n) sift through one heap
//! holding every pending event. Only the *active window* — the
//! earliest bucket — is kept heap-ordered, and pops come from it.
//!
//! The pop order is **exactly** the `(time, seq)` order of a single
//! binary heap (property-tested in `tests/calendar.rs`): `seq` is a
//! monotone push counter, so ties on virtual time break in push order,
//! byte-for-byte reproducing the pre-calendar event schedule. The
//! structure relies on the DES invariant that a push is never earlier
//! than the event currently being dispatched; a push below the active
//! window still lands in the active heap and stays correctly ordered.
//!
//! Bucket width is chosen adaptively: the queue starts unbucketed
//! (everything pools in an overflow bin) and on the first pop — and
//! whenever ring and window drain while the overflow holds events —
//! it re-buckets, sizing `width` so the observed span spreads at
//! roughly one event per bucket across a [`RING_BUCKETS`]-slot ring.
//! Far-future events (beyond the ring horizon, e.g. fault-injection
//! kills) wait in the overflow bin until the window reaches them.

use std::collections::BinaryHeap;

/// Number of bucket slots in the ring. 512 buckets at the adaptive
/// width cover the observed event span; a larger ring only helps
/// pathologically sparse schedules, which re-bucket instead.
pub const RING_BUCKETS: usize = 512;

struct Entry<T> {
    time: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Calendar/bucket priority queue popping `(time, push order)` minima.
pub struct CalendarQueue<T> {
    /// Heap over the active window: every queued event with
    /// `time < active_end` is here, so its minimum is the global one.
    active: BinaryHeap<Entry<T>>,
    /// Exclusive virtual-time bound of the active window.
    active_end: u64,
    /// Bucket width in virtual ns; 0 = unbucketed startup state.
    width: u64,
    /// `ring[(base + i) % RING_BUCKETS]` covers
    /// `[active_end + i*width, active_end + (i+1)*width)`, unsorted.
    ring: Vec<Vec<Entry<T>>>,
    base: usize,
    ring_len: usize,
    /// Events beyond the ring horizon (and everything pre-first-pop).
    overflow: Vec<Entry<T>>,
    /// Earliest time in `overflow` (`u64::MAX` when empty). The pop
    /// path folds overflow events back into the active window the
    /// moment the window reaches them, so a stream of near-term pushes
    /// can never advance the ring past a parked far-future event.
    overflow_min: u64,
    seq: u64,
    len: usize,
}

impl<T> CalendarQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            active: BinaryHeap::new(),
            active_end: 0,
            width: 0,
            ring: (0..RING_BUCKETS).map(|_| Vec::new()).collect(),
            base: 0,
            ring_len: 0,
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            seq: 0,
            len: 0,
        }
    }

    /// Queued event count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queue `item` at `time`. Ties on `time` pop in push order.
    pub fn push(&mut self, time: u64, item: T) {
        self.seq += 1;
        let e = Entry {
            time,
            seq: self.seq,
            item,
        };
        self.len += 1;
        self.route(e);
    }

    fn route(&mut self, e: Entry<T>) {
        if self.width == 0 {
            self.overflow_min = self.overflow_min.min(e.time);
            self.overflow.push(e);
            return;
        }
        if e.time < self.active_end {
            self.active.push(e);
            return;
        }
        let idx = (e.time - self.active_end) / self.width;
        if idx < RING_BUCKETS as u64 {
            let slot = (self.base + idx as usize) % RING_BUCKETS;
            self.ring[slot].push(e);
            self.ring_len += 1;
        } else {
            self.overflow_min = self.overflow_min.min(e.time);
            self.overflow.push(e);
        }
    }

    /// Pop the earliest event (`(time, push order)` minimum).
    pub fn pop(&mut self) -> Option<(u64, T)> {
        loop {
            if let Some(e) = self.active.pop() {
                self.len -= 1;
                return Some((e.time, e.item));
            }
            if self.ring_len > 0 {
                // Advance the window to the next non-empty bucket and
                // heap its events. Bounded by RING_BUCKETS steps.
                loop {
                    let slot = self.base;
                    self.base = (self.base + 1) % RING_BUCKETS;
                    self.active_end += self.width;
                    // Fold back any overflow events the window has now
                    // reached: they order before (or tie-interleave
                    // with) this bucket's events.
                    if self.overflow_min < self.active_end {
                        self.drain_overflow_into_active();
                    }
                    if !self.ring[slot].is_empty() {
                        let bucket = std::mem::take(&mut self.ring[slot]);
                        self.ring_len -= bucket.len();
                        if self.active.is_empty() {
                            self.active = BinaryHeap::from(bucket);
                        } else {
                            self.active.extend(bucket);
                        }
                        break;
                    }
                    if !self.active.is_empty() {
                        // The fold-back alone put events in the window.
                        break;
                    }
                }
            } else if !self.overflow.is_empty() {
                self.rebucket();
            } else {
                return None;
            }
        }
    }

    /// Re-seed window, width and ring from the overflow bin: aim for
    /// one event per bucket over the span actually present.
    fn rebucket(&mut self) {
        let mut min = u64::MAX;
        let mut max = 0u64;
        for e in &self.overflow {
            min = min.min(e.time);
            max = max.max(e.time);
        }
        self.width = ((max - min) / self.overflow.len() as u64).max(1);
        self.active_end = min + self.width;
        self.base = 0;
        self.overflow_min = u64::MAX;
        for e in std::mem::take(&mut self.overflow) {
            self.route(e);
        }
    }

    /// Move every overflow event with `time < active_end` into the
    /// active heap, recomputing the watermark for the rest.
    fn drain_overflow_into_active(&mut self) {
        let bound = self.active_end;
        let mut min = u64::MAX;
        let mut i = 0;
        while i < self.overflow.len() {
            if self.overflow[i].time < bound {
                self.active.push(self.overflow.swap_remove(i));
            } else {
                min = min.min(self.overflow[i].time);
                i += 1;
            }
        }
        self.overflow_min = min;
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = CalendarQueue::new();
        q.push(30, "c");
        q.push(10, "a1");
        q.push(10, "a2");
        q.push(20, "b");
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((10, "a1")));
        assert_eq!(q.pop(), Some((10, "a2")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_monotone() {
        let mut q = CalendarQueue::new();
        q.push(0, 0u64);
        let mut last = 0;
        let mut popped = 0;
        let mut n = 0u64;
        while let Some((t, x)) = q.pop() {
            assert!(t >= last, "pop went backwards");
            last = t;
            popped += 1;
            // Each event schedules a couple more, DES style.
            if n < 200 {
                n += 1;
                q.push(t + (x * 7919) % 513, n);
                if n < 100 {
                    n += 1;
                    q.push(t + 100_000 + (x % 7) * 1_000_000, n);
                }
            }
        }
        assert_eq!(popped, n + 1);
    }

    #[test]
    fn far_future_events_survive_in_overflow() {
        let mut q = CalendarQueue::new();
        q.push(5, "near");
        q.push(10_000_000_000, "far"); // fault-kill style horizon
        q.push(6, "near2");
        assert_eq!(q.pop(), Some((5, "near")));
        assert_eq!(q.pop(), Some((6, "near2")));
        assert_eq!(q.pop(), Some((10_000_000_000, "far")));
        assert_eq!(q.pop(), None);
    }
}
