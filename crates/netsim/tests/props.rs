//! Randomized property tests for the network model, driven by seeded
//! SplitMix64 generation (each seed is one deterministic case).

use distws_core::rng::SplitMix64;
use distws_core::{CostModel, PlaceId};
use distws_netsim::{MsgKind, Network, Topology};

#[test]
fn cost_is_monotone_in_payload() {
    for seed in 0..200u64 {
        let mut rng = SplitMix64::new(0x9A9 + seed);
        let a = rng.below(1_000_000);
        let b = rng.below(1_000_000);
        let mut n = Network::new(4, CostModel::default(), Topology::FullyConnected);
        let (lo, hi) = (a.min(b), a.max(b));
        let c_lo = n.send(PlaceId(0), PlaceId(1), MsgKind::DataReply, lo);
        let c_hi = n.send(PlaceId(0), PlaceId(1), MsgKind::DataReply, hi);
        assert!(
            c_lo <= c_hi,
            "seed {seed}: cost not monotone ({c_lo} > {c_hi})"
        );
    }
}

#[test]
fn counters_are_additive() {
    for seed in 0..100u64 {
        let mut rng = SplitMix64::new(0xADD + seed);
        let msgs: Vec<(u32, u32, u64)> = (0..rng.below_usize(100))
            .map(|_| (rng.below(4) as u32, rng.below(4) as u32, rng.below(10_000)))
            .collect();
        let mut n = Network::new(4, CostModel::default(), Topology::FullyConnected);
        let mut expect_total = 0u64;
        let mut expect_bytes = 0u64;
        for (src, dst, bytes) in msgs {
            n.send(PlaceId(src), PlaceId(dst), MsgKind::Control, bytes);
            if src != dst {
                expect_total += 1;
                expect_bytes += bytes;
            }
        }
        assert_eq!(n.counts().total(), expect_total, "seed {seed}");
        assert_eq!(n.counts().bytes, expect_bytes, "seed {seed}");
    }
}

#[test]
fn ring_hops_are_symmetric_and_bounded() {
    for a in 0..16u32 {
        for b in 0..16u32 {
            let t = Topology::Ring;
            let ab = t.hops(PlaceId(a), PlaceId(b), 16);
            let ba = t.hops(PlaceId(b), PlaceId(a), 16);
            assert_eq!(ab, ba);
            assert!(ab <= 8, "ring distance over half the ring: {ab}");
        }
    }
}
