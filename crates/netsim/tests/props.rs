//! Property tests for the network model.

use distws_core::{CostModel, PlaceId};
use distws_netsim::{MsgKind, Network, Topology};
use proptest::prelude::*;

proptest! {
    #[test]
    fn cost_is_monotone_in_payload(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let mut n = Network::new(4, CostModel::default(), Topology::FullyConnected);
        let (lo, hi) = (a.min(b), a.max(b));
        let c_lo = n.send(PlaceId(0), PlaceId(1), MsgKind::DataReply, lo);
        let c_hi = n.send(PlaceId(0), PlaceId(1), MsgKind::DataReply, hi);
        prop_assert!(c_lo <= c_hi);
    }

    #[test]
    fn counters_are_additive(msgs in proptest::collection::vec((0u32..4, 0u32..4, 0u64..10_000), 0..100)) {
        let mut n = Network::new(4, CostModel::default(), Topology::FullyConnected);
        let mut expect_total = 0u64;
        let mut expect_bytes = 0u64;
        for (src, dst, bytes) in msgs {
            n.send(PlaceId(src), PlaceId(dst), MsgKind::Control, bytes);
            if src != dst {
                expect_total += 1;
                expect_bytes += bytes;
            }
        }
        prop_assert_eq!(n.counts().total(), expect_total);
        prop_assert_eq!(n.counts().bytes, expect_bytes);
    }

    #[test]
    fn ring_hops_are_symmetric_and_bounded(a in 0u32..16, b in 0u32..16) {
        let t = Topology::Ring;
        let ab = t.hops(PlaceId(a), PlaceId(b), 16);
        let ba = t.hops(PlaceId(b), PlaceId(a), 16);
        prop_assert_eq!(ab, ba);
        prop_assert!(ab <= 8, "ring distance over half the ring: {}", ab);
    }
}
