//! # distws-netsim
//!
//! Simulated cluster interconnect.
//!
//! The paper's testbed connects 16 nodes with 10 Gbit/s InfiniBand and
//! communicates through MVAPICH2. The scheduling results depend on two
//! properties of that fabric which this crate models exactly:
//!
//! 1. every cross-place interaction costs *latency + size/bandwidth*
//!    (per message), so remote steals are orders of magnitude more
//!    expensive than local deque operations, and
//! 2. the number of messages and bytes moved is observable — Table III
//!    of the paper counts messages transmitted across nodes per
//!    scheduler.
//!
//! [`Network::send`] charges a message between two places and returns
//! its virtual-time cost; intra-place "sends" are free and uncounted,
//! mirroring shared-memory communication within a node.

#![forbid(unsafe_code)]

pub mod fault;
pub mod topology;

pub use fault::{FaultPlan, LinkFault, Partition, SendFate};
pub use topology::Topology;

use distws_core::{CostModel, MessageCounts, PlaceId, SplitMix64};

/// Classification of cross-place messages, matching the events of
/// Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// A thief probing a remote shared deque.
    StealRequest,
    /// The victim's reply (may carry zero tasks).
    StealReply,
    /// Migration payload: serialized closure + encapsulated footprint.
    TaskMigrate,
    /// Request for data homed at a remote place.
    DataRequest,
    /// Reply carrying remote data.
    DataReply,
    /// Termination detection / place-status control traffic.
    Control,
}

/// One recorded cross-place message (see [`Network::set_recording`]).
/// The network has no clock; the engine drains the log right after the
/// call that produced the messages and stamps virtual time itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgRecord {
    /// Sending place.
    pub src: PlaceId,
    /// Receiving place.
    pub dst: PlaceId,
    /// Message classification.
    pub kind: MsgKind,
    /// Payload bytes.
    pub bytes: u64,
    /// Whether fault injection lost this message in flight. A dropped
    /// message still appears in the log (and in the sent counters) so
    /// the recording and `counts()` never disagree about what the
    /// sender transmitted.
    pub dropped: bool,
}

/// The simulated interconnect: cost model + topology + accounting.
#[derive(Debug, Clone)]
pub struct Network {
    cost: CostModel,
    topo: Topology,
    places: u32,
    counts: MessageCounts,
    /// Messages per directed edge, row-major `[src][dst]`.
    per_edge: Vec<u64>,
    /// Per-message log, populated only while `recording` (tracing).
    recording: bool,
    log: Vec<MsgRecord>,
    /// Fault injection: plan + dedicated random stream. `faulty` caches
    /// `!plan.is_empty()` so the clean path stays one branch and zero
    /// random draws.
    faults: FaultPlan,
    fault_rng: SplitMix64,
    faulty: bool,
}

impl Network {
    /// A network over `places` places with the given cost model and
    /// topology.
    pub fn new(places: u32, cost: CostModel, topo: Topology) -> Self {
        Network {
            cost,
            topo,
            places,
            counts: MessageCounts::default(),
            per_edge: vec![0; (places as usize) * (places as usize)],
            recording: false,
            log: Vec::new(),
            faults: FaultPlan::default(),
            fault_rng: SplitMix64::new(0),
            faulty: false,
        }
    }

    /// Install a fault plan with its own seeded random stream. An
    /// empty plan restores the exact fault-free behaviour (no random
    /// draws, identical costs and counters).
    pub fn set_fault_plan(&mut self, plan: FaultPlan, seed: u64) {
        self.faulty = !plan.is_empty();
        self.faults = plan;
        self.fault_rng = SplitMix64::new(seed);
    }

    /// The installed fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Enable or disable per-message logging. Off by default so
    /// untraced runs pay one branch per send and no allocation.
    pub fn set_recording(&mut self, on: bool) {
        self.recording = on;
        if !on {
            self.log = Vec::new();
        }
    }

    /// Drain the messages logged since the last call, in send order.
    /// Empty unless [`Self::set_recording`] was turned on.
    pub fn take_log(&mut self) -> Vec<MsgRecord> {
        std::mem::take(&mut self.log)
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The topology in use.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Send one message. Returns the virtual-time cost in ns. Messages
    /// within one place cost nothing and are not counted (shared
    /// memory).
    pub fn send(&mut self, src: PlaceId, dst: PlaceId, kind: MsgKind, payload_bytes: u64) -> u64 {
        if src == dst {
            return 0;
        }
        debug_assert!(src.0 < self.places && dst.0 < self.places);
        match kind {
            MsgKind::StealRequest => self.counts.steal_requests += 1,
            MsgKind::StealReply => self.counts.steal_replies += 1,
            MsgKind::TaskMigrate => self.counts.task_migrations += 1,
            MsgKind::DataRequest => self.counts.data_requests += 1,
            MsgKind::DataReply => self.counts.data_replies += 1,
            MsgKind::Control => self.counts.control += 1,
        }
        self.counts.bytes += payload_bytes;
        self.per_edge[src.index() * self.places as usize + dst.index()] += 1;
        if self.recording {
            self.log.push(MsgRecord {
                src,
                dst,
                kind,
                bytes: payload_bytes,
                dropped: false,
            });
        }
        let hops = self.topo.hops(src, dst, self.places) as u64;
        hops * self.cost.net_latency_ns + self.cost.transfer_ns(payload_bytes)
    }

    /// Fault-aware send. With an empty fault plan this is exactly
    /// [`Self::send`] — same cost, same counters, no random draws.
    /// With faults installed the message may be dropped (random loss
    /// or a partition window at virtual time `now`), delayed (jitter /
    /// latency spike) or duplicated; drops and duplicates are counted
    /// per kind and logged (dropped messages with `dropped: true`).
    pub fn transmit(
        &mut self,
        now: u64,
        src: PlaceId,
        dst: PlaceId,
        kind: MsgKind,
        payload_bytes: u64,
    ) -> SendFate {
        if !self.faulty || src == dst {
            return SendFate::Delivered {
                cost_ns: self.send(src, dst, kind, payload_bytes),
            };
        }
        let link = self.faults.link(src, dst);
        // Partition cuts are deterministic (no draw); random loss
        // draws only when the link is actually lossy, so plans that
        // only add jitter keep the drop stream untouched.
        let lost = self.faults.partitioned(now, src, dst)
            || (link.drop_p > 0.0 && self.fault_rng.next_f64() < link.drop_p);
        if lost {
            // The sender still paid for the transmission: count the
            // send as usual, then mark it dropped.
            self.send(src, dst, kind, payload_bytes);
            if let Some(rec) = self.log.last_mut() {
                rec.dropped = true;
            }
            self.bump_dropped(kind);
            return SendFate::Dropped;
        }
        let mut cost = self.send(src, dst, kind, payload_bytes);
        if link.jitter_ns > 0 {
            cost += self.fault_rng.below(link.jitter_ns + 1);
        }
        if link.spike_p > 0.0 && self.fault_rng.next_f64() < link.spike_p {
            cost += link.spike_ns;
        }
        if link.dup_p > 0.0 && self.fault_rng.next_f64() < link.dup_p {
            // The duplicate is extra traffic on the wire: count it as
            // a second send plus a duplication mark. The receiver
            // deduplicates, so it never affects scheduling.
            self.send(src, dst, kind, payload_bytes);
            self.bump_duplicated(kind);
        }
        SendFate::Delivered { cost_ns: cost }
    }

    fn bump_dropped(&mut self, kind: MsgKind) {
        let d = &mut self.counts.dropped;
        match kind {
            MsgKind::StealRequest => d.steal_requests += 1,
            MsgKind::StealReply => d.steal_replies += 1,
            MsgKind::TaskMigrate => d.task_migrations += 1,
            MsgKind::DataRequest => d.data_requests += 1,
            MsgKind::DataReply => d.data_replies += 1,
            MsgKind::Control => d.control += 1,
        }
    }

    fn bump_duplicated(&mut self, kind: MsgKind) {
        let d = &mut self.counts.duplicated;
        match kind {
            MsgKind::StealRequest => d.steal_requests += 1,
            MsgKind::StealReply => d.steal_replies += 1,
            MsgKind::TaskMigrate => d.task_migrations += 1,
            MsgKind::DataRequest => d.data_requests += 1,
            MsgKind::DataReply => d.data_replies += 1,
            MsgKind::Control => d.control += 1,
        }
    }

    /// Cost of a full task migration from victim place `src` to thief
    /// place `dst`: steal request + reply carrying closure + footprint.
    pub fn migrate_task(&mut self, src: PlaceId, dst: PlaceId, footprint_bytes: u64) -> u64 {
        let req = self.send(dst, src, MsgKind::StealRequest, 64);
        let closure = self.cost.closure_bytes;
        let reply = self.send(src, dst, MsgKind::TaskMigrate, closure + footprint_bytes);
        req + reply
    }

    /// Cost of a remote data reference of `bytes` from a task at `from`
    /// to data homed at `home`: request + data reply.
    pub fn remote_ref(&mut self, from: PlaceId, home: PlaceId, bytes: u64) -> u64 {
        let req = self.send(from, home, MsgKind::DataRequest, 64);
        let rep = self.send(home, from, MsgKind::DataReply, bytes);
        req + rep
    }

    /// A failed remote steal probe: request + empty reply.
    pub fn failed_steal(&mut self, thief: PlaceId, victim: PlaceId) -> u64 {
        let req = self.send(thief, victim, MsgKind::StealRequest, 64);
        let rep = self.send(victim, thief, MsgKind::StealReply, 16);
        req + rep
    }

    /// Accumulated message counters (Table III source data).
    pub fn counts(&self) -> &MessageCounts {
        &self.counts
    }

    /// Total messages sent across all kinds (metrics `msgs_sent`).
    pub fn sent_total(&self) -> u64 {
        self.counts.total()
    }

    /// Total messages lost in flight (metrics `msgs_dropped`).
    pub fn dropped_total(&self) -> u64 {
        self.counts.dropped.total()
    }

    /// Messages sent on the directed edge `src → dst`.
    pub fn edge_count(&self, src: PlaceId, dst: PlaceId) -> u64 {
        self.per_edge[src.index() * self.places as usize + dst.index()]
    }

    /// Reset all counters (between experiment phases).
    pub fn reset_counts(&mut self) {
        self.counts = MessageCounts::default();
        self.per_edge.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(4, CostModel::default(), Topology::FullyConnected)
    }

    #[test]
    fn intra_place_is_free_and_uncounted() {
        let mut n = net();
        assert_eq!(
            n.send(PlaceId(1), PlaceId(1), MsgKind::DataRequest, 1_000),
            0
        );
        assert_eq!(n.counts().total(), 0);
        assert_eq!(n.counts().bytes, 0);
    }

    #[test]
    fn cross_place_charges_latency_plus_bandwidth() {
        let mut n = net();
        let cost = n.send(PlaceId(0), PlaceId(1), MsgKind::DataReply, 1_000);
        let cm = CostModel::default();
        assert_eq!(cost, cm.net_latency_ns + cm.transfer_ns(1_000));
        assert_eq!(n.counts().data_replies, 1);
        assert_eq!(n.counts().bytes, 1_000);
        assert_eq!(n.edge_count(PlaceId(0), PlaceId(1)), 1);
        assert_eq!(n.edge_count(PlaceId(1), PlaceId(0)), 0);
    }

    #[test]
    fn migration_counts_request_and_payload() {
        let mut n = net();
        let cost = n.migrate_task(PlaceId(2), PlaceId(0), 4_096);
        assert!(cost >= 2 * CostModel::default().net_latency_ns);
        assert_eq!(n.counts().steal_requests, 1);
        assert_eq!(n.counts().task_migrations, 1);
        assert_eq!(n.counts().total(), 2);
        // payload includes the closure bytes on top of the footprint
        assert_eq!(
            n.counts().bytes,
            64 + CostModel::default().closure_bytes + 4_096
        );
    }

    #[test]
    fn remote_ref_round_trip() {
        let mut n = net();
        n.remote_ref(PlaceId(0), PlaceId(3), 256);
        assert_eq!(n.counts().data_requests, 1);
        assert_eq!(n.counts().data_replies, 1);
    }

    #[test]
    fn failed_steal_costs_round_trip() {
        let mut n = net();
        let c = n.failed_steal(PlaceId(0), PlaceId(1));
        assert_eq!(n.counts().steal_requests, 1);
        assert_eq!(n.counts().steal_replies, 1);
        assert!(c >= 2 * CostModel::default().net_latency_ns);
    }

    #[test]
    fn ring_topology_multiplies_latency_by_hops() {
        let mut n = Network::new(8, CostModel::default(), Topology::Ring);
        let near = n.send(PlaceId(0), PlaceId(1), MsgKind::Control, 0);
        let far = n.send(PlaceId(0), PlaceId(4), MsgKind::Control, 0);
        assert_eq!(far, 4 * near);
    }

    #[test]
    fn recording_logs_each_cross_place_message_in_order() {
        let mut n = net();
        n.set_recording(true);
        n.send(PlaceId(0), PlaceId(0), MsgKind::Control, 8); // intra: not logged
        n.migrate_task(PlaceId(2), PlaceId(0), 100);
        let log = n.take_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].kind, MsgKind::StealRequest);
        assert_eq!((log[0].src, log[0].dst), (PlaceId(0), PlaceId(2)));
        assert_eq!(log[1].kind, MsgKind::TaskMigrate);
        assert_eq!(log[1].bytes, CostModel::default().closure_bytes + 100);
        assert!(n.take_log().is_empty(), "take_log drains");
    }

    #[test]
    fn recording_off_by_default_and_clears_on_disable() {
        let mut n = net();
        n.send(PlaceId(0), PlaceId(1), MsgKind::Control, 8);
        assert!(n.take_log().is_empty());
        n.set_recording(true);
        n.send(PlaceId(0), PlaceId(1), MsgKind::Control, 8);
        n.set_recording(false);
        assert!(n.take_log().is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let mut n = net();
        n.migrate_task(PlaceId(0), PlaceId(1), 10);
        n.reset_counts();
        assert_eq!(n.counts().total(), 0);
        assert_eq!(n.edge_count(PlaceId(0), PlaceId(1)), 0);
    }

    #[test]
    fn transmit_with_empty_plan_matches_send_exactly() {
        let mut a = net();
        let mut b = net();
        b.set_fault_plan(FaultPlan::none(), 123);
        for (src, dst, bytes) in [(0u32, 1u32, 100u64), (2, 3, 0), (1, 1, 50)] {
            let plain = a.send(PlaceId(src), PlaceId(dst), MsgKind::DataReply, bytes);
            let fate = b.transmit(7, PlaceId(src), PlaceId(dst), MsgKind::DataReply, bytes);
            assert_eq!(fate, SendFate::Delivered { cost_ns: plain });
        }
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn certain_loss_drops_counts_and_logs() {
        let mut n = net();
        n.set_fault_plan(FaultPlan::uniform_loss(1.0), 42); // clamps to 0.9
        n.set_recording(true);
        let mut dropped = 0;
        for _ in 0..200 {
            if n.transmit(0, PlaceId(0), PlaceId(1), MsgKind::StealRequest, 64) == SendFate::Dropped
            {
                dropped += 1;
            }
        }
        assert!(dropped > 100, "0.9 loss should drop most of 200");
        assert_eq!(n.counts().dropped.steal_requests, dropped);
        // Drops are still sends: the recording and counts agree.
        assert_eq!(n.counts().steal_requests, 200);
        let log = n.take_log();
        assert_eq!(log.len(), 200);
        assert_eq!(log.iter().filter(|r| r.dropped).count(), dropped as usize);
    }

    #[test]
    fn partition_window_cuts_deterministically() {
        let mut n = net();
        let mut plan = FaultPlan::none();
        plan.partitions.push(Partition {
            a: PlaceId(0),
            b: PlaceId(1),
            from_ns: 100,
            until_ns: 200,
        });
        n.set_fault_plan(plan, 1);
        assert!(matches!(
            n.transmit(50, PlaceId(0), PlaceId(1), MsgKind::Control, 0),
            SendFate::Delivered { .. }
        ));
        assert_eq!(
            n.transmit(150, PlaceId(1), PlaceId(0), MsgKind::Control, 0),
            SendFate::Dropped
        );
        assert!(matches!(
            n.transmit(150, PlaceId(0), PlaceId(2), MsgKind::Control, 0),
            SendFate::Delivered { .. }
        ));
        assert!(matches!(
            n.transmit(200, PlaceId(0), PlaceId(1), MsgKind::Control, 0),
            SendFate::Delivered { .. }
        ));
        assert_eq!(n.counts().dropped.control, 1);
    }

    #[test]
    fn jitter_bounds_and_duplication_counts() {
        let mut n = net();
        let mut plan = FaultPlan::none();
        plan.default.jitter_ns = 500;
        plan.default.dup_p = 0.9;
        n.set_fault_plan(plan, 9);
        let base = CostModel::default().net_latency_ns;
        let mut sent = 0u64;
        for _ in 0..100 {
            match n.transmit(0, PlaceId(0), PlaceId(1), MsgKind::Control, 0) {
                SendFate::Delivered { cost_ns } => {
                    assert!((base..=base + 500).contains(&cost_ns));
                    sent += 1;
                }
                SendFate::Dropped => unreachable!("no loss configured"),
            }
        }
        let dups = n.counts().duplicated.control;
        assert!(dups > 50, "0.9 dup should duplicate most of 100");
        // Duplicates show up as extra wire traffic.
        assert_eq!(n.counts().control, sent + dups);
    }

    #[test]
    fn same_seed_same_fault_pattern() {
        let run = |seed: u64| {
            let mut n = net();
            n.set_fault_plan(FaultPlan::uniform_loss(0.3), seed);
            (0..64)
                .map(|_| {
                    n.transmit(0, PlaceId(0), PlaceId(1), MsgKind::DataRequest, 64)
                        == SendFate::Dropped
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }
}
