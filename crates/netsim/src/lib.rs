//! # distws-netsim
//!
//! Simulated cluster interconnect.
//!
//! The paper's testbed connects 16 nodes with 10 Gbit/s InfiniBand and
//! communicates through MVAPICH2. The scheduling results depend on two
//! properties of that fabric which this crate models exactly:
//!
//! 1. every cross-place interaction costs *latency + size/bandwidth*
//!    (per message), so remote steals are orders of magnitude more
//!    expensive than local deque operations, and
//! 2. the number of messages and bytes moved is observable — Table III
//!    of the paper counts messages transmitted across nodes per
//!    scheduler.
//!
//! [`Network::send`] charges a message between two places and returns
//! its virtual-time cost; intra-place "sends" are free and uncounted,
//! mirroring shared-memory communication within a node.

pub mod topology;

pub use topology::Topology;

use distws_core::{CostModel, MessageCounts, PlaceId};

/// Classification of cross-place messages, matching the events of
/// Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// A thief probing a remote shared deque.
    StealRequest,
    /// The victim's reply (may carry zero tasks).
    StealReply,
    /// Migration payload: serialized closure + encapsulated footprint.
    TaskMigrate,
    /// Request for data homed at a remote place.
    DataRequest,
    /// Reply carrying remote data.
    DataReply,
    /// Termination detection / place-status control traffic.
    Control,
}

/// One recorded cross-place message (see [`Network::set_recording`]).
/// The network has no clock; the engine drains the log right after the
/// call that produced the messages and stamps virtual time itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgRecord {
    /// Sending place.
    pub src: PlaceId,
    /// Receiving place.
    pub dst: PlaceId,
    /// Message classification.
    pub kind: MsgKind,
    /// Payload bytes.
    pub bytes: u64,
}

/// The simulated interconnect: cost model + topology + accounting.
#[derive(Debug, Clone)]
pub struct Network {
    cost: CostModel,
    topo: Topology,
    places: u32,
    counts: MessageCounts,
    /// Messages per directed edge, row-major `[src][dst]`.
    per_edge: Vec<u64>,
    /// Per-message log, populated only while `recording` (tracing).
    recording: bool,
    log: Vec<MsgRecord>,
}

impl Network {
    /// A network over `places` places with the given cost model and
    /// topology.
    pub fn new(places: u32, cost: CostModel, topo: Topology) -> Self {
        Network {
            cost,
            topo,
            places,
            counts: MessageCounts::default(),
            per_edge: vec![0; (places as usize) * (places as usize)],
            recording: false,
            log: Vec::new(),
        }
    }

    /// Enable or disable per-message logging. Off by default so
    /// untraced runs pay one branch per send and no allocation.
    pub fn set_recording(&mut self, on: bool) {
        self.recording = on;
        if !on {
            self.log = Vec::new();
        }
    }

    /// Drain the messages logged since the last call, in send order.
    /// Empty unless [`Self::set_recording`] was turned on.
    pub fn take_log(&mut self) -> Vec<MsgRecord> {
        std::mem::take(&mut self.log)
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The topology in use.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Send one message. Returns the virtual-time cost in ns. Messages
    /// within one place cost nothing and are not counted (shared
    /// memory).
    pub fn send(&mut self, src: PlaceId, dst: PlaceId, kind: MsgKind, payload_bytes: u64) -> u64 {
        if src == dst {
            return 0;
        }
        debug_assert!(src.0 < self.places && dst.0 < self.places);
        match kind {
            MsgKind::StealRequest => self.counts.steal_requests += 1,
            MsgKind::StealReply => self.counts.steal_replies += 1,
            MsgKind::TaskMigrate => self.counts.task_migrations += 1,
            MsgKind::DataRequest => self.counts.data_requests += 1,
            MsgKind::DataReply => self.counts.data_replies += 1,
            MsgKind::Control => self.counts.control += 1,
        }
        self.counts.bytes += payload_bytes;
        self.per_edge[src.index() * self.places as usize + dst.index()] += 1;
        if self.recording {
            self.log.push(MsgRecord {
                src,
                dst,
                kind,
                bytes: payload_bytes,
            });
        }
        let hops = self.topo.hops(src, dst, self.places) as u64;
        hops * self.cost.net_latency_ns + self.cost.transfer_ns(payload_bytes)
    }

    /// Cost of a full task migration from victim place `src` to thief
    /// place `dst`: steal request + reply carrying closure + footprint.
    pub fn migrate_task(&mut self, src: PlaceId, dst: PlaceId, footprint_bytes: u64) -> u64 {
        let req = self.send(dst, src, MsgKind::StealRequest, 64);
        let closure = self.cost.closure_bytes;
        let reply = self.send(src, dst, MsgKind::TaskMigrate, closure + footprint_bytes);
        req + reply
    }

    /// Cost of a remote data reference of `bytes` from a task at `from`
    /// to data homed at `home`: request + data reply.
    pub fn remote_ref(&mut self, from: PlaceId, home: PlaceId, bytes: u64) -> u64 {
        let req = self.send(from, home, MsgKind::DataRequest, 64);
        let rep = self.send(home, from, MsgKind::DataReply, bytes);
        req + rep
    }

    /// A failed remote steal probe: request + empty reply.
    pub fn failed_steal(&mut self, thief: PlaceId, victim: PlaceId) -> u64 {
        let req = self.send(thief, victim, MsgKind::StealRequest, 64);
        let rep = self.send(victim, thief, MsgKind::StealReply, 16);
        req + rep
    }

    /// Accumulated message counters (Table III source data).
    pub fn counts(&self) -> &MessageCounts {
        &self.counts
    }

    /// Messages sent on the directed edge `src → dst`.
    pub fn edge_count(&self, src: PlaceId, dst: PlaceId) -> u64 {
        self.per_edge[src.index() * self.places as usize + dst.index()]
    }

    /// Reset all counters (between experiment phases).
    pub fn reset_counts(&mut self) {
        self.counts = MessageCounts::default();
        self.per_edge.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(4, CostModel::default(), Topology::FullyConnected)
    }

    #[test]
    fn intra_place_is_free_and_uncounted() {
        let mut n = net();
        assert_eq!(
            n.send(PlaceId(1), PlaceId(1), MsgKind::DataRequest, 1_000),
            0
        );
        assert_eq!(n.counts().total(), 0);
        assert_eq!(n.counts().bytes, 0);
    }

    #[test]
    fn cross_place_charges_latency_plus_bandwidth() {
        let mut n = net();
        let cost = n.send(PlaceId(0), PlaceId(1), MsgKind::DataReply, 1_000);
        let cm = CostModel::default();
        assert_eq!(cost, cm.net_latency_ns + cm.transfer_ns(1_000));
        assert_eq!(n.counts().data_replies, 1);
        assert_eq!(n.counts().bytes, 1_000);
        assert_eq!(n.edge_count(PlaceId(0), PlaceId(1)), 1);
        assert_eq!(n.edge_count(PlaceId(1), PlaceId(0)), 0);
    }

    #[test]
    fn migration_counts_request_and_payload() {
        let mut n = net();
        let cost = n.migrate_task(PlaceId(2), PlaceId(0), 4_096);
        assert!(cost >= 2 * CostModel::default().net_latency_ns);
        assert_eq!(n.counts().steal_requests, 1);
        assert_eq!(n.counts().task_migrations, 1);
        assert_eq!(n.counts().total(), 2);
        // payload includes the closure bytes on top of the footprint
        assert_eq!(
            n.counts().bytes,
            64 + CostModel::default().closure_bytes + 4_096
        );
    }

    #[test]
    fn remote_ref_round_trip() {
        let mut n = net();
        n.remote_ref(PlaceId(0), PlaceId(3), 256);
        assert_eq!(n.counts().data_requests, 1);
        assert_eq!(n.counts().data_replies, 1);
    }

    #[test]
    fn failed_steal_costs_round_trip() {
        let mut n = net();
        let c = n.failed_steal(PlaceId(0), PlaceId(1));
        assert_eq!(n.counts().steal_requests, 1);
        assert_eq!(n.counts().steal_replies, 1);
        assert!(c >= 2 * CostModel::default().net_latency_ns);
    }

    #[test]
    fn ring_topology_multiplies_latency_by_hops() {
        let mut n = Network::new(8, CostModel::default(), Topology::Ring);
        let near = n.send(PlaceId(0), PlaceId(1), MsgKind::Control, 0);
        let far = n.send(PlaceId(0), PlaceId(4), MsgKind::Control, 0);
        assert_eq!(far, 4 * near);
    }

    #[test]
    fn recording_logs_each_cross_place_message_in_order() {
        let mut n = net();
        n.set_recording(true);
        n.send(PlaceId(0), PlaceId(0), MsgKind::Control, 8); // intra: not logged
        n.migrate_task(PlaceId(2), PlaceId(0), 100);
        let log = n.take_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].kind, MsgKind::StealRequest);
        assert_eq!((log[0].src, log[0].dst), (PlaceId(0), PlaceId(2)));
        assert_eq!(log[1].kind, MsgKind::TaskMigrate);
        assert_eq!(log[1].bytes, CostModel::default().closure_bytes + 100);
        assert!(n.take_log().is_empty(), "take_log drains");
    }

    #[test]
    fn recording_off_by_default_and_clears_on_disable() {
        let mut n = net();
        n.send(PlaceId(0), PlaceId(1), MsgKind::Control, 8);
        assert!(n.take_log().is_empty());
        n.set_recording(true);
        n.send(PlaceId(0), PlaceId(1), MsgKind::Control, 8);
        n.set_recording(false);
        assert!(n.take_log().is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let mut n = net();
        n.migrate_task(PlaceId(0), PlaceId(1), 10);
        n.reset_counts();
        assert_eq!(n.counts().total(), 0);
        assert_eq!(n.edge_count(PlaceId(0), PlaceId(1)), 0);
    }
}
