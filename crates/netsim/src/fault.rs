//! Seeded network fault injection.
//!
//! A [`FaultPlan`] describes how the interconnect misbehaves: per-edge
//! message drop and duplication probabilities, latency jitter and
//! spikes, and link partitions over virtual-time windows. The plan is
//! applied inside [`crate::Network::transmit`] with its own
//! `SplitMix64` stream, so the same `(plan, seed)` pair reproduces the
//! exact same fault pattern — chaos runs are as deterministic as
//! fault-free ones.
//!
//! An empty plan (`FaultPlan::default()`) is guaranteed to consume no
//! random draws and to change no costs or counters: fault-free runs
//! stay byte-identical with or without the fault machinery compiled in.

use distws_core::PlaceId;

/// Fault parameters of one (directed) link. All probabilities are
/// clamped to `[0, MAX_PROB]` on construction so retransmission loops
/// terminate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Probability a message on this link is silently dropped.
    pub drop_p: f64,
    /// Probability a delivered message is duplicated (the duplicate is
    /// counted as extra traffic; receivers deduplicate by sequence
    /// number, so duplication never changes scheduling decisions).
    pub dup_p: f64,
    /// Uniform extra latency in `[0, jitter_ns]` added per message.
    pub jitter_ns: u64,
    /// Probability of a latency spike.
    pub spike_p: f64,
    /// Extra latency added when a spike fires.
    pub spike_ns: u64,
}

/// Upper bound on drop/dup probabilities — keeps the expected number
/// of retransmissions finite (≤ 10 per message at the cap).
pub const MAX_PROB: f64 = 0.9;

impl Default for LinkFault {
    fn default() -> Self {
        LinkFault {
            drop_p: 0.0,
            dup_p: 0.0,
            jitter_ns: 0,
            spike_p: 0.0,
            spike_ns: 0,
        }
    }
}

impl LinkFault {
    /// Whether this link is perfectly reliable and deterministic.
    pub fn is_clean(&self) -> bool {
        self.drop_p == 0.0 && self.dup_p == 0.0 && self.jitter_ns == 0 && self.spike_p == 0.0
    }

    /// Clamp probabilities into legal range.
    pub fn clamped(mut self) -> Self {
        self.drop_p = self.drop_p.clamp(0.0, MAX_PROB);
        self.dup_p = self.dup_p.clamp(0.0, MAX_PROB);
        self.spike_p = self.spike_p.clamp(0.0, 1.0);
        self
    }
}

/// A symmetric link cut between two places over a virtual-time window:
/// every message between `a` and `b` (either direction) sent while
/// `from_ns <= now < until_ns` is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// One endpoint.
    pub a: PlaceId,
    /// The other endpoint.
    pub b: PlaceId,
    /// Window start (inclusive), virtual ns.
    pub from_ns: u64,
    /// Window end (exclusive), virtual ns.
    pub until_ns: u64,
}

impl Partition {
    /// Whether a message `src → dst` at virtual time `now` is cut.
    pub fn cuts(&self, now: u64, src: PlaceId, dst: PlaceId) -> bool {
        let on_link = (src == self.a && dst == self.b) || (src == self.b && dst == self.a);
        on_link && now >= self.from_ns && now < self.until_ns
    }
}

/// The full network fault specification: a default link fault, sparse
/// per-edge overrides, and partitions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Fault parameters of every link without an override.
    pub default: LinkFault,
    /// Directed per-edge overrides `(src, dst) → LinkFault`.
    pub edges: Vec<((PlaceId, PlaceId), LinkFault)>,
    /// Link cuts over virtual-time windows.
    pub partitions: Vec<Partition>,
}

impl FaultPlan {
    /// A plan injecting nothing (the default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan dropping every message with probability `p` on every
    /// link (the simplest lossy-network model).
    pub fn uniform_loss(p: f64) -> Self {
        FaultPlan {
            default: LinkFault {
                drop_p: p,
                ..LinkFault::default()
            }
            .clamped(),
            ..FaultPlan::default()
        }
    }

    /// Whether the plan injects no fault at all. An empty plan makes
    /// [`crate::Network::transmit`] behave exactly like
    /// [`crate::Network::send`], consuming no random draws.
    pub fn is_empty(&self) -> bool {
        self.default.is_clean()
            && self.edges.iter().all(|(_, l)| l.is_clean())
            && self.partitions.is_empty()
    }

    /// The fault parameters of the directed edge `src → dst`.
    pub fn link(&self, src: PlaceId, dst: PlaceId) -> LinkFault {
        self.edges
            .iter()
            .find(|((s, d), _)| *s == src && *d == dst)
            .map(|(_, l)| *l)
            .unwrap_or(self.default)
    }

    /// Override the fault parameters of the directed edge `src → dst`.
    pub fn set_edge(&mut self, src: PlaceId, dst: PlaceId, link: LinkFault) {
        let link = link.clamped();
        if let Some(e) = self
            .edges
            .iter_mut()
            .find(|((s, d), _)| *s == src && *d == dst)
        {
            e.1 = link;
        } else {
            self.edges.push(((src, dst), link));
        }
    }

    /// Whether a message `src → dst` at `now` falls inside a partition
    /// window.
    pub fn partitioned(&self, now: u64, src: PlaceId, dst: PlaceId) -> bool {
        self.partitions.iter().any(|p| p.cuts(now, src, dst))
    }

    /// A copy with every probabilistic intensity (drop, dup, spike
    /// probability and jitter) multiplied by `level` in `[0, 1]`.
    /// Structural faults (partitions) are kept when `level > 0` and
    /// removed at `level == 0` — they are binary, not graded.
    pub fn scaled(&self, level: f64) -> FaultPlan {
        let level = level.clamp(0.0, 1.0);
        let scale = |l: LinkFault| {
            LinkFault {
                drop_p: l.drop_p * level,
                dup_p: l.dup_p * level,
                jitter_ns: (l.jitter_ns as f64 * level) as u64,
                spike_p: l.spike_p * level,
                spike_ns: l.spike_ns,
            }
            .clamped()
        };
        FaultPlan {
            default: scale(self.default),
            edges: self.edges.iter().map(|(e, l)| (*e, scale(*l))).collect(),
            partitions: if level > 0.0 {
                self.partitions.clone()
            } else {
                Vec::new()
            },
        }
    }
}

/// Outcome of one [`crate::Network::transmit`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFate {
    /// The message reached the destination after `cost_ns` virtual ns.
    Delivered {
        /// One-way delivery latency, including any jitter or spike.
        cost_ns: u64,
    },
    /// The message was lost (random drop or partition window). The
    /// send itself is still counted — the sender paid for it.
    Dropped,
}

impl SendFate {
    /// The delivery cost, or `None` if the message was lost.
    pub fn cost(self) -> Option<u64> {
        match self {
            SendFate::Delivered { cost_ns } => Some(cost_ns),
            SendFate::Dropped => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_detection() {
        assert!(FaultPlan::default().is_empty());
        assert!(FaultPlan::uniform_loss(0.0).is_empty());
        assert!(!FaultPlan::uniform_loss(0.01).is_empty());
        let mut plan = FaultPlan::default();
        plan.partitions.push(Partition {
            a: PlaceId(0),
            b: PlaceId(1),
            from_ns: 0,
            until_ns: 10,
        });
        assert!(!plan.is_empty());
    }

    #[test]
    fn probabilities_are_clamped() {
        let plan = FaultPlan::uniform_loss(5.0);
        assert_eq!(plan.default.drop_p, MAX_PROB);
    }

    #[test]
    fn edge_override_takes_precedence() {
        let mut plan = FaultPlan::uniform_loss(0.1);
        plan.set_edge(
            PlaceId(0),
            PlaceId(1),
            LinkFault {
                drop_p: 0.5,
                ..LinkFault::default()
            },
        );
        assert_eq!(plan.link(PlaceId(0), PlaceId(1)).drop_p, 0.5);
        // Directed: the reverse edge keeps the default.
        assert_eq!(plan.link(PlaceId(1), PlaceId(0)).drop_p, 0.1);
        // Re-setting replaces rather than duplicates.
        plan.set_edge(PlaceId(0), PlaceId(1), LinkFault::default());
        assert_eq!(plan.edges.len(), 1);
        assert_eq!(plan.link(PlaceId(0), PlaceId(1)).drop_p, 0.0);
    }

    #[test]
    fn partition_windows_are_half_open_and_symmetric() {
        let p = Partition {
            a: PlaceId(0),
            b: PlaceId(2),
            from_ns: 100,
            until_ns: 200,
        };
        assert!(!p.cuts(99, PlaceId(0), PlaceId(2)));
        assert!(p.cuts(100, PlaceId(0), PlaceId(2)));
        assert!(p.cuts(199, PlaceId(2), PlaceId(0)), "symmetric");
        assert!(!p.cuts(200, PlaceId(0), PlaceId(2)), "end exclusive");
        assert!(!p.cuts(150, PlaceId(0), PlaceId(1)), "other link");
    }

    #[test]
    fn scaling_grades_probabilities_and_gates_partitions() {
        let mut plan = FaultPlan::uniform_loss(0.04);
        plan.default.jitter_ns = 1_000;
        plan.partitions.push(Partition {
            a: PlaceId(0),
            b: PlaceId(1),
            from_ns: 0,
            until_ns: 10,
        });
        let half = plan.scaled(0.5);
        assert!((half.default.drop_p - 0.02).abs() < 1e-12);
        assert_eq!(half.default.jitter_ns, 500);
        assert_eq!(half.partitions.len(), 1);
        let zero = plan.scaled(0.0);
        assert!(zero.is_empty());
    }
}
