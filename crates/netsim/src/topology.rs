//! Cluster wiring topologies.
//!
//! The paper's cluster is fully connected (InfiniBand switch), but
//! footnote 2 observes that victim-*node* selection matters more on
//! sparser fabrics: "in a cluster with ring topology it is a common
//! practice to chose nearest, or adjacent nodes first". We model both
//! so the victim-ordering ablation can demonstrate exactly that.

use distws_core::PlaceId;

/// Interconnect shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Every pair of places is one hop apart (switched fabric).
    FullyConnected,
    /// Places form a ring; hop count is the shorter arc distance.
    Ring,
}

impl Topology {
    /// Number of hops between two places.
    pub fn hops(self, src: PlaceId, dst: PlaceId, places: u32) -> u32 {
        if src == dst {
            return 0;
        }
        match self {
            Topology::FullyConnected => 1,
            Topology::Ring => {
                let d = src.0.abs_diff(dst.0);
                d.min(places - d)
            }
        }
    }

    /// Remote places ordered by increasing distance from `from`
    /// (ties broken by increasing id). For a fully connected fabric the
    /// order is simply id order starting after `from` (callers shuffle
    /// or rotate as their policy demands).
    pub fn victim_order(self, from: PlaceId, places: u32) -> Vec<PlaceId> {
        let mut others: Vec<PlaceId> = (0..places).map(PlaceId).filter(|p| *p != from).collect();
        match self {
            Topology::FullyConnected => {
                // Rotate so the scan starts just after `from`.
                others.sort_by_key(|p| (p.0 + places - from.0) % places);
            }
            Topology::Ring => {
                others.sort_by_key(|p| (self.hops(from, *p, places), p.0));
            }
        }
        others
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_connected_is_one_hop() {
        let t = Topology::FullyConnected;
        assert_eq!(t.hops(PlaceId(0), PlaceId(5), 8), 1);
        assert_eq!(t.hops(PlaceId(3), PlaceId(3), 8), 0);
    }

    #[test]
    fn ring_uses_shorter_arc() {
        let t = Topology::Ring;
        assert_eq!(t.hops(PlaceId(0), PlaceId(1), 8), 1);
        assert_eq!(t.hops(PlaceId(0), PlaceId(7), 8), 1);
        assert_eq!(t.hops(PlaceId(0), PlaceId(4), 8), 4);
        assert_eq!(t.hops(PlaceId(1), PlaceId(6), 8), 3);
    }

    #[test]
    fn ring_victims_nearest_first() {
        let order = Topology::Ring.victim_order(PlaceId(0), 6);
        let dists: Vec<u32> = order
            .iter()
            .map(|p| Topology::Ring.hops(PlaceId(0), *p, 6))
            .collect();
        let mut sorted = dists.clone();
        sorted.sort_unstable();
        assert_eq!(dists, sorted);
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn fully_connected_victims_rotate_after_self() {
        let order = Topology::FullyConnected.victim_order(PlaceId(2), 5);
        assert_eq!(
            order.iter().map(|p| p.0).collect::<Vec<_>>(),
            vec![3, 4, 0, 1]
        );
    }
}
