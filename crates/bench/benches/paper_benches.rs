//! Criterion benches: one per table/figure of the paper, at quick
//! scale so `cargo bench` stays tractable. The `repro` binary runs the
//! same experiments at full scale.

use criterion::{criterion_group, criterion_main, Criterion};
use distws_bench as bench;
use distws_bench::Scale;

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_steal_ratio", |b| {
        b.iter(|| std::hint::black_box(bench::fig3_steal_ratio(Scale::Quick)))
    });
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_sequential", |b| {
        b.iter(|| std::hint::black_box(bench::fig4_sequential(Scale::Quick)))
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_speedups", |b| {
        b.iter(|| std::hint::black_box(bench::fig5_speedups(Scale::Quick)))
    });
}

fn bench_fig6_tables23(c: &mut Criterion) {
    // Fig. 6, Table II and Table III share the three-way runs.
    c.bench_function("fig6_table2_table3_three_way", |b| {
        b.iter(|| std::hint::black_box(bench::three_way(Scale::Quick)))
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_utilization", |b| {
        b.iter(|| std::hint::black_box(bench::fig7_utilization(Scale::Quick)))
    });
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_granularity", |b| {
        b.iter(|| std::hint::black_box(bench::table1_granularity(Scale::Quick)))
    });
}

fn bench_granularity_study(c: &mut Criterion) {
    c.bench_function("granularity_study", |b| {
        b.iter(|| std::hint::black_box(bench::granularity_study(Scale::Quick)))
    });
}

fn bench_uts(c: &mut Criterion) {
    c.bench_function("uts_study", |b| {
        b.iter(|| std::hint::black_box(bench::uts_study(Scale::Quick)))
    });
}

fn bench_ablations(c: &mut Criterion) {
    c.bench_function("ablation_chunk", |b| {
        b.iter(|| std::hint::black_box(bench::ablation_chunk(Scale::Quick)))
    });
    c.bench_function("ablation_mapping_rule", |b| {
        b.iter(|| std::hint::black_box(bench::ablation_mapping_rule(Scale::Quick)))
    });
    c.bench_function("ablation_victim_order", |b| {
        b.iter(|| std::hint::black_box(bench::ablation_victim_order(Scale::Quick)))
    });
}

criterion_group! {
    name = paper;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(8));
    targets =
        bench_fig3,
        bench_fig4,
        bench_fig5,
        bench_fig6_tables23,
        bench_fig7,
        bench_table1,
        bench_granularity_study,
        bench_uts,
        bench_ablations
}
criterion_main!(paper);
