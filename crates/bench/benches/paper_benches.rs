//! Plain timing harness (`cargo bench`, `harness = false`): one entry
//! per table/figure of the paper, at quick scale so the run stays
//! tractable. The `repro` binary runs the same experiments at full
//! scale. The container builds offline, so this is a hand-rolled
//! min/mean-of-N loop instead of Criterion.

use distws_bench as bench;
use distws_bench::Scale;
use std::time::Instant;

const SAMPLES: u32 = 5;

fn time<R>(name: &str, mut f: impl FnMut() -> R) {
    // One warm-up, then SAMPLES measured iterations.
    std::hint::black_box(f());
    let mut total = 0.0f64;
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        total += dt;
        best = best.min(dt);
    }
    println!(
        "{name:<32} min {best:>9.3} ms   mean {:>9.3} ms   ({SAMPLES} samples)",
        total / SAMPLES as f64
    );
}

fn main() {
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    let run = |name: &str| filter.as_deref().is_none_or(|f| name.contains(f));

    println!("paper benches, quick scale, {SAMPLES} samples each\n");
    if run("fig3") {
        time("fig3_steal_ratio", || bench::fig3_steal_ratio(Scale::Quick));
    }
    if run("fig4") {
        time("fig4_sequential", || bench::fig4_sequential(Scale::Quick));
    }
    if run("fig5") {
        time("fig5_speedups", || bench::fig5_speedups(Scale::Quick));
    }
    if run("three_way") || run("fig6") {
        time("fig6_table2_table3_three_way", || {
            bench::three_way(Scale::Quick)
        });
    }
    if run("fig7") {
        time("fig7_utilization", || bench::fig7_utilization(Scale::Quick));
    }
    if run("table1") {
        time("table1_granularity", || {
            bench::table1_granularity(Scale::Quick)
        });
    }
    if run("granularity_study") {
        time("granularity_study", || {
            bench::granularity_study(Scale::Quick)
        });
    }
    if run("uts") {
        time("uts_study", || bench::uts_study(Scale::Quick));
    }
    if run("ablation") {
        time("ablation_chunk", || bench::ablation_chunk(Scale::Quick));
        time("ablation_mapping_rule", || {
            bench::ablation_mapping_rule(Scale::Quick)
        });
        time("ablation_victim_order", || {
            bench::ablation_victim_order(Scale::Quick)
        });
    }
}
